//! Lowering: resolve names to storage slots and produce an executable
//! form of the main program unit.
//!
//! The machine executes *post-inlining* programs (the pipeline's normal
//! output): any remaining CALL is an error. Intrinsic function calls are
//! lowered to [`Intr`] opcodes. `PARAMETER` values and array dimensions
//! are folded at load time.

use crate::error::MachineError;
use crate::value::{ArrData, ArrObj, Scalar};
use polaris_ir::expr::{is_intrinsic, BinOp, Expr, LValue, RedOp, UnOp};
use polaris_ir::stmt::{Stmt, StmtKind};
use polaris_ir::symbol::SymKind;
use polaris_ir::types::DataType;
use polaris_ir::{Program, ProgramUnit};
use std::collections::BTreeMap;

/// Intrinsic opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intr {
    Mod,
    Max,
    Min,
    Abs,
    Sign,
    Sqrt,
    Sin,
    Cos,
    Tan,
    Exp,
    Log,
    Atan,
    Int,
    Nint,
    ToReal,
}

/// Lowered expression.
#[derive(Debug, Clone)]
pub enum RExpr {
    I(i64),
    R(f64),
    B(bool),
    Str(String),
    /// Scalar slot load.
    Load(usize),
    /// Array element load.
    Elem(usize, Vec<RExpr>),
    Un(UnOp, Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
    Intrin(Intr, Vec<RExpr>),
}

/// Lowered reduction target.
#[derive(Debug, Clone)]
pub struct RRed {
    pub op: RedOp,
    /// Scalar slot or array slot being reduced into.
    pub target: RRef,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RRef {
    Scalar(usize),
    Array(usize),
}

/// Lowered parallel annotations.
#[derive(Debug, Clone, Default)]
pub struct RPar {
    pub parallel: bool,
    pub private_scalars: Vec<usize>,
    pub private_arrays: Vec<usize>,
    pub copy_out_scalars: Vec<usize>,
    pub reductions: Vec<RRed>,
    pub spec_arrays: Vec<usize>,
}

/// Lowered loop.
#[derive(Debug, Clone)]
pub struct RLoop {
    pub var: usize,
    pub init: RExpr,
    pub limit: RExpr,
    pub step: Option<RExpr>,
    pub body: Vec<RStmt>,
    pub par: RPar,
    pub label: String,
    /// Compile-time provenance id, carried verbatim from the IR loop
    /// this RLoop was lowered from; the dependence oracle joins its
    /// run-time observations to `CompileReport` verdicts on this key.
    pub loop_id: polaris_ir::stmt::LoopId,
    /// No DO loops inside (codegen model applies here).
    pub innermost: bool,
    /// Contains an IF (codegen model penalty).
    pub has_conditional: bool,
}

/// Lowered statement.
#[derive(Debug, Clone)]
pub enum RStmt {
    AssignS(usize, RExpr),
    AssignE(usize, Vec<RExpr>, RExpr),
    Do(Box<RLoop>),
    If(Vec<(RExpr, Vec<RStmt>)>, Vec<RStmt>),
    Print(Vec<RExpr>),
    Stop,
}

/// An executable program image.
#[derive(Debug, Clone)]
pub struct Image {
    pub scalars: Vec<Scalar>,
    pub scalar_names: Vec<String>,
    pub arrays: Vec<ArrObj>,
    pub code: Vec<RStmt>,
}

struct Lowerer<'a> {
    unit: &'a ProgramUnit,
    scalar_ids: BTreeMap<String, usize>,
    array_ids: BTreeMap<String, usize>,
    scalars: Vec<Scalar>,
    scalar_names: Vec<String>,
    arrays: Vec<ArrObj>,
    params: BTreeMap<String, Expr>,
}

/// Lower the main unit of `program` into an [`Image`].
pub fn lower(program: &Program) -> Result<Image, MachineError> {
    lower_with_cap(program, None)
}

/// Lower the main unit, refusing to allocate more than `cap` total array
/// elements when a cap is given (the built-in per-array safety limit
/// still applies either way).
pub fn lower_with_cap(program: &Program, cap: Option<usize>) -> Result<Image, MachineError> {
    let main = program.main().ok_or(MachineError::NoMain)?;
    lower_unit_with_cap(main, cap)
}

/// Lower one unit (normally the inlined main).
pub fn lower_unit(unit: &ProgramUnit) -> Result<Image, MachineError> {
    lower_unit_with_cap(unit, None)
}

/// [`lower_unit`] with an optional cap on total array elements.
pub fn lower_unit_with_cap(unit: &ProgramUnit, cap: Option<usize>) -> Result<Image, MachineError> {
    let mut l = Lowerer {
        unit,
        scalar_ids: BTreeMap::new(),
        array_ids: BTreeMap::new(),
        scalars: Vec::new(),
        scalar_names: Vec::new(),
        arrays: Vec::new(),
        params: BTreeMap::new(),
    };
    // Resolve parameters to literals (bounded chase).
    for sym in unit.symbols.iter() {
        if let SymKind::Parameter(v) = &sym.kind {
            l.params.insert(sym.name.clone(), v.clone());
        }
    }
    for _ in 0..8 {
        let snap = l.params.clone();
        let mut changed = false;
        for v in l.params.values_mut() {
            let new = subst_params(v, &snap).simplified();
            if new != *v {
                *v = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Allocate storage.
    let mut allocated: usize = 0;
    for sym in unit.symbols.iter() {
        match &sym.kind {
            SymKind::Scalar => {
                let id = l.scalars.len();
                l.scalar_ids.insert(sym.name.clone(), id);
                l.scalar_names.push(sym.name.clone());
                l.scalars.push(match sym.ty {
                    DataType::Integer => Scalar::I(0),
                    DataType::Real => Scalar::R(0.0),
                    DataType::Logical => Scalar::B(false),
                });
            }
            SymKind::Array(dims) => {
                let mut lows = Vec::new();
                let mut extents = Vec::new();
                let mut total: i64 = 1;
                for d in dims {
                    let lo = l
                        .const_eval(&d.lo)
                        .ok_or_else(|| MachineError::NonConstantDims(sym.name.clone()))?;
                    let hi = l
                        .const_eval(&d.hi)
                        .ok_or_else(|| MachineError::NonConstantDims(sym.name.clone()))?;
                    let ext = (hi - lo + 1).max(0);
                    lows.push(lo);
                    extents.push(ext);
                    total = total.saturating_mul(ext);
                }
                if total > 1 << 28 {
                    return Err(MachineError::Unsupported(format!(
                        "array `{}` too large for the simulator ({total} elements)",
                        sym.name
                    )));
                }
                allocated = allocated.saturating_add(total as usize);
                if let Some(cap) = cap {
                    if allocated > cap {
                        return Err(MachineError::MemoryCapExceeded { need: allocated, cap });
                    }
                }
                let data = match sym.ty {
                    DataType::Integer => ArrData::I(vec![0; total as usize]),
                    DataType::Real => ArrData::R(vec![0.0; total as usize]),
                    DataType::Logical => ArrData::B(vec![false; total as usize]),
                };
                let id = l.arrays.len();
                l.array_ids.insert(sym.name.clone(), id);
                l.arrays.push(ArrObj {
                    name: sym.name.clone(),
                    lows,
                    extents,
                    data: std::sync::Arc::new(data),
                });
            }
            SymKind::Parameter(_) | SymKind::External => {}
        }
    }
    let code = l.lower_list(&unit.body.0)?;
    Ok(Image {
        scalars: l.scalars,
        scalar_names: l.scalar_names,
        arrays: l.arrays,
        code,
    })
}

fn subst_params(e: &Expr, params: &BTreeMap<String, Expr>) -> Expr {
    e.map(&mut |node| match &node {
        Expr::Var(n) => params.get(n).cloned().unwrap_or(node),
        _ => node,
    })
}

impl<'a> Lowerer<'a> {
    fn const_eval(&self, e: &Expr) -> Option<i64> {
        subst_params(e, &self.params).simplified().as_int()
    }

    fn scalar_slot(&self, name: &str) -> Result<usize, MachineError> {
        self.scalar_ids
            .get(name)
            .copied()
            .ok_or_else(|| MachineError::Type(format!("unknown scalar `{name}`")))
    }

    fn array_slot(&self, name: &str) -> Result<usize, MachineError> {
        self.array_ids
            .get(name)
            .copied()
            .ok_or_else(|| MachineError::Type(format!("unknown array `{name}`")))
    }

    fn lower_list(&self, stmts: &[Stmt]) -> Result<Vec<RStmt>, MachineError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            if let Some(r) = self.lower_stmt(s)? {
                out.push(r);
            }
        }
        Ok(out)
    }

    fn lower_stmt(&self, s: &Stmt) -> Result<Option<RStmt>, MachineError> {
        Ok(Some(match &s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                let rhs = self.lower_expr(rhs)?;
                match lhs {
                    LValue::Var(n) => RStmt::AssignS(self.scalar_slot(n)?, rhs),
                    LValue::Index { array, subs } => {
                        let subs = subs
                            .iter()
                            .map(|e| self.lower_expr(e))
                            .collect::<Result<Vec<_>, _>>()?;
                        RStmt::AssignE(self.array_slot(array)?, subs, rhs)
                    }
                }
            }
            StmtKind::Do(d) => {
                let body = self.lower_list(&d.body.0)?;
                let mut innermost = true;
                let mut has_conditional = false;
                d.body.walk(&mut |st| match st.kind {
                    StmtKind::Do(_) => innermost = false,
                    StmtKind::IfBlock { .. } => has_conditional = true,
                    _ => {}
                });
                let par = self.lower_par(d)?;
                RStmt::Do(Box::new(RLoop {
                    var: self.scalar_slot(&d.var)?,
                    init: self.lower_expr(&d.init)?,
                    limit: self.lower_expr(&d.limit)?,
                    step: d.step.as_ref().map(|e| self.lower_expr(e)).transpose()?,
                    body,
                    par,
                    label: d.label.clone(),
                    loop_id: d.loop_id,
                    innermost,
                    has_conditional,
                }))
            }
            StmtKind::IfBlock { arms, else_body } => {
                let mut rarms = Vec::new();
                for arm in arms {
                    rarms.push((self.lower_expr(&arm.cond)?, self.lower_list(&arm.body.0)?));
                }
                RStmt::If(rarms, self.lower_list(&else_body.0)?)
            }
            StmtKind::Call { name, .. } => {
                return Err(MachineError::UnresolvedCall(name.clone()));
            }
            StmtKind::Print { items } => RStmt::Print(
                items.iter().map(|e| self.lower_expr(e)).collect::<Result<Vec<_>, _>>()?,
            ),
            StmtKind::Stop | StmtKind::Return => RStmt::Stop,
            StmtKind::Continue | StmtKind::Assert { .. } => return Ok(None),
        }))
    }

    fn lower_par(&self, d: &polaris_ir::DoLoop) -> Result<RPar, MachineError> {
        let mut par = RPar {
            parallel: d.par.parallel,
            ..Default::default()
        };
        for name in &d.par.private {
            if let Ok(id) = self.scalar_slot(name) {
                par.private_scalars.push(id);
            } else {
                par.private_arrays.push(self.array_slot(name)?);
            }
        }
        for name in &d.par.copy_out {
            par.copy_out_scalars.push(self.scalar_slot(name)?);
        }
        for red in &d.par.reductions {
            let target = if let Ok(id) = self.scalar_slot(&red.var) {
                RRef::Scalar(id)
            } else {
                RRef::Array(self.array_slot(&red.var)?)
            };
            par.reductions.push(RRed { op: red.op, target });
        }
        if let Some(spec) = &d.par.speculative {
            for name in &spec.tracked {
                par.spec_arrays.push(self.array_slot(name)?);
            }
        }
        Ok(par)
    }

    /// Lower an expression: parameters folded, constants simplified.
    fn lower_expr(&self, e: &Expr) -> Result<RExpr, MachineError> {
        let folded = subst_params(e, &self.params).simplified();
        self.lower_expr_raw(&folded)
    }

    fn lower_expr_raw(&self, e: &Expr) -> Result<RExpr, MachineError> {
        Ok(match e {
            Expr::Int(v) => RExpr::I(*v),
            Expr::Real(v) => RExpr::R(*v),
            Expr::Logical(v) => RExpr::B(*v),
            Expr::Str(s) => RExpr::Str(s.clone()),
            Expr::Var(n) => RExpr::Load(self.scalar_slot(n)?),
            Expr::Index { array, subs } => RExpr::Elem(
                self.array_slot(array)?,
                subs.iter().map(|s| self.lower_expr_raw(s)).collect::<Result<Vec<_>, _>>()?,
            ),
            Expr::Call { name, args } => {
                if !is_intrinsic(name) {
                    return Err(MachineError::UnresolvedCall(name.clone()));
                }
                let intr = match name.as_str() {
                    "MOD" => Intr::Mod,
                    "MAX" | "MAX0" | "AMAX1" | "DMAX1" => Intr::Max,
                    "MIN" | "MIN0" | "AMIN1" | "DMIN1" => Intr::Min,
                    "ABS" | "IABS" => Intr::Abs,
                    "SIGN" => Intr::Sign,
                    "SQRT" => Intr::Sqrt,
                    "SIN" => Intr::Sin,
                    "COS" => Intr::Cos,
                    "TAN" => Intr::Tan,
                    "EXP" => Intr::Exp,
                    "LOG" => Intr::Log,
                    "ATAN" => Intr::Atan,
                    "INT" => Intr::Int,
                    "NINT" => Intr::Nint,
                    "REAL" | "DBLE" | "FLOAT" => Intr::ToReal,
                    other => {
                        return Err(MachineError::Unsupported(format!("intrinsic `{other}`")))
                    }
                };
                RExpr::Intrin(
                    intr,
                    args.iter().map(|a| self.lower_expr_raw(a)).collect::<Result<Vec<_>, _>>()?,
                )
            }
            Expr::Un { op, arg } => RExpr::Un(*op, Box::new(self.lower_expr_raw(arg)?)),
            Expr::Bin { op, lhs, rhs } => RExpr::Bin(
                *op,
                Box::new(self.lower_expr_raw(lhs)?),
                Box::new(self.lower_expr_raw(rhs)?),
            ),
            Expr::Wildcard(_) => {
                return Err(MachineError::Unsupported("wildcard in program".into()))
            }
        })
    }
}

// keep the field used (unit is handy for error contexts and future use)
impl<'a> Lowerer<'a> {
    #[allow(dead_code)]
    fn unit_name(&self) -> &str {
        &self.unit.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_of(src: &str) -> Image {
        let p = polaris_ir::parse(src).unwrap();
        lower(&p).unwrap()
    }

    #[test]
    fn storage_allocation() {
        let img = image_of(
            "program t\ninteger n\nparameter (n = 4)\nreal a(n, 2*n)\ninteger k\nk = 1\na(1,1) = 0.0\nend\n",
        );
        assert_eq!(img.arrays.len(), 1);
        assert_eq!(img.arrays[0].extents, vec![4, 8]);
        assert!(img.scalar_names.contains(&"K".to_string()));
    }

    #[test]
    fn nonconstant_dims_rejected() {
        let p = polaris_ir::parse("program t\nreal a(n)\na(1) = 0.0\nend\n").unwrap();
        assert!(matches!(lower(&p), Err(MachineError::NonConstantDims(_))));
    }

    #[test]
    fn call_rejected() {
        let p = polaris_ir::parse("program t\ncall f(x)\nend\n").unwrap();
        assert!(matches!(lower(&p), Err(MachineError::UnresolvedCall(_))));
    }

    #[test]
    fn intrinsics_lowered() {
        let img = image_of("program t\nx = sqrt(abs(y)) + mod(k, 3)\nend\n");
        // one assignment
        assert_eq!(img.code.len(), 1);
    }

    #[test]
    fn parameters_fold_in_expressions() {
        let img = image_of("program t\ninteger n\nparameter (n = 10)\nk = n + 1\nend\n");
        match &img.code[0] {
            RStmt::AssignS(_, RExpr::I(11)) => {}
            other => panic!("expected folded literal, got {other:?}"),
        }
    }

    #[test]
    fn loop_metadata() {
        let img = image_of(
            "program t\nreal a(10)\ndo i = 1, 10\n  if (a(i) > 0.0) then\n    a(i) = 0.0\n  end if\nend do\nend\n",
        );
        match &img.code[0] {
            RStmt::Do(l) => {
                assert!(l.innermost);
                assert!(l.has_conditional);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn par_annotations_lowered() {
        let src = "program t\nreal a(10), s\n!$polaris doall private(T) reduction(+:S) lastprivate(T)\ndo i = 1, 10\n  t = a(i)\n  s = s + t\nend do\nend\n";
        let img = image_of(src);
        match &img.code[0] {
            RStmt::Do(l) => {
                assert!(l.par.parallel);
                assert_eq!(l.par.private_scalars.len(), 1);
                assert_eq!(l.par.copy_out_scalars.len(), 1);
                assert_eq!(l.par.reductions.len(), 1);
            }
            _ => panic!(),
        }
    }
}

//! Property: the F-Mini interpreter agrees with a direct Rust oracle on
//! randomly generated straight-line arithmetic and small loop nests.

use polaris_machine::run_serial;
use proptest::prelude::*;

/// A tiny expression AST mirrored in both worlds.
#[derive(Debug, Clone)]
enum E {
    Int(i64),
    VarI,
    VarJ,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Abs(Box<E>),
}

impl E {
    fn fortran(&self) -> String {
        match self {
            E::Int(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    v.to_string()
                }
            }
            E::VarI => "i".into(),
            E::VarJ => "j".into(),
            E::Add(a, b) => format!("({} + {})", a.fortran(), b.fortran()),
            E::Sub(a, b) => format!("({} - {})", a.fortran(), b.fortran()),
            E::Mul(a, b) => format!("({} * {})", a.fortran(), b.fortran()),
            E::Div(a, b) => format!("({} / {})", a.fortran(), b.fortran()),
            E::Mod(a, b) => format!("mod({}, {})", a.fortran(), b.fortran()),
            E::Max(a, b) => format!("max({}, {})", a.fortran(), b.fortran()),
            E::Abs(a) => format!("abs({})", a.fortran()),
        }
    }

    /// Fortran semantics: truncating integer division; MOD with the
    /// sign of the dividend. Division/mod by zero is avoided by mapping
    /// zero divisors to one (both sides identically).
    fn eval(&self, i: i64, j: i64) -> i64 {
        match self {
            E::Int(v) => *v,
            E::VarI => i,
            E::VarJ => j,
            E::Add(a, b) => a.eval(i, j).wrapping_add(b.eval(i, j)),
            E::Sub(a, b) => a.eval(i, j).wrapping_sub(b.eval(i, j)),
            E::Mul(a, b) => a.eval(i, j).wrapping_mul(b.eval(i, j)),
            E::Div(a, b) => {
                let d = b.eval(i, j);
                let d = if d == 0 { 1 } else { d };
                a.eval(i, j).wrapping_div(d)
            }
            E::Mod(a, b) => {
                let d = b.eval(i, j);
                let d = if d == 0 { 1 } else { d };
                a.eval(i, j) % d
            }
            E::Max(a, b) => a.eval(i, j).max(b.eval(i, j)),
            E::Abs(a) => a.eval(i, j).abs(),
        }
    }

    /// Guard divisions: rewrite `x / y` as `x / max(1, abs(y))` so both
    /// worlds share the non-zero-divisor convention.
    fn guard_divs(self) -> E {
        match self {
            E::Div(a, b) => E::Div(
                Box::new(a.guard_divs()),
                Box::new(E::Max(
                    Box::new(E::Int(1)),
                    Box::new(E::Abs(Box::new(b.guard_divs()))),
                )),
            ),
            E::Mod(a, b) => E::Mod(
                Box::new(a.guard_divs()),
                Box::new(E::Max(
                    Box::new(E::Int(1)),
                    Box::new(E::Abs(Box::new(b.guard_divs()))),
                )),
            ),
            E::Add(a, b) => E::Add(Box::new(a.guard_divs()), Box::new(b.guard_divs())),
            E::Sub(a, b) => E::Sub(Box::new(a.guard_divs()), Box::new(b.guard_divs())),
            E::Mul(a, b) => E::Mul(Box::new(a.guard_divs()), Box::new(b.guard_divs())),
            E::Max(a, b) => E::Max(Box::new(a.guard_divs()), Box::new(b.guard_divs())),
            E::Abs(a) => E::Abs(Box::new(a.guard_divs())),
            leaf => leaf,
        }
    }
}

fn e_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(E::Int),
        Just(E::VarI),
        Just(E::VarJ),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interpreter_matches_rust_oracle(raw in e_strategy(), ni in 1i64..6, nj in 1i64..5) {
        let e = raw.guard_divs();
        let text = e.fortran();
        // sum the expression over a small nest and compare totals
        let src = format!(
            "program t\ninteger total\ntotal = 0\ndo i = 1, {ni}\n  do j = 1, {nj}\n    total = total + ({text})\n  end do\nend do\nprint *, total\nend\n"
        );
        let r = run_serial(&polaris_ir::parse(&src).unwrap())
            .unwrap_or_else(|err| panic!("machine error {err} on\n{src}"));
        let mut expect: i64 = 0;
        for i in 1..=ni {
            for j in 1..=nj {
                expect = expect.wrapping_add(e.eval(i, j));
            }
        }
        prop_assert_eq!(r.output[0].clone(), expect.to_string(), "src:\n{}", src);
    }

    #[test]
    fn real_arithmetic_matches_oracle(vals in proptest::collection::vec(-100i32..100, 1..20)) {
        // running sum + product-style updates on f64, matching Rust
        let n = vals.len();
        let mut body = String::new();
        for (k, v) in vals.iter().enumerate() {
            body.push_str(&format!("  b({}) = {}.0 / 4.0\n", k + 1, v));
        }
        let src = format!(
            "program t\nreal b({n})\nreal s\n{body}s = 0.0\ndo i = 1, {n}\n  s = s + b(i)*b(i) - b(i)*0.5\nend do\nprint *, s\nend\n"
        );
        let r = run_serial(&polaris_ir::parse(&src).unwrap()).unwrap();
        let mut s = 0f64;
        for v in &vals {
            let b = *v as f64 / 4.0;
            s += b * b - b * 0.5;
        }
        let got: f64 = r.output[0].parse().unwrap();
        // PRINT uses 7 significant digits ({:.6E}); compare at that precision
        prop_assert!((got - s).abs() <= 5e-6 * s.abs().max(1.0), "got {} want {}", got, s);
    }
}

// ---- hard execution limits -------------------------------------------------
//
// The interpreter is the oracle for every differential test in the
// repo, so a miscompile that turns a bounded loop into an unbounded one
// must surface as a reported error, never a hang or a crash.

#[test]
fn effectively_infinite_loop_stops_at_the_fuel_limit() {
    let src = "program spin\n\
               integer s\n\
               s = 0\n\
               do i = 1, 1000000000\n\
                 do j = 1, 1000000000\n\
                   s = s + 1\n\
                 end do\n\
               end do\n\
               print *, s\n\
               end\n";
    let p = polaris_ir::parse(src).unwrap();
    let cfg = polaris_machine::MachineConfig::serial().with_fuel(50_000);
    match polaris_machine::run(&p, &cfg) {
        Err(polaris_machine::MachineError::FuelExhausted { limit }) => assert_eq!(limit, 50_000),
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
}

#[test]
fn unlimited_config_still_runs_large_bounded_loops() {
    // No fuel configured: the same shape with sane bounds completes.
    let src = "program ok\n\
               integer s\n\
               s = 0\n\
               do i = 1, 1000\n\
                 s = s + 1\n\
               end do\n\
               print *, s\n\
               end\n";
    let p = polaris_ir::parse(src).unwrap();
    let r = run_serial(&p).unwrap();
    assert_eq!(r.output, vec!["1000".to_string()]);
}

#[test]
fn out_of_bounds_subscript_is_a_machine_error_not_a_panic() {
    let src = "program oob\n\
               real a(8)\n\
               do i = 1, 9\n\
                 a(i) = 1.0\n\
               end do\n\
               print *, a(1)\n\
               end\n";
    let p = polaris_ir::parse(src).unwrap();
    match run_serial(&p) {
        Err(polaris_machine::MachineError::OutOfBounds { array, index, len }) => {
            assert_eq!(array, "A");
            assert_eq!(index, 9);
            assert_eq!(len, 8);
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn negative_subscript_is_a_machine_error_not_a_panic() {
    let src = "program oob\n\
               real a(8)\n\
               i = 0\n\
               a(i - 2) = 1.0\n\
               print *, a(1)\n\
               end\n";
    let p = polaris_ir::parse(src).unwrap();
    match run_serial(&p) {
        Err(polaris_machine::MachineError::OutOfBounds { index, .. }) => assert_eq!(index, -2),
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

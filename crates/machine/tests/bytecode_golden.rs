//! Golden snapshots of the bytecode disassembly for MDG (histogram
//! reductions, fully parallel) and TRACK (the partially parallel
//! PD-test loop), after the full Polaris pass pipeline. The listing is
//! deterministic — interned symbol ids, jump tables, pre-resolved
//! strides and register counts all derive from the lowering order — so
//! any drift means the instruction encoding or the lowering changed.
//!
//! Regeneration: `UPDATE_GOLDEN=1 cargo test -p polaris-machine --test
//! bytecode_golden` rewrites the snapshots; commit the diff if (and
//! only if) the change is intentional.

use polaris_core::{parse_and_compile, PassOptions};
use polaris_machine::bytecode;
use polaris_machine::lower::lower;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn kernel_source(file: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../benchmarks/codes")
        .join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn disassembly(file: &str) -> String {
    let src = kernel_source(file);
    let (program, report) = parse_and_compile(&src, &PassOptions::polaris())
        .unwrap_or_else(|e| panic!("{file}: compile: {e}"));
    assert!(!report.degraded(), "{file}: pipeline degraded");
    let image = lower(&program).unwrap_or_else(|e| panic!("{file}: lower: {e}"));
    bytecode::compile(&image).map(|bc| bytecode::disassemble(&bc)).unwrap_or_else(|e| {
        panic!("{file}: bytecode compile: {e}")
    })
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test -p \
             polaris-machine --test bytecode_golden`",
            path.display()
        )
    });
    assert!(
        got == want,
        "{name} drifted from its golden snapshot (UPDATE_GOLDEN=1 regenerates if \
         intentional)\n--- want ---\n{want}\n--- got ---\n{got}"
    );
}

#[test]
fn mdg_disassembly_matches_golden() {
    check_golden("mdg.dis", &disassembly("mdg.f"));
}

#[test]
fn track_disassembly_matches_golden() {
    check_golden("track.dis", &disassembly("track.f"));
}

/// The disassembly is a pure function of the unit: compiling the same
/// image twice yields byte-identical listings (interner and jump-table
/// construction are deterministic).
#[test]
fn disassembly_is_deterministic() {
    for file in ["mdg.f", "track.f"] {
        assert_eq!(disassembly(file), disassembly(file), "{file}");
    }
}

//! The `polarisd` daemon: JSON-lines (`polarisd/v1`) over stdin/stdout,
//! plus an optional localhost TCP listener.
//!
//! ```text
//! polarisd [--workers N] [--queue N] [--deadline-ms MS] [--listen ADDR] [--stdio]
//! ```
//!
//! With `--listen 127.0.0.1:0` the chosen address is announced on stdout
//! as `listening on <addr>` before requests are served. Each request line
//! is answered by exactly one response line; responses may arrive out of
//! submission order (they carry the request `id`).

use polarisd::proto::{Request, Response, Status};
use polarisd::service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: polarisd [--workers N] [--queue N] [--deadline-ms MS] \
         [--listen ADDR] [--stdio]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut listen: Option<String> = None;
    let mut stdio = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cfg.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--queue" => {
                cfg.queue_capacity =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.default_deadline = Some(Duration::from_millis(ms));
            }
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--stdio" => stdio = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("polarisd: unknown argument {other:?}");
                usage();
            }
        }
    }
    let service = Arc::new(Service::new(cfg));

    match listen {
        Some(addr) => serve_tcp(&service, &addr, stdio),
        None => serve_stdio(&service),
    }
}

/// Answer one already-parsed line: submit, wait, serialize.
fn answer(service: &Service, line: &str) -> String {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            // Not even parseable as a request envelope: answer on id 0 so
            // the caller sees *something* rather than silence.
            let mut resp = Response::empty(0, Status::Error);
            resp.reason = Some(format!("bad request: {e}"));
            return resp.to_json();
        }
    };
    service.submit(req).wait().to_json()
}

/// stdin/stdout mode. Requests are answered concurrently (the service
/// decides ordering); a writer thread serializes the output lines.
fn serve_stdio(service: &Arc<Service>) {
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });
    let mut joiners = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let service = Arc::clone(service);
        let tx = tx.clone();
        joiners.push(std::thread::spawn(move || {
            let _ = tx.send(answer(&service, &line));
        }));
    }
    for j in joiners {
        let _ = j.join();
    }
    drop(tx);
    let _ = writer.join();
}

/// TCP mode: one thread per connection, one thread per request within it.
fn serve_tcp(service: &Arc<Service>, addr: &str, also_stdio: bool) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("polarisd: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = listener.local_addr().expect("listener has a local addr");
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    if also_stdio {
        let service = Arc::clone(service);
        std::thread::spawn(move || serve_stdio(&service));
    }
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        std::thread::spawn(move || serve_conn(&service, stream));
    }
}

fn serve_conn(service: &Arc<Service>, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<String>();
    let mut write_half = stream;
    let writer = std::thread::spawn(move || {
        for line in rx {
            if writeln!(write_half, "{line}").is_err() {
                break;
            }
            let _ = write_half.flush();
        }
    });
    let mut joiners = Vec::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let service = Arc::clone(service);
        let tx = tx.clone();
        joiners.push(std::thread::spawn(move || {
            let _ = tx.send(answer(&service, &line));
        }));
    }
    for j in joiners {
        let _ = j.join();
    }
    drop(tx);
    let _ = writer.join();
}

//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Only *transient* failures are retried: worker panics (real or
//! injected), deadline cancellations are not retried at all (the retry
//! would blow the same deadline), and deterministic failures — parse or
//! semantic errors that will fail identically every time — are never
//! retried. The jitter source is a seeded SplitMix64 stream, so a given
//! (seed, request) pair always backs off by the same amounts: chaos runs
//! are reproducible down to their sleep schedule.

use std::time::Duration;

/// Retry/backoff policy for transient compile failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = this + 1).
    pub max_retries: u32,
    /// Backoff before retry k (1-based) is `base_backoff * 2^(k-1)` plus
    /// jitter.
    pub base_backoff: Duration,
    /// Upper bound on the uniform jitter added to each backoff.
    pub max_jitter: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(2),
            max_jitter: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// The backoff to sleep before retry number `retry` (1-based), with
    /// jitter drawn from `rng`.
    pub fn backoff(&self, retry: u32, rng: &mut SplitMix) -> Duration {
        let shift = retry.saturating_sub(1).min(10);
        let exp = self.base_backoff.saturating_mul(1u32 << shift);
        let jitter_us = self.max_jitter.as_micros() as u64;
        let jitter = if jitter_us == 0 { 0 } else { rng.next_u64() % (jitter_us + 1) };
        exp + Duration::from_micros(jitter)
    }
}

/// SplitMix64 — the workspace's standard tiny deterministic PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    pub fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Hash a decision coordinate into a single SplitMix draw — the
/// stateless form the chaos plan uses so every (seed, key, request,
/// attempt) coordinate rolls independently and reproducibly.
pub fn mix(parts: &[u64]) -> u64 {
    let mut acc: u64 = 0x243f6a8885a308d3;
    for &p in parts {
        acc = SplitMix::new(acc ^ p).next_u64();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_is_deterministic() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(4),
            max_jitter: Duration::ZERO,
        };
        let mut rng = SplitMix::new(1);
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(4));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(8));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(16));
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let p = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_jitter: Duration::from_millis(3),
        };
        let a: Vec<Duration> =
            (1..=2).map(|k| p.backoff(k, &mut SplitMix::new(99))).collect();
        let b: Vec<Duration> =
            (1..=2).map(|k| p.backoff(k, &mut SplitMix::new(99))).collect();
        assert_eq!(a, b);
        for (k, d) in a.iter().enumerate() {
            let base = Duration::from_millis(1 << k);
            assert!(*d >= base && *d <= base + Duration::from_millis(3), "{d:?}");
        }
    }

    #[test]
    fn mix_differs_across_coordinates() {
        let a = mix(&[1, 2, 3]);
        let b = mix(&[1, 2, 4]);
        let c = mix(&[2, 2, 3]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix(&[1, 2, 3]));
    }
}

//! `polarisd` — a crash-only compile service wrapped around the Polaris
//! pipeline.
//!
//! The restructurer itself ([`polaris_core::pipeline`]) already degrades
//! gracefully *within* one compile: a pass that panics or corrupts its IR
//! is rolled back and the remaining passes run. This crate adds the
//! *service* half of that story — what a long-running compile daemon owes
//! its callers when units are pathological, deadlines are tight, and
//! worker threads die:
//!
//! * **Deadlines** ([`service`]): a watchdog fires a cooperative
//!   [`polaris_core::CancelToken`] when a request's deadline passes; the
//!   pipeline rolls back the remaining stages and the caller gets a
//!   `degraded` answer instead of a wedged worker.
//! * **Retry with backoff** ([`retry`]): transient failures (panics,
//!   injected faults) are retried with exponential backoff and
//!   deterministic jitter; deterministic failures (parse errors) and
//!   deadline blows are answered immediately, never retried.
//! * **Circuit-breaker quarantine** ([`breaker`]): a unit that keeps
//!   failing is quarantined by content hash and served its stored
//!   diagnostics without touching the pipeline, until a half-open probe
//!   proves it recovered.
//! * **Compile cache** ([`cache`]): clean results are cached by content
//!   hash; every read is integrity-checked and poisoned entries are
//!   purged, never served.
//! * **Admission control** ([`service`]): a bounded queue with per-client
//!   round-robin fairness sheds the oldest request under overload, with a
//!   `retry_after_ms` hint.
//! * **Chaos conformance** ([`chaos`]): every resilience claim above is
//!   exercised by a seeded, deterministic chaos harness (see
//!   `tests/chaos_conformance.rs`).
//!
//! The wire protocol ([`proto`]) is JSON-lines (`polarisd/v1`), spoken
//! over stdin/stdout or a localhost TCP socket by the `polarisd` binary.

pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod proto;
pub mod retry;
pub mod service;

pub use breaker::{Admission, BreakerState, CircuitBreaker};
pub use cache::{CacheEntry, CacheOutcome, CompileCache};
pub use chaos::{ChaosHook, ChaosPlan, Curse};
pub use proto::{fnv1a, Request, Response, Status};
pub use retry::RetryPolicy;
pub use service::{Service, ServiceConfig, ServiceStats, Ticket};

//! The `polarisd/v1` JSON-lines wire protocol.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP connection. The workspace deliberately carries no JSON
//! dependency (every exported document is hand-written), so this module
//! hand-rolls the tiny parser/serializer the schema needs.
//!
//! Request:
//!
//! ```json
//! {"id": 7, "client": "ci", "config": "polaris", "deadline_ms": 250,
//!  "return_program": false, "source": "program t\n...\nend\n"}
//! ```
//!
//! `id` and `source` are required; `client` defaults to `"anon"`,
//! `config` to `"polaris"` (the only other value is `"vfa"`).
//!
//! Response (fields absent when not applicable):
//!
//! ```json
//! {"schema": "polarisd/v1", "id": 7, "status": "ok", "exit_code": 0,
//!  "attempts": 1, "cached": false, "checksum": "fnv1a:…",
//!  "run_checksum": null, "parallel_loops": 3, "degraded_stages": [],
//!  "reason": null, "retry_after_ms": null, "program": null}
//! ```
//!
//! Exit-code mapping (mirrors `polarisc`):
//!
//! | status | exit code |
//! |---|---|
//! | `ok`, `cached` | 0 |
//! | `degraded`, `timeout`, `quarantined`, `rejected`, `error` | 1 |
//! | `degraded` with invariant violations | 2 |

use std::fmt;

/// FNV-1a over raw bytes — the same checksum family the bench documents
/// use for output fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Render a checksum the way the bench documents do (`fnv1a:%016x`).
pub fn checksum_str(h: u64) -> String {
    format!("fnv1a:{h:016x}")
}

/// Response classification, ordered by the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Clean compile, full pipeline, zero violations.
    Ok,
    /// Served from the content-hash cache (integrity-checked on read).
    Cached,
    /// Compile finished with at least one stage rolled back (including
    /// deadline cancellation of the remaining stages).
    Degraded,
    /// The request's deadline passed before a compile could even start.
    Timeout,
    /// Circuit breaker is open for this unit: served last diagnostics
    /// without touching the pipeline.
    Quarantined,
    /// Not compiled: shed by admission control, dropped at shutdown, or
    /// retries exhausted with nothing cached to serve.
    Rejected,
    /// Deterministic failure (parse/semantic error). Never retried.
    Error,
}

impl Status {
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Cached => "cached",
            Status::Degraded => "degraded",
            Status::Timeout => "timeout",
            Status::Quarantined => "quarantined",
            Status::Rejected => "rejected",
            Status::Error => "error",
        }
    }

    /// The baseline exit code for this status; a degraded compile with
    /// verifier violations escalates 1 → 2 (the service does this when it
    /// builds the response).
    pub fn exit_code(self) -> u8 {
        match self {
            Status::Ok | Status::Cached => 0,
            _ => 1,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `polarisd/v1` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub client: String,
    /// `true` = the VFA baseline configuration, else full Polaris.
    pub vfa: bool,
    pub deadline_ms: Option<u64>,
    pub return_program: bool,
    pub source: String,
}

impl Request {
    /// Parse one JSON line. Errors name the offending field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let obj = v.as_obj().ok_or("request must be a JSON object")?;
        let id = get(obj, "id")
            .and_then(Json::as_u64)
            .ok_or("request needs a numeric `id`")?;
        let source = get(obj, "source")
            .and_then(Json::as_str)
            .ok_or("request needs a string `source`")?
            .to_string();
        let client = get(obj, "client")
            .and_then(Json::as_str)
            .unwrap_or("anon")
            .to_string();
        let vfa = match get(obj, "config").and_then(Json::as_str) {
            None | Some("polaris") => false,
            Some("vfa") => true,
            Some(other) => return Err(format!("unknown `config`: `{other}`")),
        };
        let deadline_ms = match get(obj, "deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`deadline_ms` must be a number")?),
        };
        let return_program = match get(obj, "return_program") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("`return_program` must be a bool".into()),
        };
        Ok(Request { id, client, vfa, deadline_ms, return_program, source })
    }

    /// Serialize (the client side of the wire).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{{\"id\": {}, \"client\": \"{}\"", self.id, escape(&self.client)));
        s.push_str(&format!(
            ", \"config\": \"{}\"",
            if self.vfa { "vfa" } else { "polaris" }
        ));
        if let Some(ms) = self.deadline_ms {
            s.push_str(&format!(", \"deadline_ms\": {ms}"));
        }
        if self.return_program {
            s.push_str(", \"return_program\": true");
        }
        s.push_str(&format!(", \"source\": \"{}\"}}", escape(&self.source)));
        s
    }
}

/// A `polarisd/v1` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub id: u64,
    pub status: Status,
    pub exit_code: u8,
    /// Compile attempts spent on this request (0 for cache hits, shed,
    /// quarantine, and queue timeouts).
    pub attempts: u32,
    pub cached: bool,
    /// FNV-1a of the unparsed transformed program, when one was produced.
    pub checksum: Option<u64>,
    /// FNV-1a of the program's printed output when the service executed
    /// it ([`ServiceConfig::exec_engine`] set and the compile was clean).
    /// Engine-independent: the VM and the tree-walker produce the same
    /// bytes, so the same checksum.
    ///
    /// [`ServiceConfig::exec_engine`]: crate::service::ServiceConfig::exec_engine
    pub run_checksum: Option<u64>,
    pub parallel_loops: Option<u64>,
    /// Rolled-back stage names (or stored breaker diagnostics for
    /// `quarantined`).
    pub degraded_stages: Vec<String>,
    pub reason: Option<String>,
    /// Backoff hint attached to shed/rejected/quarantined responses.
    pub retry_after_ms: Option<u64>,
    /// The annotated program text, when `return_program` was set and a
    /// compile happened.
    pub program: Option<String>,
}

impl Response {
    /// A blank response scaffold for `id` with `status` and its mapped
    /// exit code; callers fill in the fields the path produced.
    pub fn empty(id: u64, status: Status) -> Response {
        Response {
            id,
            status,
            exit_code: status.exit_code(),
            attempts: 0,
            cached: false,
            checksum: None,
            run_checksum: None,
            parallel_loops: None,
            degraded_stages: Vec::new(),
            reason: None,
            retry_after_ms: None,
            program: None,
        }
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"schema\": \"polarisd/v1\", \"id\": {}, \"status\": \"{}\", \
             \"exit_code\": {}, \"attempts\": {}, \"cached\": {}",
            self.id, self.status, self.exit_code, self.attempts, self.cached
        ));
        match self.checksum {
            Some(h) => s.push_str(&format!(", \"checksum\": \"{}\"", checksum_str(h))),
            None => s.push_str(", \"checksum\": null"),
        }
        match self.run_checksum {
            Some(h) => s.push_str(&format!(", \"run_checksum\": \"{}\"", checksum_str(h))),
            None => s.push_str(", \"run_checksum\": null"),
        }
        match self.parallel_loops {
            Some(n) => s.push_str(&format!(", \"parallel_loops\": {n}")),
            None => s.push_str(", \"parallel_loops\": null"),
        }
        s.push_str(", \"degraded_stages\": [");
        for (i, d) in self.degraded_stages.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", escape(d)));
        }
        s.push(']');
        match &self.reason {
            Some(r) => s.push_str(&format!(", \"reason\": \"{}\"", escape(r))),
            None => s.push_str(", \"reason\": null"),
        }
        match self.retry_after_ms {
            Some(ms) => s.push_str(&format!(", \"retry_after_ms\": {ms}")),
            None => s.push_str(", \"retry_after_ms\": null"),
        }
        match &self.program {
            Some(p) => s.push_str(&format!(", \"program\": \"{}\"", escape(p))),
            None => s.push_str(", \"program\": null"),
        }
        s.push('}');
        s
    }

    /// Parse one response line (the client side of the wire).
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line)?;
        let obj = v.as_obj().ok_or("response must be a JSON object")?;
        match get(obj, "schema").and_then(Json::as_str) {
            Some("polarisd/v1") => {}
            other => return Err(format!("unknown response schema: {other:?}")),
        }
        let status = match get(obj, "status").and_then(Json::as_str) {
            Some("ok") => Status::Ok,
            Some("cached") => Status::Cached,
            Some("degraded") => Status::Degraded,
            Some("timeout") => Status::Timeout,
            Some("quarantined") => Status::Quarantined,
            Some("rejected") => Status::Rejected,
            Some("error") => Status::Error,
            other => return Err(format!("unknown status: {other:?}")),
        };
        let parse_sum = |field: &str| -> Result<Option<u64>, String> {
            match get(obj, field) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => {
                    let s = v.as_str().ok_or(format!("`{field}` must be a string"))?;
                    let hex =
                        s.strip_prefix("fnv1a:").ok_or(format!("{field} must be `fnv1a:…`"))?;
                    Ok(Some(
                        u64::from_str_radix(hex, 16).map_err(|e| format!("bad {field}: {e}"))?,
                    ))
                }
            }
        };
        let checksum = parse_sum("checksum")?;
        let run_checksum = parse_sum("run_checksum")?;
        Ok(Response {
            id: get(obj, "id").and_then(Json::as_u64).ok_or("response needs `id`")?,
            status,
            exit_code: get(obj, "exit_code")
                .and_then(Json::as_u64)
                .ok_or("response needs `exit_code`")? as u8,
            attempts: get(obj, "attempts").and_then(Json::as_u64).unwrap_or(0) as u32,
            cached: matches!(get(obj, "cached"), Some(Json::Bool(true))),
            checksum,
            run_checksum,
            parallel_loops: get(obj, "parallel_loops").and_then(Json::as_u64),
            degraded_stages: match get(obj, "degraded_stages") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect(),
                _ => Vec::new(),
            },
            reason: get(obj, "reason").and_then(Json::as_str).map(str::to_string),
            retry_after_ms: get(obj, "retry_after_ms").and_then(Json::as_u64),
            program: get(obj, "program").and_then(Json::as_str).map(str::to_string),
        })
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A minimal JSON value — just enough for the `polarisd/v1` schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request {
            id: 42,
            client: "c\"1".into(),
            vfa: true,
            deadline_ms: Some(250),
            return_program: true,
            source: "program t\nend\n".into(),
        };
        let parsed = Request::parse(&req.to_json()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_defaults() {
        let req = Request::parse(r#"{"id": 1, "source": "program t\nend\n"}"#).unwrap();
        assert_eq!(req.client, "anon");
        assert!(!req.vfa && !req.return_program);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn request_rejects_missing_fields_and_bad_config() {
        assert!(Request::parse(r#"{"source": "x"}"#).unwrap_err().contains("id"));
        assert!(Request::parse(r#"{"id": 1}"#).unwrap_err().contains("source"));
        assert!(Request::parse(r#"{"id": 1, "source": "x", "config": "pfa"}"#)
            .unwrap_err()
            .contains("config"));
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn response_round_trip() {
        let resp = Response {
            id: 7,
            status: Status::Degraded,
            exit_code: 1,
            attempts: 3,
            cached: false,
            checksum: Some(0xdeadbeef),
            run_checksum: Some(0xfeedface),
            parallel_loops: Some(2),
            degraded_stages: vec!["dce".into()],
            reason: Some("panic: injected".into()),
            retry_after_ms: Some(30),
            program: Some("program t\nend\n".into()),
        };
        let parsed = Response::parse(&resp.to_json()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn exit_code_mapping() {
        assert_eq!(Status::Ok.exit_code(), 0);
        assert_eq!(Status::Cached.exit_code(), 0);
        for s in [Status::Degraded, Status::Timeout, Status::Quarantined, Status::Rejected, Status::Error] {
            assert_eq!(s.exit_code(), 1, "{s}");
        }
    }

    #[test]
    fn checksum_format_matches_bench_documents() {
        assert_eq!(checksum_str(0xab), "fnv1a:00000000000000ab");
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}

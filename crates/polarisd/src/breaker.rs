//! Circuit-breaker quarantine keyed by unit content hash.
//!
//! A unit whose compiles keep panicking or blowing deadlines stops being
//! allowed to touch the pipeline: after `threshold` consecutive failures
//! its breaker *opens* and requests for it are answered from the stored
//! diagnostics of the last failure, instantly. After `cooldown`, the next
//! request is admitted as a *half-open probe* — exactly one compile — and
//! its outcome decides: success closes the breaker (the unit recovered),
//! failure re-opens it for another cooldown.
//!
//! State machine per key:
//!
//! ```text
//!            failure (< threshold)            failure (= threshold)
//!   Closed ─────────────────────▶ Closed ──────────────────────▶ Open
//!     ▲                                                           │
//!     │ probe success                           cooldown elapsed  │
//!     └──────────────── HalfOpen ◀────────────────────────────────┘
//!                          │ probe failure
//!                          ├───────────────▶ Open (new cooldown)
//!                          │ probe outcome lost for > cooldown
//!                          └───────────────▶ HalfOpen (fresh probe)
//! ```
//!
//! Success in `Closed` resets the failure count, so sporadic transient
//! faults never accumulate into a quarantine — only *consecutive*
//! failures of the same unit do.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
enum State {
    Closed { failures: u32 },
    Open { since: Instant },
    /// A probe was admitted at `since`. If its outcome never arrives
    /// (the probing worker died), a fresh probe is admitted once this is
    /// older than the cooldown — half-open must not wedge forever.
    HalfOpen { since: Instant },
}

#[derive(Debug)]
struct Entry {
    state: State,
    /// Diagnostics from the failures that opened (or are accumulating
    /// toward opening) the breaker — what a quarantined response serves.
    diagnostics: Vec<String>,
}

/// Decision for one request.
#[derive(Debug)]
pub enum Admission {
    /// Compile. `probe == true` marks the single half-open probe after a
    /// cooldown; its outcome closes or re-opens the breaker.
    Proceed { probe: bool },
    /// Do not compile; serve the stored diagnostics.
    Quarantined { reason: String, diagnostics: Vec<String> },
}

pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    map: Mutex<HashMap<u64, Entry>>,
}

const MAX_DIAGNOSTICS: usize = 8;

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Gate one request for `key`.
    pub fn admit(&self, key: u64) -> Admission {
        let mut map = lock(&self.map);
        let Some(entry) = map.get_mut(&key) else {
            return Admission::Proceed { probe: false };
        };
        match entry.state {
            State::Closed { .. } => Admission::Proceed { probe: false },
            State::Open { since } if since.elapsed() >= self.cooldown => {
                entry.state = State::HalfOpen { since: Instant::now() };
                Admission::Proceed { probe: true }
            }
            State::Open { .. } => Admission::Quarantined {
                reason: format!(
                    "quarantined after {} repeated failures (cooling down)",
                    self.threshold
                ),
                diagnostics: entry.diagnostics.clone(),
            },
            // The in-flight probe's outcome never arrived (its worker
            // died): admit a replacement probe rather than wedging in
            // half-open forever.
            State::HalfOpen { since } if since.elapsed() >= self.cooldown => {
                entry.state = State::HalfOpen { since: Instant::now() };
                Admission::Proceed { probe: true }
            }
            // Another request while the probe is in flight: the unit is
            // still suspect, keep serving diagnostics.
            State::HalfOpen { .. } => Admission::Quarantined {
                reason: "quarantined (half-open probe in flight)".into(),
                diagnostics: entry.diagnostics.clone(),
            },
        }
    }

    /// A compile of `key` succeeded. Returns true when this *recovered* a
    /// quarantined unit (the breaker was half-open or open).
    pub fn record_success(&self, key: u64) -> bool {
        let mut map = lock(&self.map);
        let Some(entry) = map.get_mut(&key) else {
            return false;
        };
        let recovered = !matches!(entry.state, State::Closed { .. });
        entry.state = State::Closed { failures: 0 };
        entry.diagnostics.clear();
        recovered
    }

    /// A compile of `key` failed transiently (panic, deadline, injected
    /// fault). Returns true when this transition *opened* the breaker.
    pub fn record_failure(&self, key: u64, diagnostic: impl Into<String>) -> bool {
        let mut map = lock(&self.map);
        let entry = map
            .entry(key)
            .or_insert(Entry { state: State::Closed { failures: 0 }, diagnostics: Vec::new() });
        if entry.diagnostics.len() >= MAX_DIAGNOSTICS {
            entry.diagnostics.remove(0);
        }
        entry.diagnostics.push(diagnostic.into());
        match entry.state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    entry.state = State::Open { since: Instant::now() };
                    true
                } else {
                    entry.state = State::Closed { failures };
                    false
                }
            }
            // A failed probe re-opens for a fresh cooldown.
            State::HalfOpen { .. } => {
                entry.state = State::Open { since: Instant::now() };
                true
            }
            State::Open { .. } => false,
        }
    }

    /// Observable state of `key`'s breaker (Closed when never seen).
    pub fn state(&self, key: u64) -> BreakerState {
        match lock(&self.map).get(&key).map(|e| &e.state) {
            None | Some(State::Closed { .. }) => BreakerState::Closed,
            Some(State::Open { .. }) => BreakerState::Open,
            Some(State::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_until_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_millis(10));
        assert!(matches!(b.admit(1), Admission::Proceed { probe: false }));
        assert!(!b.record_failure(1, "panic: a"));
        assert!(!b.record_failure(1, "panic: b"));
        assert!(matches!(b.admit(1), Admission::Proceed { probe: false }));
        assert!(b.record_failure(1, "panic: c"));
        assert_eq!(b.state(1), BreakerState::Open);
        match b.admit(1) {
            Admission::Quarantined { diagnostics, .. } => {
                assert_eq!(diagnostics, vec!["panic: a", "panic: b", "panic: c"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(2, Duration::from_millis(10));
        assert!(!b.record_failure(7, "x"));
        assert!(!b.record_success(7)); // closed → closed, no recovery
        assert!(!b.record_failure(7, "y")); // count restarted at 0
        assert_eq!(b.state(7), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        assert!(b.record_failure(3, "boom"));
        assert!(matches!(b.admit(3), Admission::Quarantined { .. }));
        std::thread::sleep(Duration::from_millis(6));
        // cooled down: exactly one probe admitted, others still quarantined
        assert!(matches!(b.admit(3), Admission::Proceed { probe: true }));
        assert_eq!(b.state(3), BreakerState::HalfOpen);
        assert!(matches!(b.admit(3), Admission::Quarantined { .. }));
        // probe fails → re-open; cool down again → probe succeeds → closed
        assert!(b.record_failure(3, "still boom"));
        assert_eq!(b.state(3), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(6));
        assert!(matches!(b.admit(3), Admission::Proceed { probe: true }));
        assert!(b.record_success(3));
        assert_eq!(b.state(3), BreakerState::Closed);
        assert!(matches!(b.admit(3), Admission::Proceed { probe: false }));
    }

    #[test]
    fn lost_probe_outcome_admits_a_replacement_probe() {
        // The probing worker died: no success/failure was ever recorded.
        // After another cooldown the breaker must hand out a new probe
        // instead of quarantining the unit forever.
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        assert!(b.record_failure(6, "boom"));
        std::thread::sleep(Duration::from_millis(6));
        assert!(matches!(b.admit(6), Admission::Proceed { probe: true }));
        // probe outcome never arrives…
        assert!(matches!(b.admit(6), Admission::Quarantined { .. }));
        std::thread::sleep(Duration::from_millis(6));
        assert!(matches!(b.admit(6), Admission::Proceed { probe: true }));
        assert!(b.record_success(6));
        assert_eq!(b.state(6), BreakerState::Closed);
    }

    #[test]
    fn diagnostics_ring_is_bounded() {
        let b = CircuitBreaker::new(100, Duration::from_millis(1));
        for i in 0..20 {
            b.record_failure(4, format!("f{i}"));
        }
        match b.admit(4) {
            Admission::Proceed { .. } => {} // still closed (threshold 100)
            other => panic!("{other:?}"),
        }
        b.record_failure(4, "last");
        // bounded at MAX_DIAGNOSTICS, oldest dropped
        let n = {
            let map = b.map.lock().unwrap();
            map[&4].diagnostics.len()
        };
        assert!(n <= MAX_DIAGNOSTICS);
    }
}

//! The resilience kernel: admission control, fair scheduling, a
//! panic-isolated worker pool with respawn, deadlines, retry, the circuit
//! breaker and the compile cache — wrapped around
//! `polaris_core::pipeline`.
//!
//! Design rules (crash-only service):
//!
//! * **Every accepted request is answered exactly once** — by a worker,
//!   by the shed path, by the watchdog's orphan recovery, or by the
//!   shutdown drain. No code path loses a ticket.
//! * **Nothing wedges a worker.** Compiles run under `catch_unwind` with
//!   a cooperative [`CancelToken`] the watchdog fires when the request's
//!   deadline passes; a pathological unit degrades, it does not hang.
//! * **Degradation ladder**: full compile → degraded compile (rolled-back
//!   stages) → serve-cached → reject-with-backoff-hint. Each rung is only
//!   taken when the rung above failed.
//! * **The cache never lies.** Only clean compiles are inserted, every
//!   read is integrity-checked, and a poisoned entry is purged on sight.

use crate::breaker::{Admission, CircuitBreaker};
use crate::cache::{CacheOutcome, CompileCache};
use crate::chaos::ChaosHook;
use crate::proto::{fnv1a, Request, Response, Status};
use crate::retry::{RetryPolicy, SplitMix};
use polaris_core::{CancelToken, CompileReport, PassOptions, CANCELLED_PREFIX};
use polaris_machine::{Engine, MachineConfig, MachineError};
use polaris_obs::{Counter, Recorder};
use polaris_runtime::{AdaptiveController, DecisionRow};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads compiling requests.
    pub workers: usize,
    /// Bound on queued (not yet started) requests; beyond it the oldest
    /// queued request is shed.
    pub queue_capacity: usize,
    pub retry: RetryPolicy,
    /// Consecutive failures of one unit before its breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker waits before admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Watchdog poll interval (deadline enforcement + worker supervision).
    pub watchdog_tick: Duration,
    /// When set, a clean compile is also *executed* (serially, on the
    /// chosen engine) and the response carries an FNV-1a checksum of the
    /// program's printed output. Execution runs inside the same
    /// panic-isolation and deadline-cancellation envelope as the compile.
    /// `None` (the default) keeps the service compile-only.
    pub exec_engine: Option<Engine>,
    /// Step budget for executions (`exec_engine` set). `None` relies on
    /// the deadline watchdog alone to stop runaway programs.
    pub exec_fuel: Option<u64>,
    /// When true (and `exec_engine` is set), executions run on the
    /// 8-processor simulated machine under the adaptive scheduler instead
    /// of the serial reference machine. Each unit's adaptation history is
    /// held in an [`AdaptiveController`] keyed by the request's content
    /// hash ([`Service::content_key`]), so re-submissions of the same
    /// source — including recompiles after a cache purge — keep adapting
    /// from where the previous run left off. Output bytes are unchanged
    /// by construction (the determinism contract), so cached checksums
    /// stay valid.
    pub adaptive_schedule: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            default_deadline: None,
            watchdog_tick: Duration::from_millis(2),
            exec_engine: None,
            exec_fuel: None,
            adaptive_schedule: false,
        }
    }
}

/// Counter snapshot of everything the service did (mirrored into the
/// recorder's `polarisd.*` counters as it happens).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    pub accepted: u64,
    pub answered: u64,
    pub shed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub poison_purged: u64,
    pub retries: u64,
    pub deadline_cancels: u64,
    pub quarantined: u64,
    pub probes: u64,
    pub recovered: u64,
    pub respawns: u64,
}

#[derive(Default)]
struct Tallies {
    accepted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    poison_purged: AtomicU64,
    retries: AtomicU64,
    deadline_cancels: AtomicU64,
    quarantined: AtomicU64,
    probes: AtomicU64,
    recovered: AtomicU64,
    respawns: AtomicU64,
}

impl Tallies {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            answered: self.answered.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            cache_misses: self.cache_misses.load(Ordering::SeqCst),
            poison_purged: self.poison_purged.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            deadline_cancels: self.deadline_cancels.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            probes: self.probes.load(Ordering::SeqCst),
            recovered: self.recovered.load(Ordering::SeqCst),
            respawns: self.respawns.load(Ordering::SeqCst),
        }
    }
}

/// Handle for one submitted request; resolves to exactly one [`Response`].
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block until the response arrives. The service guarantees every
    /// accepted request is answered, so this cannot block forever while
    /// the service lives.
    pub fn wait(self) -> Response {
        self.rx.recv().expect("polarisd answers every accepted request")
    }

    /// [`Ticket::wait`] with a hang detector.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[derive(Clone)]
struct Pending {
    req: Request,
    key: u64,
    deadline_at: Option<Instant>,
    enqueued: Instant,
    /// Attempts already burned by workers that died holding this request.
    prior_attempts: u32,
    tx: mpsc::Sender<Response>,
}

#[derive(Default)]
struct Sched {
    /// Per-client FIFO queues, in first-seen order; `cursor` round-robins
    /// across the non-empty ones so one chatty client cannot starve the
    /// rest.
    queues: Vec<(String, VecDeque<Pending>)>,
    cursor: usize,
    len: usize,
    stopping: bool,
}

impl Sched {
    fn push_back(&mut self, p: Pending) {
        self.len += 1;
        match self.queues.iter_mut().find(|(c, _)| *c == p.req.client) {
            Some((_, q)) => q.push_back(p),
            None => {
                let client = p.req.client.clone();
                self.queues.push((client, VecDeque::from([p])));
            }
        }
    }

    /// Re-queue at the front (orphan recovery keeps its place in line).
    fn push_front(&mut self, p: Pending) {
        self.len += 1;
        match self.queues.iter_mut().find(|(c, _)| *c == p.req.client) {
            Some((_, q)) => q.push_front(p),
            None => {
                let client = p.req.client.clone();
                self.queues.push((client, VecDeque::from([p])));
            }
        }
    }

    fn pop(&mut self) -> Option<Pending> {
        if self.len == 0 || self.queues.is_empty() {
            return None;
        }
        let n = self.queues.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(p) = self.queues[i].1.pop_front() {
                self.cursor = (i + 1) % n;
                self.len -= 1;
                return Some(p);
            }
        }
        None
    }

    /// Shed the oldest queued request (by enqueue time, across clients).
    fn shed_oldest(&mut self) -> Option<Pending> {
        let (idx, _) = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, (_, q))| q.front().map(|p| (i, p.enqueued)))
            .min_by_key(|&(_, t)| t)?;
        self.len -= 1;
        self.queues[idx].1.pop_front()
    }

    fn drain(&mut self) -> Vec<Pending> {
        let mut out = Vec::new();
        for (_, q) in &mut self.queues {
            out.extend(q.drain(..));
        }
        self.len = 0;
        out
    }
}

struct InFlight {
    pending: Pending,
    cancel: CancelToken,
    attempt: u32,
}

struct Inner {
    cfg: ServiceConfig,
    sched: Mutex<Sched>,
    available: Condvar,
    inflight: Mutex<HashMap<usize, InFlight>>,
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    cache: CompileCache,
    breaker: CircuitBreaker,
    rec: Recorder,
    chaos: Option<Arc<dyn ChaosHook>>,
    stop: AtomicBool,
    tallies: Tallies,
    /// Per-unit adaptive schedulers, keyed by content hash so the
    /// adaptation history survives cache purges and re-submissions of
    /// the same source (`adaptive_schedule` only).
    adaptive: Mutex<HashMap<u64, Arc<AdaptiveController>>>,
}

/// The crash-only compile service. See the module docs for the contract.
pub struct Service {
    inner: Arc<Inner>,
}

/// What a worker does after handling one request.
enum Fate {
    Continue,
    /// Injected worker death: exit without responding; the watchdog
    /// recovers the orphaned request and respawns the slot.
    Die,
}

impl Service {
    pub fn new(cfg: ServiceConfig) -> Service {
        Service::build(cfg, Recorder::disabled(), None)
    }

    /// A service whose `polarisd.*` counters and per-request spans land
    /// in `rec`.
    pub fn with_recorder(cfg: ServiceConfig, rec: Recorder) -> Service {
        Service::build(cfg, rec, None)
    }

    /// A service under chaos injection (tests only).
    pub fn with_chaos(
        cfg: ServiceConfig,
        rec: Recorder,
        chaos: Arc<dyn ChaosHook>,
    ) -> Service {
        Service::build(cfg, rec, Some(chaos))
    }

    fn build(cfg: ServiceConfig, rec: Recorder, chaos: Option<Arc<dyn ChaosHook>>) -> Service {
        let inner = Arc::new(Inner {
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            cfg,
            sched: Mutex::new(Sched::default()),
            available: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            watchdog: Mutex::new(None),
            cache: CompileCache::new(),
            rec,
            chaos,
            stop: AtomicBool::new(false),
            tallies: Tallies::default(),
            adaptive: Mutex::new(HashMap::new()),
        });
        {
            let mut workers = lock(&inner.workers);
            for slot in 0..inner.cfg.workers.max(1) {
                workers.push(Some(spawn_worker(slot, Arc::clone(&inner))));
            }
        }
        let wd = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("polarisd-watchdog".into())
                .spawn(move || watchdog_loop(&inner))
                .expect("spawn watchdog")
        };
        *lock(&inner.watchdog) = Some(wd);
        Service { inner }
    }

    /// The content key a request compiles under: unit source hash mixed
    /// with the pass configuration.
    pub fn content_key(req: &Request) -> u64 {
        fnv1a(req.source.as_bytes()) ^ if req.vfa { 0x9e3779b97f4a7c15 } else { 0 }
    }

    /// Admission control. Always returns a ticket that will resolve:
    /// accepted requests are queued (shedding the oldest queued request
    /// when the queue is full); after shutdown began, the request is
    /// immediately answered `rejected`.
    pub fn submit(&self, req: Request) -> Ticket {
        let inner = &self.inner;
        let (tx, rx) = mpsc::channel();
        let deadline = req
            .deadline_ms
            .map(Duration::from_millis)
            .or(inner.cfg.default_deadline);
        let pending = Pending {
            key: Service::content_key(&req),
            deadline_at: deadline.map(|d| Instant::now() + d),
            enqueued: Instant::now(),
            prior_attempts: 0,
            req,
            tx,
        };
        let shed_victim = {
            let mut sched = lock(&inner.sched);
            if sched.stopping || inner.stop.load(Ordering::SeqCst) {
                drop(sched);
                let resp = base_response(&pending, Status::Rejected, 0);
                let resp = Response {
                    reason: Some("service shutting down".into()),
                    ..resp
                };
                let _ = pending.tx.send(resp);
                return Ticket { rx };
            }
            inner.tallies.accepted.fetch_add(1, Ordering::SeqCst);
            inner.rec.count(Counter::PolarisdAccepted, 1);
            let victim = if sched.len >= inner.cfg.queue_capacity {
                sched.shed_oldest()
            } else {
                None
            };
            sched.push_back(pending);
            inner.available.notify_one();
            victim
        };
        if let Some(victim) = shed_victim {
            inner.tallies.shed.fetch_add(1, Ordering::SeqCst);
            inner.rec.count(Counter::PolarisdShed, 1);
            let resp = Response {
                reason: Some("shed: queue full (oldest request dropped)".into()),
                retry_after_ms: Some(retry_after_hint(inner)),
                ..base_response(&victim, Status::Rejected, 0)
            };
            respond(inner, &victim, resp);
        }
        Ticket { rx }
    }

    pub fn stats(&self) -> ServiceStats {
        self.inner.tallies.snapshot()
    }

    pub fn recorder(&self) -> &Recorder {
        &self.inner.rec
    }

    /// Cached entries currently held (test/diagnostic visibility).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Snapshot of the adaptive decision table for a unit (by content
    /// key), ordered by loop id. Empty unless `adaptive_schedule` is on
    /// and the unit has executed at least once.
    pub fn adaptive_rows(&self, key: u64) -> Vec<DecisionRow> {
        lock(&self.inner.adaptive)
            .get(&key)
            .map(|c| c.decision_rows())
            .unwrap_or_default()
    }

    /// Graceful stop: wait (bounded) for queued and in-flight work to
    /// finish, stop the threads, answer anything still unserved as
    /// `rejected`, and return the final stats.
    pub fn shutdown(self) -> ServiceStats {
        self.inner.stop_and_join();
        self.inner.tallies.snapshot()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.stop_and_join();
    }
}

impl Inner {
    fn stop_and_join(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Refuse new work but let the queue drain (bounded wait).
        lock(&self.sched).stopping = true;
        let patience = Instant::now() + Duration::from_secs(30);
        loop {
            let queued = lock(&self.sched).len;
            let flying = lock(&self.inflight).len();
            if (queued == 0 && flying == 0) || Instant::now() >= patience {
                break;
            }
            self.available.notify_all();
            std::thread::sleep(Duration::from_millis(2));
        }
        self.available.notify_all();
        if let Some(wd) = lock(&self.watchdog).take() {
            let _ = wd.join();
        }
        let handles: Vec<JoinHandle<()>> =
            lock(&self.workers).iter_mut().filter_map(Option::take).collect();
        for h in handles {
            let _ = h.join();
        }
        // Anything still unanswered (drain timed out, or a worker died
        // with the watchdog already gone) is answered now: crash-only
        // means even the shutdown path keeps the answer-every-request
        // invariant.
        let leftovers: Vec<Pending> = {
            let mut out = lock(&self.sched).drain();
            out.extend(lock(&self.inflight).drain().map(|(_, fl)| fl.pending));
            out
        };
        for p in leftovers {
            let resp = Response {
                reason: Some("service shutting down".into()),
                ..base_response(&p, Status::Rejected, 0)
            };
            respond(self, &p, resp);
        }
    }
}

// ---- worker ----------------------------------------------------------

fn spawn_worker(slot: usize, inner: Arc<Inner>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("polarisd-worker-{slot}"))
        .spawn(move || worker_loop(slot, &inner))
        .expect("spawn polarisd worker")
}

fn worker_loop(slot: usize, inner: &Arc<Inner>) {
    loop {
        let pending = {
            let mut sched = lock(&inner.sched);
            loop {
                if inner.stop.load(Ordering::SeqCst) && sched.len == 0 {
                    return;
                }
                if let Some(p) = sched.pop() {
                    break p;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                sched = wait(&inner.available, sched);
            }
        };
        // The whole request runs under catch_unwind: a bug in the service
        // itself must not kill the worker silently — the request is
        // answered `rejected` and the worker keeps serving.
        let fate = catch_unwind(AssertUnwindSafe(|| handle(slot, inner, pending)));
        match fate {
            Ok(Fate::Continue) => {}
            Ok(Fate::Die) => return,
            Err(_) => {
                let orphan = lock(&inner.inflight).remove(&slot);
                if let Some(fl) = orphan {
                    let resp = Response {
                        reason: Some("internal service panic".into()),
                        ..base_response(&fl.pending, Status::Rejected, fl.attempt)
                    };
                    respond(inner, &fl.pending, resp);
                }
            }
        }
    }
}

/// Serve one request end to end. See the module docs' degradation ladder.
fn handle(slot: usize, inner: &Arc<Inner>, pending: Pending) -> Fate {
    let tid = 100 + slot as u32;
    let span = inner.rec.span_with(
        "polarisd",
        format!("request:{}", pending.req.id),
        tid,
        None,
        None,
    );
    let key = pending.key;
    let req_id = pending.req.id;

    // Register before anything can fail so the watchdog can always see
    // (and recover) this request.
    lock(&inner.inflight).insert(
        slot,
        InFlight { pending: pending.clone(), cancel: CancelToken::new(), attempt: 0 },
    );

    // 1. Circuit breaker: quarantined units are answered from stored
    //    diagnostics without touching the pipeline.
    let probe = match inner.breaker.admit(key) {
        Admission::Quarantined { reason, diagnostics } => {
            let resp = Response {
                reason: Some(reason),
                degraded_stages: diagnostics,
                retry_after_ms: Some(retry_after_hint(inner)),
                ..base_response(&pending, Status::Quarantined, 0)
            };
            finish(inner, slot, &pending, resp);
            span.end();
            return Fate::Continue;
        }
        Admission::Proceed { probe } => {
            if probe {
                inner.tallies.probes.fetch_add(1, Ordering::SeqCst);
                inner.rec.count(Counter::PolarisdProbes, 1);
            }
            probe
        }
    };

    // 2. Cache. A half-open probe must actually compile (that is its
    //    job), so it skips the read.
    if !probe {
        match inner.cache.get(key) {
            CacheOutcome::Hit(entry) => {
                inner.tallies.cache_hits.fetch_add(1, Ordering::SeqCst);
                inner.rec.count(Counter::PolarisdCacheHits, 1);
                let resp = Response {
                    cached: true,
                    checksum: Some(entry.checksum),
                    parallel_loops: Some(entry.parallel_loops),
                    program: pending.req.return_program.then(|| entry.program_text.clone()),
                    ..base_response(&pending, Status::Cached, 0)
                };
                finish(inner, slot, &pending, resp);
                span.end();
                return Fate::Continue;
            }
            CacheOutcome::Poisoned => {
                inner.tallies.poison_purged.fetch_add(1, Ordering::SeqCst);
                inner.rec.count(Counter::PolarisdCachePoisonPurged, 1);
                inner.tallies.cache_misses.fetch_add(1, Ordering::SeqCst);
                inner.rec.count(Counter::PolarisdCacheMisses, 1);
            }
            CacheOutcome::Miss => {
                inner.tallies.cache_misses.fetch_add(1, Ordering::SeqCst);
                inner.rec.count(Counter::PolarisdCacheMisses, 1);
            }
        }
    }

    // 3. Compile attempts with bounded retry.
    let max_attempts = inner.cfg.retry.max_attempts();
    let mut attempt = pending.prior_attempts;
    let mut rng = SplitMix::new(key ^ req_id.wrapping_mul(0x9e3779b97f4a7c15));
    let mut last_failure = String::new();
    while attempt < max_attempts {
        attempt += 1;

        // Publish the attempt number *before* anything can kill this
        // worker: the watchdog charges the orphan `prior_attempts` from
        // the in-flight record, which is what stops a request that kills
        // workers on attempt 1 from being re-run at attempt 1 forever.
        let cancel = CancelToken::new();
        {
            let mut inflight = lock(&inner.inflight);
            if let Some(fl) = inflight.get_mut(&slot) {
                fl.cancel = cancel.clone();
                fl.attempt = attempt;
            }
        }

        if let Some(chaos) = &inner.chaos {
            if chaos.kill_worker(key, req_id, attempt) {
                // Die *without* responding or deregistering: exactly what
                // a hard worker crash looks like. The watchdog notices
                // the dead thread, re-queues the orphan, and respawns.
                return Fate::Die;
            }
        }

        // Deadline already gone? Answer without burning a compile.
        if pending.deadline_at.is_some_and(|d| Instant::now() >= d) {
            let resp = Response {
                reason: Some("deadline exceeded before compile".into()),
                retry_after_ms: Some(retry_after_hint(inner)),
                ..base_response(&pending, Status::Timeout, attempt - 1)
            };
            finish(inner, slot, &pending, resp);
            span.end();
            return Fate::Continue;
        }
        let faults = inner
            .chaos
            .as_ref()
            .map(|c| c.compile_faults(key, req_id, attempt))
            .unwrap_or_default();
        let base = if pending.req.vfa { PassOptions::vfa() } else { PassOptions::polaris() };
        let opts = base.with_faults(faults);

        let attempt_span =
            inner.rec.span_with("polarisd", format!("attempt:{attempt}"), tid, None, None);
        let exec_panic = inner
            .chaos
            .as_ref()
            .and_then(|c| c.exec_panic(key, req_id, attempt))
            .filter(|_| inner.cfg.exec_engine.is_some());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut program = polaris_ir::parse(&pending.req.source)?;
            let report = polaris_core::compile_cancellable(
                &mut program,
                &opts,
                &Recorder::disabled(),
                &cancel,
            )?;
            // Execute inside this same catch_unwind so a panic in either
            // engine's statement dispatch is isolated and retried exactly
            // like a compile panic.
            let run = match inner.cfg.exec_engine {
                Some(engine) if !report.degraded() => {
                    // Adaptive mode executes on the 8-proc simulated
                    // machine; the determinism contract keeps its output
                    // byte-identical to the serial reference, so the
                    // response checksum is the same either way.
                    let mut mcfg = if inner.cfg.adaptive_schedule {
                        MachineConfig::challenge_8()
                    } else {
                        MachineConfig::serial()
                    }
                    .with_engine(engine)
                    .with_cancel(cancel.clone());
                    mcfg.fuel = inner.cfg.exec_fuel;
                    mcfg.panic_at_step = exec_panic;
                    if inner.cfg.adaptive_schedule {
                        let ctrl = adaptive_for(inner, key);
                        if inner
                            .chaos
                            .as_ref()
                            .is_some_and(|c| c.corrupt_decision_table(key, req_id, attempt))
                        {
                            ctrl.corrupt_all();
                        }
                        mcfg = mcfg.with_adaptive(ctrl);
                    }
                    Some(polaris_machine::run(&program, &mcfg))
                }
                _ => None,
            };
            Ok::<_, polaris_ir::CompileError>((program, report, run))
        }));
        attempt_span.end();

        match outcome {
            // Deterministic failure: same input fails the same way every
            // time — answering fast beats retrying, and the breaker is
            // not charged (the unit is not *flaky*, it is wrong).
            Ok(Err(e)) => {
                let resp = Response {
                    reason: Some(format!("compile error: {e}")),
                    ..base_response(&pending, Status::Error, attempt)
                };
                finish(inner, slot, &pending, resp);
                span.end();
                return Fate::Continue;
            }
            Ok(Ok((program, report, run))) => {
                let cancelled = report.stages.iter().any(|s| match &s.outcome {
                    polaris_core::StageOutcome::RolledBack { reason } => {
                        reason.starts_with(CANCELLED_PREFIX)
                    }
                    _ => false,
                });
                if cancelled {
                    // Deadline blew mid-compile. Retrying would blow it
                    // again — serve what the completed stages produced.
                    let newly = inner
                        .breaker
                        .record_failure(key, format!("deadline: {}", cancel_reason(&cancel)));
                    note_quarantine(inner, newly);
                    let text = polaris_ir::printer::print_program(&program);
                    let resp = Response {
                        checksum: Some(fnv1a(text.as_bytes())),
                        parallel_loops: Some(report.parallel_loops() as u64),
                        degraded_stages: rolled_back(&report),
                        reason: Some(format!("deadline: {}", cancel_reason(&cancel))),
                        program: pending.req.return_program.then_some(text),
                        ..base_response(&pending, Status::Degraded, attempt)
                    };
                    finish(inner, slot, &pending, resp);
                    span.end();
                    return Fate::Continue;
                }
                if !report.degraded() {
                    let text = polaris_ir::printer::print_program(&program);
                    let checksum = fnv1a(text.as_bytes());
                    match &run {
                        // Deadline fired mid-execution: like mid-compile
                        // cancellation, a retry would blow it again —
                        // serve the clean compile, degraded.
                        Some(Err(MachineError::Cancelled(reason))) => {
                            let newly = inner
                                .breaker
                                .record_failure(key, format!("deadline: {reason}"));
                            note_quarantine(inner, newly);
                            let resp = Response {
                                checksum: Some(checksum),
                                parallel_loops: Some(report.parallel_loops() as u64),
                                reason: Some(format!("deadline during execution: {reason}")),
                                program: pending.req.return_program.then_some(text),
                                ..base_response(&pending, Status::Degraded, attempt)
                            };
                            finish(inner, slot, &pending, resp);
                            span.end();
                            return Fate::Continue;
                        }
                        // Deterministic execution failure (bad subscript,
                        // fuel exhausted, …): same input fails the same
                        // way every time — answer, never retry.
                        Some(Err(e)) => {
                            let resp = Response {
                                checksum: Some(checksum),
                                parallel_loops: Some(report.parallel_loops() as u64),
                                reason: Some(format!("execution error: {e}")),
                                ..base_response(&pending, Status::Error, attempt)
                            };
                            finish(inner, slot, &pending, resp);
                            span.end();
                            return Fate::Continue;
                        }
                        _ => {}
                    }
                    let run_checksum = run
                        .and_then(Result::ok)
                        .map(|r| fnv1a(r.output.join("\n").as_bytes()));
                    // Clean: the only result that may enter the cache.
                    inner.cache.insert(key, text.clone(), report.parallel_loops() as u64);
                    if inner.breaker.record_success(key) {
                        inner.tallies.recovered.fetch_add(1, Ordering::SeqCst);
                        inner.rec.count(Counter::PolarisdRecovered, 1);
                    }
                    let resp = Response {
                        checksum: Some(checksum),
                        run_checksum,
                        parallel_loops: Some(report.parallel_loops() as u64),
                        program: pending.req.return_program.then_some(text),
                        ..base_response(&pending, Status::Ok, attempt)
                    };
                    finish(inner, slot, &pending, resp);
                    span.end();
                    return Fate::Continue;
                }
                // Degraded (a stage panicked, errored, or corrupted its
                // IR and was rolled back): transient by assumption —
                // retry; on the last attempt, serve the degraded result
                // rather than nothing.
                let stages = rolled_back(&report);
                last_failure = format!("degraded: rolled back {}", stages.join(", "));
                let newly = inner.breaker.record_failure(key, last_failure.clone());
                note_quarantine(inner, newly);
                if attempt >= max_attempts {
                    let violations = report.verify.violations;
                    let text = polaris_ir::printer::print_program(&program);
                    let resp = Response {
                        exit_code: if violations > 0 { 2 } else { 1 },
                        checksum: Some(fnv1a(text.as_bytes())),
                        parallel_loops: Some(report.parallel_loops() as u64),
                        degraded_stages: stages,
                        reason: Some(last_failure),
                        program: pending.req.return_program.then_some(text),
                        ..base_response(&pending, Status::Degraded, attempt)
                    };
                    finish(inner, slot, &pending, resp);
                    span.end();
                    return Fate::Continue;
                }
            }
            // The compile itself panicked past the pipeline's isolation
            // (or the parser did): transient, retry.
            Err(payload) => {
                last_failure = format!("panic: {}", panic_text(payload.as_ref()));
                let newly = inner.breaker.record_failure(key, last_failure.clone());
                note_quarantine(inner, newly);
                if attempt >= max_attempts {
                    break;
                }
            }
        }

        // Backoff before the retry, but never past the deadline.
        inner.tallies.retries.fetch_add(1, Ordering::SeqCst);
        inner.rec.count(Counter::PolarisdRetries, 1);
        let mut pause = inner.cfg.retry.backoff(attempt, &mut rng);
        if let Some(d) = pending.deadline_at {
            pause = pause.min(d.saturating_duration_since(Instant::now()));
        }
        std::thread::sleep(pause);
    }

    // Retries exhausted with no usable program: next ladder rungs.
    if let CacheOutcome::Hit(entry) = inner.cache.get(key) {
        inner.tallies.cache_hits.fetch_add(1, Ordering::SeqCst);
        inner.rec.count(Counter::PolarisdCacheHits, 1);
        let resp = Response {
            cached: true,
            checksum: Some(entry.checksum),
            parallel_loops: Some(entry.parallel_loops),
            reason: Some(format!("served from cache after: {last_failure}")),
            program: pending.req.return_program.then_some(entry.program_text),
            ..base_response(&pending, Status::Cached, attempt)
        };
        finish(inner, slot, &pending, resp);
        span.end();
        return Fate::Continue;
    }
    let resp = Response {
        reason: Some(format!("retries exhausted: {last_failure}")),
        retry_after_ms: Some(retry_after_hint(inner)),
        ..base_response(&pending, Status::Rejected, attempt)
    };
    finish(inner, slot, &pending, resp);
    span.end();
    Fate::Continue
}

/// Deregister from the in-flight table and answer. Also applies the
/// chaos cache-poisoning hook: the entry is corrupted after this
/// response was computed but before it is sent, so the *next* reader of
/// the entry is deterministically the one who must detect the poison.
fn finish(inner: &Arc<Inner>, slot: usize, pending: &Pending, resp: Response) {
    lock(&inner.inflight).remove(&slot);
    if let Some(chaos) = &inner.chaos {
        if chaos.poison_cache(pending.key, pending.req.id) {
            inner.cache.corrupt(pending.key);
        }
    }
    respond(inner, pending, resp);
}

/// The single exit point for responses: counts `answered` and sends.
/// Send errors (client dropped its ticket) are deliberately ignored.
fn respond(inner: &Inner, pending: &Pending, resp: Response) {
    inner.tallies.answered.fetch_add(1, Ordering::SeqCst);
    inner.rec.count(Counter::PolarisdAnswered, 1);
    let _ = pending.tx.send(resp);
}

fn base_response(pending: &Pending, status: Status, attempts: u32) -> Response {
    Response {
        id: pending.req.id,
        status,
        exit_code: status.exit_code(),
        attempts,
        cached: false,
        checksum: None,
        run_checksum: None,
        parallel_loops: None,
        degraded_stages: Vec::new(),
        reason: None,
        retry_after_ms: None,
        program: None,
    }
}

fn rolled_back(report: &CompileReport) -> Vec<String> {
    report.rolled_back_stages().iter().map(|s| s.to_string()).collect()
}

fn note_quarantine(inner: &Inner, newly_opened: bool) {
    if newly_opened {
        inner.tallies.quarantined.fetch_add(1, Ordering::SeqCst);
        inner.rec.count(Counter::PolarisdQuarantined, 1);
    }
}

fn retry_after_hint(inner: &Inner) -> u64 {
    inner.cfg.breaker_cooldown.as_millis().max(1) as u64
}

fn cancel_reason(cancel: &CancelToken) -> String {
    cancel.reason().unwrap_or_else(|| "cancelled".into())
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---- watchdog --------------------------------------------------------

/// Deadline enforcement and worker supervision, on one timer thread.
fn watchdog_loop(inner: &Arc<Inner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.watchdog_tick);

        // 1. Fire cancel tokens for in-flight requests past deadline.
        {
            let inflight = lock(&inner.inflight);
            let now = Instant::now();
            for fl in inflight.values() {
                if let Some(d) = fl.pending.deadline_at {
                    if now >= d && !fl.cancel.is_cancelled() {
                        let over = now.saturating_duration_since(d);
                        fl.cancel.cancel(format!(
                            "deadline exceeded by {}ms",
                            over.as_millis()
                        ));
                        inner.tallies.deadline_cancels.fetch_add(1, Ordering::SeqCst);
                        inner.rec.count(Counter::PolarisdDeadlineCancels, 1);
                    }
                }
            }
        }

        // 2. Respawn dead workers and recover their orphaned requests.
        //    (Skipped once shutdown began: workers exiting then are
        //    retiring, not dying — stop_and_join drains what remains.)
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let dead: Vec<usize> = {
            let mut workers = lock(&inner.workers);
            let mut dead = Vec::new();
            for (slot, h) in workers.iter_mut().enumerate() {
                if h.as_ref().is_some_and(|j| j.is_finished()) {
                    let _ = h.take().expect("checked is_some").join();
                    dead.push(slot);
                }
            }
            dead
        };
        for slot in dead {
            if let Some(fl) = lock(&inner.inflight).remove(&slot) {
                let mut p = fl.pending;
                p.prior_attempts = fl.attempt.max(p.prior_attempts);
                if p.prior_attempts >= inner.cfg.retry.max_attempts() {
                    // The request itself keeps killing workers: stop
                    // feeding it workers and answer.
                    let resp = Response {
                        reason: Some("workers died repeatedly on this request".into()),
                        retry_after_ms: Some(retry_after_hint(inner)),
                        ..base_response(&p, Status::Rejected, p.prior_attempts)
                    };
                    respond(inner, &p, resp);
                } else {
                    let mut sched = lock(&inner.sched);
                    sched.push_front(p);
                    inner.available.notify_one();
                }
            }
            inner.tallies.respawns.fetch_add(1, Ordering::SeqCst);
            inner.rec.count(Counter::PolarisdWorkerRespawns, 1);
            let handle = spawn_worker(slot, Arc::clone(inner));
            lock(&inner.workers)[slot] = Some(handle);
        }
    }
}

/// Fetch-or-create the adaptive controller for a unit's content key.
/// Sharing the `Arc` (rather than the latest decision snapshot) is what
/// lets adaptation history accumulate across separate requests for the
/// same source.
fn adaptive_for(inner: &Inner, key: u64) -> Arc<AdaptiveController> {
    Arc::clone(
        lock(&inner.adaptive)
            .entry(key)
            .or_insert_with(|| Arc::new(AdaptiveController::new())),
    )
}

// ---- lock helpers ----------------------------------------------------

/// Poison-recovering lock: every critical section in this module either
/// performs single-statement updates or is re-checked by its reader, so
/// recovery after a panicked holder is always safe — a crash-only service
/// cannot afford a poisoned mutex cascading into every thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

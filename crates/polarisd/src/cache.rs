//! Content-hash compile cache with poisoned-entry invalidation.
//!
//! Keys are the FNV-1a hash of the request source text mixed with the
//! pass configuration (the same unit compiled as `polaris` and as `vfa`
//! are different entries). Only *clean* compiles — full pipeline, zero
//! rolled-back stages, zero verifier violations — are ever inserted:
//! caching a degraded result would let a transient fault outlive itself.
//!
//! Every read re-derives the entry's integrity hash from the stored
//! program text and compares it to the checksum recorded at insert time.
//! A mismatch means the entry was poisoned (bit rot, a buggy writer, or
//! the chaos harness); the entry is purged on the spot and the caller
//! recompiles. A poisoned entry is **never** served.

use crate::proto::fnv1a;
use std::collections::HashMap;
use std::sync::Mutex;

/// What a cached clean compile remembers — enough to answer a request
/// without touching the pipeline.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The unparsed transformed program (annotated source).
    pub program_text: String,
    /// FNV-1a of `program_text` at insert time — the integrity hash.
    pub checksum: u64,
    pub parallel_loops: u64,
}

/// Outcome of a cache read.
#[derive(Debug)]
pub enum CacheOutcome {
    Hit(CacheEntry),
    /// An entry existed but failed its integrity check; it has been
    /// purged and the caller must recompile.
    Poisoned,
    Miss,
}

#[derive(Default)]
pub struct CompileCache {
    map: Mutex<HashMap<u64, CacheEntry>>,
}

impl CompileCache {
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Integrity-checked read: a hit whose stored text no longer hashes
    /// to its recorded checksum is purged and reported as `Poisoned`.
    pub fn get(&self, key: u64) -> CacheOutcome {
        let mut map = lock(&self.map);
        match map.get(&key) {
            None => CacheOutcome::Miss,
            Some(entry) if fnv1a(entry.program_text.as_bytes()) == entry.checksum => {
                CacheOutcome::Hit(entry.clone())
            }
            Some(_) => {
                map.remove(&key);
                CacheOutcome::Poisoned
            }
        }
    }

    /// Record a clean compile. The checksum is derived here from the text
    /// so entry and integrity hash cannot disagree at insert time.
    pub fn insert(&self, key: u64, program_text: String, parallel_loops: u64) {
        let checksum = fnv1a(program_text.as_bytes());
        lock(&self.map).insert(key, CacheEntry { program_text, checksum, parallel_loops });
    }

    /// Drop an entry (e.g. after a later compile of the same unit fails
    /// verification, casting doubt on what was cached).
    pub fn purge(&self, key: u64) -> bool {
        lock(&self.map).remove(&key).is_some()
    }

    /// Chaos hook: silently flip a byte of the stored program text so the
    /// next read's integrity check must catch it. Returns false when the
    /// key has no entry.
    pub fn corrupt(&self, key: u64) -> bool {
        let mut map = lock(&self.map);
        match map.get_mut(&key) {
            Some(entry) if !entry.program_text.is_empty() => {
                // Replace the first byte with a different ASCII byte (safe
                // for UTF-8: program text is ASCII F-Mini source).
                let mut bytes = entry.program_text.clone().into_bytes();
                bytes[0] = if bytes[0] == b'#' { b'%' } else { b'#' };
                entry.program_text = String::from_utf8(bytes).expect("ascii flip");
                true
            }
            _ => false,
        }
    }

    pub fn len(&self) -> usize {
        lock(&self.map).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lock, recovering from poisoning: cache state is a plain map and every
/// write is a single statement, so a panic between lock and unlock cannot
/// leave it torn — recovery is always safe.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_miss_before() {
        let cache = CompileCache::new();
        assert!(matches!(cache.get(1), CacheOutcome::Miss));
        cache.insert(1, "program t\nend\n".into(), 2);
        match cache.get(1) {
            CacheOutcome::Hit(e) => {
                assert_eq!(e.parallel_loops, 2);
                assert_eq!(e.checksum, fnv1a(b"program t\nend\n"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn poisoned_entry_is_detected_purged_and_never_served() {
        let cache = CompileCache::new();
        cache.insert(9, "program t\nend\n".into(), 0);
        assert!(cache.corrupt(9));
        assert!(matches!(cache.get(9), CacheOutcome::Poisoned));
        // purged: the poisoned bytes are gone, a re-read is a clean miss
        assert!(matches!(cache.get(9), CacheOutcome::Miss));
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_is_idempotent() {
        let cache = CompileCache::new();
        cache.insert(5, "x".into(), 0);
        assert!(cache.purge(5));
        assert!(!cache.purge(5));
        assert!(!cache.corrupt(5));
    }
}

//! Deterministic chaos injection for the service.
//!
//! [`ChaosHook`] is the seam the service exposes: before each compile
//! attempt it asks for a [`FaultPlan`] (stage panics, IR corruption,
//! stalls), whether the worker should die outright, and — after a
//! response is sent — whether to poison the cache entry. Production runs
//! pass no hook; the chaos conformance suite passes a [`ChaosPlan`].
//!
//! Every decision is a pure function of `(seed, unit key, request id,
//! attempt)` via SplitMix64, so a chaos run is exactly reproducible from
//! its seed regardless of thread interleaving, and — crucially — a fault
//! rolled for attempt 1 vanishes on attempt 2: rate-based faults are
//! transient *by construction*, which is what makes retry the correct
//! response to them. The optional [`Curse`] is the opposite: a unit/id
//! window where **every** attempt panics, deterministically exhausting
//! retries and driving the circuit breaker into quarantine (and, once the
//! window ends, back out through a half-open probe).

use crate::retry::mix;
use polaris_core::{CorruptKind, FaultPlan, STAGE_NAMES};

// Domain tags so each decision kind rolls an independent stream.
const D_PANIC: u64 = 0x70616e69; // "pani"
const D_STAGE: u64 = 0x73746167; // "stag"
const D_CORRUPT: u64 = 0x636f7272; // "corr"
const D_STALL: u64 = 0x7374616c; // "stal"
const D_KILL: u64 = 0x6b696c6c; // "kill"
const D_POISON: u64 = 0x706f6973; // "pois"
const D_EXEC: u64 = 0x65786563; // "exec"
const D_TABLE: u64 = 0x7461626c; // "tabl"

/// Chaos decisions the service consults. All defaults are "no fault".
pub trait ChaosHook: Send + Sync {
    /// Faults to arm for this compile attempt.
    fn compile_faults(&self, key: u64, req_id: u64, attempt: u32) -> FaultPlan {
        let _ = (key, req_id, attempt);
        FaultPlan::none()
    }

    /// Should the worker thread die (without responding) before this
    /// attempt? The watchdog must respawn the worker and re-queue the
    /// orphaned request.
    fn kill_worker(&self, key: u64, req_id: u64, attempt: u32) -> bool {
        let _ = (key, req_id, attempt);
        false
    }

    /// Should the cache entry for `key` be silently corrupted after this
    /// request is answered? The next read's integrity check must purge it.
    fn poison_cache(&self, key: u64, req_id: u64) -> bool {
        let _ = (key, req_id);
        false
    }

    /// Panic the execution engine (when [`ServiceConfig::exec_engine`] is
    /// set) once the interpreter's step counter reaches the returned
    /// value — a crash *inside* statement dispatch, caught by the same
    /// per-attempt isolation as a compile panic and retried identically
    /// under both engines.
    ///
    /// [`ServiceConfig::exec_engine`]: crate::service::ServiceConfig::exec_engine
    fn exec_panic(&self, key: u64, req_id: u64, attempt: u32) -> Option<u64> {
        let _ = (key, req_id, attempt);
        None
    }

    /// Flip bits in the unit's adaptive decision table before this
    /// attempt executes (only meaningful when the service runs with
    /// [`ServiceConfig::adaptive_schedule`]). The controller's integrity
    /// word must catch the damage on the next dispatch and fall back to
    /// static scheduling — never wedge, never change output bytes.
    ///
    /// [`ServiceConfig::adaptive_schedule`]: crate::service::ServiceConfig::adaptive_schedule
    fn corrupt_decision_table(&self, key: u64, req_id: u64, attempt: u32) -> bool {
        let _ = (key, req_id, attempt);
        false
    }
}

/// A unit/request-id window where every compile attempt panics — the
/// deterministic "pathological unit" that must end up quarantined.
#[derive(Debug, Clone)]
pub struct Curse {
    /// Content key of the cursed unit.
    pub key: u64,
    /// Request ids `from..to` (half-open) of the cursed unit fail.
    pub from_id: u64,
    pub to_id: u64,
}

/// Seeded, rate-based chaos plan. Rates are percentages (0–100) rolled
/// per request; rate faults fire on attempt 1 only.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    pub seed: u64,
    pub panic_pct: u8,
    pub corrupt_pct: u8,
    /// (rate pct, stall duration ms): the stage stalls, simulating a
    /// deadline blow when the request carries one.
    pub stall: Option<(u8, u64)>,
    pub kill_pct: u8,
    pub poison_pct: u8,
    /// Rate of injected panics inside statement execution (only
    /// meaningful when the service executes compiled programs).
    pub exec_panic_pct: u8,
    /// Rate of adaptive decision-table corruption (only meaningful when
    /// the service executes with adaptive scheduling).
    pub corrupt_table_pct: u8,
    pub curse: Option<Curse>,
}

impl ChaosPlan {
    pub fn seeded(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            panic_pct: 0,
            corrupt_pct: 0,
            stall: None,
            kill_pct: 0,
            poison_pct: 0,
            exec_panic_pct: 0,
            corrupt_table_pct: 0,
            curse: None,
        }
    }

    pub fn with_panic_pct(mut self, pct: u8) -> ChaosPlan {
        self.panic_pct = pct;
        self
    }

    pub fn with_corrupt_pct(mut self, pct: u8) -> ChaosPlan {
        self.corrupt_pct = pct;
        self
    }

    pub fn with_stall(mut self, pct: u8, millis: u64) -> ChaosPlan {
        self.stall = Some((pct, millis));
        self
    }

    pub fn with_kill_pct(mut self, pct: u8) -> ChaosPlan {
        self.kill_pct = pct;
        self
    }

    pub fn with_poison_pct(mut self, pct: u8) -> ChaosPlan {
        self.poison_pct = pct;
        self
    }

    pub fn with_exec_panic_pct(mut self, pct: u8) -> ChaosPlan {
        self.exec_panic_pct = pct;
        self
    }

    pub fn with_corrupt_table_pct(mut self, pct: u8) -> ChaosPlan {
        self.corrupt_table_pct = pct;
        self
    }

    pub fn with_curse(mut self, curse: Curse) -> ChaosPlan {
        self.curse = Some(curse);
        self
    }

    fn roll(&self, domain: u64, key: u64, req_id: u64) -> u64 {
        mix(&[self.seed, domain, key, req_id])
    }

    fn cursed(&self, key: u64, req_id: u64) -> bool {
        self.curse
            .as_ref()
            .is_some_and(|c| c.key == key && (c.from_id..c.to_id).contains(&req_id))
    }

    /// Does this request's first attempt stall (and for how long)? The
    /// chaos suite uses this to decide which requests get tight deadlines,
    /// keeping the deadline/stall alignment deterministic on both sides.
    pub fn would_stall(&self, key: u64, req_id: u64) -> Option<u64> {
        let (pct, ms) = self.stall?;
        (self.roll(D_STALL, key, req_id) % 100 < pct as u64).then_some(ms)
    }

    /// Is this request inside the curse window (every attempt fails)?
    pub fn is_cursed(&self, key: u64, req_id: u64) -> bool {
        self.cursed(key, req_id)
    }
}

impl ChaosHook for ChaosPlan {
    fn compile_faults(&self, key: u64, req_id: u64, attempt: u32) -> FaultPlan {
        if self.cursed(key, req_id) {
            // Every attempt panics: retries exhaust, the breaker opens.
            return FaultPlan::panic_in("analyze");
        }
        if attempt > 1 {
            // Rate faults are transient: the retry compiles clean.
            return FaultPlan::none();
        }
        if self.roll(D_PANIC, key, req_id) % 100 < self.panic_pct as u64 {
            let stage = STAGE_NAMES
                [(self.roll(D_STAGE, key, req_id) % STAGE_NAMES.len() as u64) as usize];
            return FaultPlan::panic_in(stage);
        }
        if self.roll(D_CORRUPT, key, req_id) % 100 < self.corrupt_pct as u64 {
            let kind = CorruptKind::ALL
                [(self.roll(D_STAGE, key, req_id) % CorruptKind::ALL.len() as u64) as usize];
            return FaultPlan::corrupt_in("dce", kind);
        }
        if let Some(ms) = self.would_stall(key, req_id) {
            return FaultPlan::stall_in("induction", ms);
        }
        FaultPlan::none()
    }

    fn kill_worker(&self, key: u64, req_id: u64, attempt: u32) -> bool {
        attempt == 1
            && !self.cursed(key, req_id)
            && self.roll(D_KILL, key, req_id) % 100 < self.kill_pct as u64
    }

    fn poison_cache(&self, key: u64, req_id: u64) -> bool {
        self.roll(D_POISON, key, req_id) % 100 < self.poison_pct as u64
    }

    fn exec_panic(&self, key: u64, req_id: u64, attempt: u32) -> Option<u64> {
        if attempt > 1 || self.cursed(key, req_id) {
            return None; // transient, like every other rate fault
        }
        let r = self.roll(D_EXEC, key, req_id);
        // Steps 1..=32: early enough to fire inside any real program's
        // execution, varied enough to land in different statements.
        (r % 100 < self.exec_panic_pct as u64).then_some(1 + (r >> 32) % 32)
    }

    fn corrupt_decision_table(&self, key: u64, req_id: u64, attempt: u32) -> bool {
        // Unlike rate faults, table corruption is NOT restricted to
        // attempt 1: the controller itself must recover (integrity check
        // → reset → static fallback), not the retry machinery.
        let _ = attempt;
        self.roll(D_TABLE, key, req_id) % 100 < self.corrupt_table_pct as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_core::FaultKind;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = ChaosPlan::seeded(7).with_panic_pct(50).with_kill_pct(10);
        let b = ChaosPlan::seeded(7).with_panic_pct(50).with_kill_pct(10);
        for req in 0..200 {
            assert_eq!(
                a.compile_faults(1, req, 1),
                b.compile_faults(1, req, 1)
            );
            assert_eq!(a.kill_worker(1, req, 1), b.kill_worker(1, req, 1));
            assert_eq!(a.poison_cache(1, req), b.poison_cache(1, req));
        }
    }

    #[test]
    fn rate_faults_fire_on_first_attempt_only() {
        let plan = ChaosPlan::seeded(3).with_panic_pct(100);
        assert!(!plan.compile_faults(9, 4, 1).is_empty());
        assert!(plan.compile_faults(9, 4, 2).is_empty());
        assert!(!plan.kill_worker(9, 4, 1) || !plan.kill_worker(9, 4, 2));
    }

    #[test]
    fn curse_fails_every_attempt_inside_the_window_only() {
        let plan = ChaosPlan::seeded(1).with_curse(Curse { key: 42, from_id: 10, to_id: 20 });
        for attempt in 1..=4 {
            assert!(!plan.compile_faults(42, 15, attempt).is_empty());
        }
        assert!(plan.compile_faults(42, 9, 1).is_empty());
        assert!(plan.compile_faults(42, 20, 1).is_empty());
        assert!(plan.compile_faults(41, 15, 1).is_empty());
        assert!(plan.is_cursed(42, 10) && !plan.is_cursed(42, 20));
    }

    #[test]
    fn rates_roughly_respected() {
        let plan = ChaosPlan::seeded(11).with_panic_pct(25);
        let hits = (0..1000)
            .filter(|&r| !plan.compile_faults(5, r, 1).is_empty())
            .count();
        assert!((150..350).contains(&hits), "{hits}");
    }

    #[test]
    fn stall_plan_arms_a_stall_fault() {
        let plan = ChaosPlan::seeded(2).with_stall(100, 40);
        let faults = plan.compile_faults(8, 1, 1);
        let program = polaris_ir::parse("program t\nend\n").unwrap();
        let armed = faults.armed_for("induction", &program).unwrap();
        assert_eq!(armed.kind, FaultKind::Stall(40));
        assert_eq!(plan.would_stall(8, 1), Some(40));
    }
}

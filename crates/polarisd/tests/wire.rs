//! End-to-end tests of the `polarisd` binary over both transports:
//! JSON-lines on stdin/stdout, and the localhost TCP listener.

use polarisd::proto::{fnv1a, Request, Response, Status};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const SRC: &str = "program wire\n\
                   real v(64)\n\
                   s = 0.0\n\
                   do i = 1, 64\n\
                   \x20 v(i) = i * 2.0\n\
                   end do\n\
                   do i = 1, 64\n\
                   \x20 s = s + v(i)\n\
                   end do\n\
                   print *, s\n\
                   end\n";

fn clean_checksum() -> u64 {
    let mut program = polaris_ir::parse(SRC).unwrap();
    polaris_core::compile(&mut program, &polaris_core::PassOptions::polaris()).unwrap();
    fnv1a(polaris_ir::printer::print_program(&program).as_bytes())
}

fn request(id: u64, source: &str) -> String {
    Request {
        id,
        client: "wire-test".into(),
        vfa: false,
        deadline_ms: None,
        return_program: false,
        source: source.into(),
    }
    .to_json()
}

/// Watchdog for the whole test: a child that outlives this is a hang.
struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn stdio_round_trip_answers_every_line() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_polarisd"))
        .args(["--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn polarisd");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    // Request 1 is answered before the duplicate is sent, so request 2
    // deterministically finds the cache populated (sending both at once
    // would race two compiles of the same unit across the two workers).
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{}", request(1, SRC)).unwrap();
    }
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let r1 = Response::parse(first.trim()).expect("first response parses");
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{}", request(2, SRC)).unwrap();
        writeln!(stdin, "{}", request(3, "not a program")).unwrap();
        writeln!(stdin, "this line is not json").unwrap();
    }
    drop(child.stdin.take()); // EOF: daemon answers what it has and exits
    let mut child = KillOnDrop(child);

    let mut by_id: HashMap<u64, Response> = HashMap::new();
    by_id.insert(r1.id, r1);
    for line in reader.lines() {
        let line = line.expect("read response line");
        let resp = Response::parse(&line).expect("every output line is a polarisd/v1 response");
        by_id.insert(resp.id, resp);
    }
    assert_eq!(by_id.len(), 4, "four lines in, four responses out");

    let want = clean_checksum();
    let r1 = &by_id[&1];
    let r2 = &by_id[&2];
    assert_eq!(r1.exit_code, 0);
    assert_eq!(r2.exit_code, 0);
    assert_eq!(r1.checksum, Some(want));
    assert_eq!(r2.checksum, Some(want));
    assert_eq!(r1.status, Status::Ok, "{r1:?}");
    assert_eq!(r2.status, Status::Cached, "{r2:?}");
    assert_eq!(by_id[&3].status, Status::Error);
    assert_eq!(by_id[&3].exit_code, 1);
    // The non-JSON line is answered on id 0 rather than dropped.
    assert_eq!(by_id[&0].status, Status::Error);
    assert!(by_id[&0].reason.as_deref().unwrap().contains("bad request"));

    assert!(child.0.wait().expect("daemon exits at stdin EOF").success());
}

#[test]
fn tcp_round_trip_on_an_ephemeral_port() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_polarisd"))
        .args(["--workers", "2", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn polarisd");
    let stdout = child.stdout.take().unwrap();
    let child = KillOnDrop(child);

    let mut announce = String::new();
    BufReader::new(stdout).read_line(&mut announce).unwrap();
    let addr = announce
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad announce line: {announce:?}"));

    let stream = TcpStream::connect(addr).expect("connect to announced address");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{}", request(7, SRC)).unwrap();
    writeln!(writer, "{}", request(8, SRC)).unwrap();
    writer.flush().unwrap();

    let mut by_id = HashMap::new();
    let mut lines = BufReader::new(stream).lines();
    for _ in 0..2 {
        let line = lines.next().expect("connection stays open").unwrap();
        let resp = Response::parse(&line).unwrap();
        by_id.insert(resp.id, resp);
    }
    let want = clean_checksum();
    assert_eq!(by_id[&7].checksum, Some(want));
    assert_eq!(by_id[&8].checksum, Some(want));
    assert_eq!(by_id[&8].exit_code, 0);
    drop(child); // kills the listener
}

//! The engine axis of the chaos suite: with execution enabled
//! (`exec_engine`), a seeded storm of panics injected *inside statement
//! dispatch* must be isolated and retried by the per-attempt fault
//! boundary exactly as compile-stage panics are — identically under the
//! tree-walker and the bytecode VM, and identically across pool sizes.
//!
//! Per configuration (pool ∈ {2, 8} × engine ∈ {tree-walk, vm}):
//!
//! * every accepted request is answered (`accepted == answered`);
//! * every `ok` response carries the run checksum of a clean
//!   out-of-band execution of the same unit;
//! * injected exec panics are retried (`stats.retries > 0`) and the
//!   retry succeeds — a dispatch panic never surfaces to the client.
//!
//! Across all four configurations the `(status, exit_code,
//! run_checksum)` sequence must be byte-identical: fault handling may
//! not depend on which engine dispatched the statement or how many
//! workers raced.

use polaris_machine::{Engine, MachineConfig};
use polaris_obs::Recorder;
use polarisd::chaos::ChaosPlan;
use polarisd::proto::{fnv1a, Request, Status};
use polarisd::service::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: u64 = 40;
const SEED: u64 = 0xbc_0ffee;
const HANG: Duration = Duration::from_secs(20);

/// One unique unit per request id — no cache hits, so every request
/// executes, and the per-key chaos roll is the same in every
/// configuration.
fn unit_source(id: u64) -> String {
    let n = 24 + id;
    format!(
        "program e{id}\n\
         real v({n})\n\
         s = 0.0\n\
         do i = 1, {n}\n\
         \x20 v(i) = i * 2.0\n\
         end do\n\
         do i = 1, {n}\n\
         \x20 s = s + v(i)\n\
         end do\n\
         print *, s\n\
         end\n"
    )
}

/// Clean out-of-band checksum: compile and execute the unit with no
/// service and no chaos in the way.
fn clean_run_checksum(src: &str, engine: Engine) -> u64 {
    let (program, report) =
        polaris_core::parse_and_compile(src, &polaris_core::PassOptions::polaris()).unwrap();
    assert!(!report.degraded());
    let out = polaris_machine::run(&program, &MachineConfig::serial().with_engine(engine))
        .expect("clean corpus executes")
        .output;
    fnv1a(out.join("\n").as_bytes())
}

fn run_config(pool: usize, engine: Engine) -> Vec<(Status, u8, Option<u64>)> {
    let plan = ChaosPlan::seeded(SEED).with_exec_panic_pct(30);
    let cfg = ServiceConfig {
        workers: pool,
        exec_engine: Some(engine),
        exec_fuel: Some(1_000_000),
        ..ServiceConfig::default()
    };
    let service = Service::with_chaos(cfg, Recorder::disabled(), Arc::new(plan));

    let mut outcomes = Vec::new();
    for id in 0..REQUESTS {
        let resp = service
            .submit(Request {
                id,
                client: format!("e{}", id % 4),
                vfa: false,
                deadline_ms: None,
                return_program: false,
                source: unit_source(id),
            })
            .wait_timeout(HANG)
            .unwrap_or_else(|| panic!("pool {pool} {engine:?}: request {id} hung"));
        let ctx = format!("pool {pool} {engine:?} request {id}: {resp:?}");
        assert_eq!(resp.status, Status::Ok, "a dispatch panic leaked to the client — {ctx}");
        assert_eq!(resp.exit_code, 0, "{ctx}");
        assert_eq!(
            resp.run_checksum,
            Some(clean_run_checksum(&unit_source(id), engine)),
            "served execution output differs from a clean run — {ctx}"
        );
        outcomes.push((resp.status, resp.exit_code, resp.run_checksum));
    }

    let stats = service.shutdown();
    assert_eq!(
        stats.accepted, stats.answered,
        "pool {pool} {engine:?}: accepted requests went unanswered"
    );
    assert!(
        stats.retries > 0,
        "pool {pool} {engine:?}: the storm injected no exec panics — the retry \
         path was not exercised (stats: {stats:?})"
    );
    outcomes
}

#[test]
fn exec_panics_are_isolated_and_retried_identically_across_engines_and_pools() {
    let mut all = Vec::new();
    for pool in [2usize, 8] {
        for engine in [Engine::TreeWalk, Engine::Vm] {
            all.push(((pool, engine), run_config(pool, engine)));
        }
    }
    let (baseline_cfg, baseline) = &all[0];
    for (cfg, outcomes) in &all[1..] {
        assert_eq!(
            outcomes, baseline,
            "{cfg:?} diverged from {baseline_cfg:?}: fault handling must not \
             depend on the engine or the pool size"
        );
    }
}

//! Targeted, deterministic checks of each resilience behavior in
//! isolation. The randomized end-to-end storm lives in
//! `chaos_conformance.rs`; these tests pin each mechanism with chaos
//! rates at 0 or 100 so a regression points at one subsystem.

use polaris_obs::Recorder;
use polarisd::chaos::{ChaosPlan, Curse};
use polarisd::proto::{fnv1a, Request, Status};
use polarisd::service::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(20);

fn unit_source(tag: u32) -> String {
    let n = 40 + tag * 8;
    format!(
        "program u{tag}\n\
         real v({n})\n\
         s = 0.0\n\
         do i = 1, {n}\n\
         \x20 v(i) = i * 2.0\n\
         end do\n\
         do i = 1, {n}\n\
         \x20 s = s + v(i)\n\
         end do\n\
         print *, s\n\
         end\n"
    )
}

/// What the service must reproduce byte-for-byte: an independent clean
/// compile of the same unit under the same options.
fn clean_checksum(source: &str) -> u64 {
    let mut program = polaris_ir::parse(source).expect("corpus parses");
    let report = polaris_core::compile(&mut program, &polaris_core::PassOptions::polaris())
        .expect("corpus compiles");
    assert!(!report.degraded(), "corpus must compile clean");
    fnv1a(polaris_ir::printer::print_program(&program).as_bytes())
}

fn request(id: u64, source: &str) -> Request {
    Request {
        id,
        client: "test".into(),
        vfa: false,
        deadline_ms: None,
        return_program: false,
        source: source.into(),
    }
}

fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        breaker_cooldown: Duration::from_millis(40),
        ..ServiceConfig::default()
    }
}

#[test]
fn clean_compile_is_ok_then_served_from_cache() {
    let src = unit_source(1);
    let want = clean_checksum(&src);
    let service = Service::new(cfg(2));

    let first = service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(first.status, Status::Ok);
    assert_eq!(first.exit_code, 0);
    assert_eq!(first.attempts, 1);
    assert_eq!(first.checksum, Some(want));
    assert!(!first.cached);

    let second = service.submit(request(2, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(second.status, Status::Cached);
    assert_eq!(second.exit_code, 0);
    assert!(second.cached);
    assert_eq!(second.checksum, Some(want));

    let stats = service.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.answered, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn vfa_and_polaris_configs_cache_separately() {
    let src = unit_source(2);
    let service = Service::new(cfg(2));
    let polaris = service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    let vfa = service
        .submit(Request { id: 2, vfa: true, ..request(2, &src) })
        .wait_timeout(WAIT)
        .unwrap();
    // Different pass configuration ⇒ different content key ⇒ both are
    // compiles, not a cache hit on the other's entry.
    assert_eq!(polaris.status, Status::Ok);
    assert_eq!(vfa.status, Status::Ok);
    assert_eq!(service.stats().cache_hits, 0);
    assert_eq!(service.cache_len(), 2);
}

#[test]
fn parse_error_is_answered_once_and_never_retried() {
    let service = Service::new(cfg(2));
    let resp = service
        .submit(request(1, "program broken\nthis is not f-mini\n"))
        .wait_timeout(WAIT)
        .unwrap();
    assert_eq!(resp.status, Status::Error);
    assert_eq!(resp.exit_code, 1);
    assert_eq!(resp.attempts, 1, "deterministic failures must not burn retries");
    assert!(resp.reason.unwrap().contains("compile error"));
    let stats = service.shutdown();
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.quarantined, 0, "deterministic failures never charge the breaker");
}

#[test]
fn transient_panic_is_retried_to_a_clean_answer() {
    let src = unit_source(3);
    let want = clean_checksum(&src);
    // 100% panic rate, but rate faults are transient by construction
    // (attempt 1 only): the retry compiles clean.
    let chaos = Arc::new(ChaosPlan::seeded(5).with_panic_pct(100));
    let service = Service::with_chaos(cfg(2), Recorder::disabled(), chaos);
    let resp = service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.attempts, 2);
    assert_eq!(resp.checksum, Some(want));
    let stats = service.shutdown();
    assert_eq!(stats.retries, 1);
}

#[test]
fn cursed_unit_is_quarantined_then_recovers_through_a_probe() {
    let src = unit_source(4);
    let want = clean_checksum(&src);
    let key = Service::content_key(&request(0, &src));
    let chaos =
        Arc::new(ChaosPlan::seeded(9).with_curse(Curse { key, from_id: 0, to_id: 100 }));
    let service = Service::with_chaos(cfg(2), Recorder::disabled(), chaos);

    // Every attempt of a cursed request panics in `analyze`; the pipeline
    // rolls the stage back each time, so after all retries the request is
    // served the degraded program — and three consecutive failures
    // (threshold 3) open the breaker.
    let r1 = service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r1.status, Status::Degraded);
    assert_eq!(r1.exit_code, 1);
    assert_eq!(r1.attempts, 3);
    assert!(r1.reason.as_deref().unwrap().contains("rolled back"));
    assert_eq!(r1.degraded_stages, vec!["analyze".to_string()]);

    // Quarantined: answered from stored diagnostics, no compile at all.
    let r2 = service.submit(request(2, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r2.status, Status::Quarantined);
    assert_eq!(r2.attempts, 0);
    assert!(!r2.degraded_stages.is_empty(), "serves the stored diagnostics");
    assert!(r2.retry_after_ms.is_some());

    // After the cooldown, a request outside the curse window is admitted
    // as the half-open probe, compiles clean, and closes the breaker.
    std::thread::sleep(Duration::from_millis(55));
    let r3 = service.submit(request(200, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r3.status, Status::Ok);
    assert_eq!(r3.checksum, Some(want));

    let stats = service.shutdown();
    assert!(stats.quarantined >= 1, "{stats:?}");
    assert_eq!(stats.recovered, 1, "{stats:?}");
    assert!(stats.probes >= 1, "{stats:?}");
}

#[test]
fn cached_units_absorb_a_curse_without_charging_the_breaker() {
    let src = unit_source(5);
    let want = clean_checksum(&src);
    let key = Service::content_key(&request(0, &src));
    // Curse starts at id 10: id 1 compiles clean and populates the cache.
    let chaos =
        Arc::new(ChaosPlan::seeded(2).with_curse(Curse { key, from_id: 10, to_id: 100 }));
    let service = Service::with_chaos(cfg(2), Recorder::disabled(), chaos);

    assert_eq!(service.submit(request(1, &src)).wait_timeout(WAIT).unwrap().status, Status::Ok);
    // The cursed request never reaches the pipeline — the cache rung of
    // the ladder answers it, so the curse cannot open the breaker.
    let r = service.submit(request(10, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r.status, Status::Cached);
    assert_eq!(r.checksum, Some(want));
    let stats = service.shutdown();
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn failed_probe_reopens_the_breaker() {
    let src = unit_source(13);
    let key = Service::content_key(&request(0, &src));
    // Everything below id 100 is cursed; nothing is ever cached.
    let chaos =
        Arc::new(ChaosPlan::seeded(7).with_curse(Curse { key, from_id: 0, to_id: 100 }));
    let service = Service::with_chaos(cfg(2), Recorder::disabled(), chaos);

    let r1 = service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r1.status, Status::Degraded); // 3 failed attempts → open
    std::thread::sleep(Duration::from_millis(55));
    // The probe is admitted but is itself cursed: it must fail and
    // re-open the breaker for a fresh cooldown.
    let r2 = service.submit(request(2, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r2.status, Status::Degraded);
    let r3 = service.submit(request(3, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r3.status, Status::Quarantined, "re-opened: back to serving diagnostics");
    // A clean probe after the next cooldown still recovers it.
    std::thread::sleep(Duration::from_millis(55));
    let r4 = service.submit(request(200, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(r4.status, Status::Ok);
    let stats = service.shutdown();
    assert!(stats.quarantined >= 2, "opened at least twice: {stats:?}");
    assert_eq!(stats.recovered, 1);
    assert!(stats.probes >= 2);
}

#[test]
fn poisoned_cache_entry_is_purged_and_recompiled_not_served() {
    let src = unit_source(6);
    let want = clean_checksum(&src);
    // Poison the cache entry after every response.
    let chaos = Arc::new(ChaosPlan::seeded(4).with_poison_pct(100));
    let service = Service::with_chaos(cfg(2), Recorder::disabled(), chaos);

    let first = service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(first.status, Status::Ok);
    // The entry is now corrupted. The integrity check must catch it: a
    // full recompile (status ok, not cached), never the poisoned bytes.
    let second = service.submit(request(2, &src)).wait_timeout(WAIT).unwrap();
    assert_eq!(second.status, Status::Ok, "poisoned entry must not be served");
    assert_eq!(second.checksum, Some(want));
    let stats = service.shutdown();
    assert_eq!(stats.poison_purged, 1);
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn deadline_blow_mid_compile_degrades_instead_of_hanging() {
    let src = unit_source(7);
    // Every first attempt stalls 300ms inside the induction stage; the
    // request carries a 30ms deadline. The watchdog must cancel the
    // compile cooperatively and the caller gets a degraded answer fast.
    let chaos = Arc::new(ChaosPlan::seeded(8).with_stall(100, 300));
    let service = Service::with_chaos(cfg(2), Recorder::disabled(), chaos);
    let resp = service
        .submit(Request { deadline_ms: Some(30), ..request(1, &src) })
        .wait_timeout(WAIT)
        .expect("must answer well before the hang detector");
    assert_eq!(resp.status, Status::Degraded);
    assert_eq!(resp.exit_code, 1);
    assert_eq!(resp.attempts, 1, "deadline blows are never retried");
    assert!(resp.reason.as_deref().unwrap().contains("deadline"));
    assert!(!resp.degraded_stages.is_empty(), "stages after the stall rolled back");
    let stats = service.shutdown();
    assert!(stats.deadline_cancels >= 1, "{stats:?}");
    assert_eq!(stats.retries, 0);
}

#[test]
fn generous_deadline_is_not_hit_and_result_is_clean() {
    let src = unit_source(8);
    let want = clean_checksum(&src);
    let service = Service::new(cfg(2));
    let resp = service
        .submit(Request { deadline_ms: Some(5_000), ..request(1, &src) })
        .wait_timeout(WAIT)
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.checksum, Some(want));
    assert_eq!(service.stats().deadline_cancels, 0);
}

#[test]
fn overload_sheds_the_oldest_queued_request_with_a_hint() {
    let src = unit_source(9);
    // One worker, tiny queue, every compile stalls 80ms: submissions
    // outrun the drain and the queue must shed.
    let chaos = Arc::new(ChaosPlan::seeded(3).with_stall(100, 80));
    let service = Service::with_chaos(
        ServiceConfig { workers: 1, queue_capacity: 2, ..cfg(1) },
        Recorder::disabled(),
        chaos,
    );
    let tickets: Vec<_> = (0..6).map(|i| service.submit(request(i, &src))).collect();
    let responses: Vec<_> =
        tickets.into_iter().map(|t| t.wait_timeout(WAIT).unwrap()).collect();
    let shed: Vec<_> = responses
        .iter()
        .filter(|r| r.status == Status::Rejected)
        .collect();
    assert!(!shed.is_empty(), "queue of 2 cannot absorb 6 stalled requests");
    for r in &shed {
        assert!(r.reason.as_deref().unwrap().contains("shed"));
        assert!(r.retry_after_ms.is_some(), "shed responses carry a backoff hint");
    }
    let stats = service.shutdown();
    assert_eq!(stats.shed, shed.len() as u64);
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.answered, 6, "shed requests are still answered");
}

#[test]
fn dead_worker_is_respawned_and_the_orphan_is_answered() {
    let src = unit_source(10);
    let want = clean_checksum(&src);
    // Every request's first attempt kills its worker. The watchdog must
    // respawn the (only) worker and re-queue the orphan, which then
    // compiles clean on attempt 2.
    let chaos = Arc::new(ChaosPlan::seeded(6).with_kill_pct(100));
    let service = Service::with_chaos(
        ServiceConfig { workers: 1, ..cfg(1) },
        Recorder::disabled(),
        chaos,
    );
    for id in 1..=2 {
        let resp = service.submit(request(id, &src)).wait_timeout(WAIT).unwrap();
        // id 1 compiles on attempt 2; id 2 hits the cache it populated
        // (cache reads happen before the kill roll).
        assert!(resp.status == Status::Ok || resp.status == Status::Cached, "{resp:?}");
        assert_eq!(resp.checksum, Some(want));
    }
    let stats = service.shutdown();
    assert!(stats.respawns >= 1, "{stats:?}");
    assert_eq!(stats.answered, 2);
}

#[test]
fn counters_and_spans_land_in_the_recorder() {
    let src = unit_source(11);
    let service = Service::with_recorder(cfg(2), Recorder::virtual_clock());
    service.submit(request(1, &src)).wait_timeout(WAIT).unwrap();
    service.submit(request(2, &src)).wait_timeout(WAIT).unwrap();
    let rec = service.recorder().clone();
    service.shutdown(); // workers end their spans before we read events
    let counters = rec.counters();
    assert_eq!(counters["polarisd.requests.accepted"], 2);
    assert_eq!(counters["polarisd.requests.answered"], 2);
    assert_eq!(counters["polarisd.cache.hits"], 1);
    assert_eq!(counters["polarisd.cache.misses"], 1);
    let events = rec.events();
    assert!(
        events.iter().any(|e| e.cat == "polarisd" && e.name.starts_with("request:")),
        "per-request spans recorded"
    );
    polaris_obs::validate_nesting(&events).expect("span stream well-nested per worker");
}

#[test]
fn shutdown_is_graceful_and_final_stats_balance() {
    let src = unit_source(12);
    let service = Service::new(cfg(2));
    let tickets: Vec<_> = (0..8).map(|i| service.submit(request(i, &src))).collect();
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.answered, 8);
    // Shutdown drained the queue: every ticket resolves.
    for t in tickets {
        assert!(t.wait_timeout(Duration::from_secs(1)).is_some());
    }
}

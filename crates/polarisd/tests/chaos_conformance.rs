//! Chaos conformance: the service's resilience claims under a seeded,
//! deterministic fault storm.
//!
//! Each seed drives one service instance through ~210 requests from four
//! clients over a six-unit corpus while the chaos plan injects stage
//! panics, IR corruption, stalls against tight deadlines, worker deaths,
//! cache poisoning, and one "cursed" unit that fails every attempt until
//! its request-id window closes. The suite asserts, per seed:
//!
//! * **no deadlocks / hangs** — every ticket resolves under a 20 s hang
//!   detector;
//! * **every accepted request is answered** — `accepted == answered`;
//! * **no wrong-checksum responses** — every `ok`/`cached` response's
//!   checksum (and, for a sampled request, full program text) is
//!   byte-identical to an independent clean compile of that unit;
//! * **quarantine works end to end** — the cursed unit opens its breaker
//!   and later recovers through a half-open probe.
//!
//! Sweep-wide (across all seeds) it additionally asserts that every
//! fault path actually fired: retries, deadline cancellations, poisoned
//! cache purges, load shedding, and worker respawns.
//!
//! `CHAOS_SEEDS` overrides the seed count (default 64; the sweep-wide
//! assertions need at least 8).
//!
//! A separate adaptive-scheduler storm (`adaptive_chaos_storm_*`) turns
//! on execution with per-content adaptive dispatch and injects worker
//! panics mid-measurement plus decision-table corruption: run checksums
//! must never drift from a clean serial execution, and the adaptation
//! table must recover to sane state rather than wedge.

use polaris_machine::{Engine, MachineConfig};
use polaris_obs::Recorder;
use polarisd::chaos::{ChaosHook, ChaosPlan, Curse};
use polarisd::proto::{fnv1a, Request, Status};
use polarisd::service::{Service, ServiceConfig, ServiceStats};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: u64 = 200;
const UNITS: usize = 6;
const CURSE_END: u64 = 120;
const HANG: Duration = Duration::from_secs(20);

fn unit_source(u: usize) -> String {
    let n = 40 + u * 8;
    format!(
        "program u{u}\n\
         real v({n})\n\
         s = 0.0\n\
         do i = 1, {n}\n\
         \x20 v(i) = i * 2.0\n\
         end do\n\
         do i = 1, {n}\n\
         \x20 s = s + v(i)\n\
         end do\n\
         print *, s\n\
         end\n"
    )
}

struct Corpus {
    sources: Vec<String>,
    clean_text: Vec<String>,
    clean_sum: Vec<u64>,
    keys: Vec<u64>,
}

fn corpus() -> Corpus {
    let sources: Vec<String> = (0..UNITS).map(unit_source).collect();
    let mut clean_text = Vec::new();
    let mut clean_sum = Vec::new();
    let mut keys = Vec::new();
    for src in &sources {
        let mut program = polaris_ir::parse(src).expect("corpus parses");
        let report =
            polaris_core::compile(&mut program, &polaris_core::PassOptions::polaris())
                .expect("corpus compiles");
        assert!(!report.degraded(), "corpus must compile clean");
        let text = polaris_ir::printer::print_program(&program);
        clean_sum.push(fnv1a(text.as_bytes()));
        clean_text.push(text);
        keys.push(Service::content_key(&req(0, src, None, false)));
    }
    Corpus { sources, clean_text, clean_sum, keys }
}

fn req(id: u64, source: &str, deadline_ms: Option<u64>, return_program: bool) -> Request {
    Request {
        id,
        client: format!("c{}", id % 4),
        vfa: false,
        deadline_ms,
        return_program,
        source: source.into(),
    }
}

fn seeds() -> u64 {
    std::env::var("CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Run one seeded storm; panics on any conformance violation.
fn run_seed(corpus: &Corpus, seed: u64, pool: usize, record: bool) -> ServiceStats {
    let cursed_unit = (seed as usize) % UNITS;
    let plan = ChaosPlan::seeded(seed)
        .with_panic_pct(8)
        .with_corrupt_pct(6)
        .with_stall(5, 30)
        .with_kill_pct(2)
        .with_poison_pct(10)
        .with_curse(Curse { key: corpus.keys[cursed_unit], from_id: 0, to_id: CURSE_END });
    let cfg = ServiceConfig {
        workers: pool,
        queue_capacity: 24,
        breaker_cooldown: Duration::from_millis(60),
        ..ServiceConfig::default()
    };
    let rec = if record { Recorder::virtual_clock() } else { Recorder::disabled() };
    let service = Service::with_chaos(cfg, rec, Arc::new(plan.clone()));

    // One non-cursed, non-stalled request per seed also round-trips the
    // full program text, not just the checksum.
    let sampled = (0..REQUESTS)
        .find(|&id| {
            let u = (id % UNITS as u64) as usize;
            u != cursed_unit && plan.would_stall(corpus.keys[u], id).is_none() && id % 7 != 0
        })
        .expect("some request is plain");

    let build = |id: u64| {
        let u = (id % UNITS as u64) as usize;
        let key = corpus.keys[u];
        let deadline = if plan.is_cursed(key, id) {
            None // keep curse outcomes deterministic: fail by panic, not clock
        } else if plan.would_stall(key, id).is_some() {
            Some(12) // the 30ms stall must blow this
        } else if id.is_multiple_of(7) {
            Some(2_000) // generous: must never be hit
        } else {
            None
        };
        req(id, &corpus.sources[u], deadline, id == sampled)
    };

    let mut responses = Vec::new();
    let mut window: VecDeque<(u64, polarisd::Ticket)> = VecDeque::new();
    // Phase A (ids 0..160): bounded to 16 outstanding — no shedding, so
    // curse/cache/deadline behavior is exercised on every request.
    for id in 0..160 {
        window.push_back((id, service.submit(build(id))));
        if window.len() >= 16 {
            let (id, t) = window.pop_front().unwrap();
            responses.push((id, t.wait_timeout(HANG).unwrap_or_else(|| {
                panic!("seed {seed} pool {pool}: request {id} hung")
            })));
        }
    }
    // Phase B (ids 160..200): a burst past the queue capacity — the
    // service must shed rather than accept unbounded work.
    for id in 160..REQUESTS {
        window.push_back((id, service.submit(build(id))));
    }
    for (id, t) in window {
        responses.push((id, t.wait_timeout(HANG).unwrap_or_else(|| {
            panic!("seed {seed} pool {pool}: request {id} hung")
        })));
    }

    // Conformance checks on every single response.
    assert_eq!(responses.len() as u64, REQUESTS);
    for (id, resp) in &responses {
        let u = (*id % UNITS as u64) as usize;
        let ctx = format!("seed {seed} pool {pool} request {id}: {resp:?}");
        assert_eq!(resp.id, *id, "{ctx}");
        match resp.status {
            Status::Ok | Status::Cached => {
                assert_eq!(resp.exit_code, 0, "{ctx}");
                assert_eq!(
                    resp.checksum,
                    Some(corpus.clean_sum[u]),
                    "served result differs from a clean compile — {ctx}"
                );
                if *id == sampled {
                    assert_eq!(
                        resp.program.as_deref(),
                        Some(corpus.clean_text[u].as_str()),
                        "program text not byte-identical — {ctx}"
                    );
                }
            }
            Status::Degraded => {
                assert!(resp.exit_code == 1 || resp.exit_code == 2, "{ctx}");
                assert!(
                    !resp.degraded_stages.is_empty() || resp.reason.is_some(),
                    "{ctx}"
                );
            }
            Status::Timeout | Status::Quarantined | Status::Rejected => {
                assert_eq!(resp.exit_code, 1, "{ctx}");
            }
            Status::Error => panic!("corpus is valid; no deterministic errors — {ctx}"),
        }
    }

    // The cursed unit must have opened its breaker during the window…
    let stats = service.stats();
    assert!(stats.quarantined >= 1, "seed {seed} pool {pool}: curse never opened the breaker: {stats:?}");

    // …and must recover through a half-open probe once the window is past.
    std::thread::sleep(Duration::from_millis(80));
    let mut recovered = stats.recovered >= 1;
    for k in 0..10 {
        if recovered {
            break;
        }
        let r = service
            .submit(req(10_000 + k, &corpus.sources[cursed_unit], None, false))
            .wait_timeout(HANG)
            .unwrap_or_else(|| panic!("seed {seed} pool {pool}: probe {k} hung"));
        if r.status == Status::Ok || r.status == Status::Cached {
            assert_eq!(r.checksum, Some(corpus.clean_sum[cursed_unit]));
        }
        recovered = service.stats().recovered >= 1;
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(recovered, "seed {seed} pool {pool}: breaker never recovered");

    if record {
        let rec = service.recorder().clone();
        let stats = service.shutdown();
        assert_eq!(stats.accepted, stats.answered, "seed {seed}: lost answers: {stats:?}");
        let counters = rec.counters();
        for name in [
            "polarisd.requests.accepted",
            "polarisd.requests.answered",
            "polarisd.cache.hits",
            "polarisd.cache.misses",
            "polarisd.retry.attempts",
            "polarisd.breaker.quarantined",
            "polarisd.breaker.probes",
            "polarisd.breaker.recovered",
        ] {
            assert!(counters.get(name).copied().unwrap_or(0) > 0, "counter {name} never fired");
        }
        assert_eq!(counters["polarisd.requests.accepted"], stats.accepted);
        if rec.events_dropped() == 0 {
            polaris_obs::validate_nesting(&rec.events()).expect("spans well-nested per worker");
        }
        stats
    } else {
        let stats = service.shutdown();
        assert_eq!(stats.accepted, stats.answered, "seed {seed}: lost answers: {stats:?}");
        stats
    }
}

fn sweep(pool: usize) {
    let corpus = corpus();
    let seeds = seeds();
    let mut total = ServiceStats::default();
    for seed in 0..seeds {
        let s = run_seed(&corpus, seed, pool, seed == 0);
        total.accepted += s.accepted;
        total.answered += s.answered;
        total.shed += s.shed;
        total.cache_hits += s.cache_hits;
        total.poison_purged += s.poison_purged;
        total.retries += s.retries;
        total.deadline_cancels += s.deadline_cancels;
        total.quarantined += s.quarantined;
        total.recovered += s.recovered;
        total.respawns += s.respawns;
    }
    assert_eq!(total.accepted, total.answered, "sweep lost answers: {total:?}");
    assert!(total.quarantined >= seeds, "{total:?}");
    assert!(total.recovered >= seeds, "{total:?}");
    // With ≥8 seeds the fault rates make every injected path a
    // statistical certainty; tiny CHAOS_SEEDS values are for quick local
    // iteration and skip these.
    if seeds >= 8 {
        assert!(total.retries > 0, "no transient fault was ever retried: {total:?}");
        assert!(total.deadline_cancels > 0, "no deadline ever cancelled a compile: {total:?}");
        assert!(total.poison_purged > 0, "no poisoned cache entry was ever purged: {total:?}");
        assert!(total.shed > 0, "overload never shed: {total:?}");
        assert!(total.respawns > 0, "no dead worker was ever respawned: {total:?}");
        assert!(total.cache_hits > 0, "the cache never hit: {total:?}");
    }
}

#[test]
fn chaos_conformance_pool2() {
    sweep(2);
}

#[test]
fn chaos_conformance_pool8() {
    sweep(8);
}

/// Clean out-of-band run checksum for one unit: serial execution with
/// no service and no chaos. By the determinism contract the adaptive
/// 8-proc execution inside the service must reproduce these bytes
/// exactly, whatever the chaos plan does to its decision tables.
fn clean_run_checksum(src: &str) -> u64 {
    let (program, report) =
        polaris_core::parse_and_compile(src, &polaris_core::PassOptions::polaris()).unwrap();
    assert!(!report.degraded());
    let out = polaris_machine::run(&program, &MachineConfig::serial())
        .expect("clean corpus executes")
        .output;
    fnv1a(out.join("\n").as_bytes())
}

/// The adaptive-scheduler axis: execution enabled (`adaptive_schedule`,
/// so programs run on the simulated 8-proc machine under per-content
/// adaptive dispatch) while the chaos plan
///
/// * panics workers *mid-measurement* (`exec_panic` on attempt 1 — the
///   per-attempt fault boundary must retry with the controller left
///   half-measured), and
/// * tears the decision table (`corrupt_decision_table`, any attempt —
///   the controller's integrity word, not the retry machinery, must
///   recover by resetting to static dispatch).
///
/// Cache poisoning runs at 100% so every request recompiles *and
/// re-executes*: the same content key accumulates adaptation history
/// across requests, exactly like cached recompiles in production. Per
/// request the served `run_checksum` must equal a clean serial run;
/// per unit the decision table must end readable, garbage-free, and —
/// for units whose last request was corruption-free — re-dispatched to
/// the measured (static, non-serial) winner.
fn adaptive_storm(pool: usize) {
    const STORM_SEED: u64 = 0xada9;
    const PER_UNIT: u64 = 6;
    let sources: Vec<String> = (0..UNITS).map(unit_source).collect();
    let keys: Vec<u64> =
        sources.iter().map(|s| Service::content_key(&req(0, s, None, false))).collect();
    let clean: Vec<u64> = sources.iter().map(|s| clean_run_checksum(s)).collect();

    let plan = ChaosPlan::seeded(STORM_SEED)
        .with_exec_panic_pct(40)
        .with_corrupt_table_pct(30)
        .with_poison_pct(100);
    // The storm must actually hit a measurement: some unit's *first*
    // request (the controller's measuring invocation) panics mid-run.
    assert!(
        (0..UNITS).any(|u| plan.exec_panic(keys[u], u as u64 * 100, 1).is_some()),
        "storm seed never crashes a measurement invocation — pick a new seed"
    );
    assert!(
        (0..UNITS).any(|u| (0..PER_UNIT)
            .any(|i| plan.corrupt_decision_table(keys[u], u as u64 * 100 + i, 1))),
        "storm seed never corrupts a decision table — pick a new seed"
    );

    let cfg = ServiceConfig {
        workers: pool,
        exec_engine: Some(Engine::Vm),
        exec_fuel: Some(1_000_000),
        adaptive_schedule: true,
        ..ServiceConfig::default()
    };
    let service = Service::with_chaos(cfg, Recorder::disabled(), Arc::new(plan.clone()));

    // Requests for one unit are submitted sequentially so its controller
    // sees a deterministic invocation order (concurrent same-key runs
    // would interleave decide/observe — harmless for output bytes, but
    // it would make the end-of-storm table assertions racy).
    for u in 0..UNITS {
        for i in 0..PER_UNIT {
            let id = u as u64 * 100 + i;
            let resp = service
                .submit(req(id, &sources[u], None, false))
                .wait_timeout(HANG)
                .unwrap_or_else(|| panic!("pool {pool}: adaptive request {id} hung"));
            let ctx = format!("pool {pool} unit {u} request {id}: {resp:?}");
            assert_eq!(resp.status, Status::Ok, "exec chaos leaked to the client — {ctx}");
            assert_eq!(
                resp.run_checksum,
                Some(clean[u]),
                "adaptive execution drifted from the clean serial run — {ctx}"
            );
        }

        let rows = service.adaptive_rows(keys[u]);
        assert!(!rows.is_empty(), "pool {pool} unit {u}: no loop was adaptively dispatched");
        for row in &rows {
            // Table corruption XORs invocation counts with 0x5a5a; sane
            // counts prove every torn entry was caught by the integrity
            // word and reset, never trusted.
            assert!(
                row.invocations < 0x1000,
                "pool {pool} unit {u}: garbage adaptation state survived: {row:?}"
            );
            assert!(row.threads >= 1, "pool {pool} unit {u}: {row:?}");
        }
        // If the last request's table was not corrupted, the unit's hot
        // loops (trip 40+ > the tiny-trip cutoff, proven parallel) must
        // have re-dispatched to the static winner.
        let last_id = u as u64 * 100 + PER_UNIT - 1;
        if !plan.corrupt_decision_table(keys[u], last_id, 1) {
            let hot = rows.iter().max_by_key(|r| (r.trip, r.loop_id)).unwrap();
            assert_eq!(
                (hot.strategy, hot.event),
                ("static", "redispatch"),
                "pool {pool} unit {u}: hot loop did not recover to the measured winner: {hot:?}"
            );
        }
    }

    let stats = service.shutdown();
    assert_eq!(stats.accepted, stats.answered, "pool {pool}: lost answers: {stats:?}");
    assert!(
        stats.retries > 0,
        "pool {pool}: no mid-measurement panic was ever retried: {stats:?}"
    );
    assert!(
        stats.poison_purged > 0,
        "pool {pool}: poisoning never forced a re-execution: {stats:?}"
    );
}

#[test]
fn adaptive_chaos_storm_pool2() {
    adaptive_storm(2);
}

#[test]
fn adaptive_chaos_storm_pool8() {
    adaptive_storm(8);
}

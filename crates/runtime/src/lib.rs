//! # polaris-runtime — run-time speculative parallelization (§3.5)
//!
//! Implements the **Privatizing Doall (PD) test** of Rauchwerger & Padua
//! as used by Polaris: a loop whose access pattern cannot be analyzed at
//! compile time is *speculatively executed as a doall* while shadow
//! arrays record, per element,
//!
//! * `A_w` — written (marked on the first write of each iteration),
//! * `A_r` — read but never written in some iteration,
//! * `A_np` — read *before* being written in some iteration (the
//!   privatization spoiler),
//!
//! together with the total write count `w_A`. The post-execution
//! analysis of §3.5.2 then decides:
//!
//! * `any(A_w ∧ A_r)` → a flow/anti dependence survives even
//!   privatization,
//! * `any(A_w ∧ A_np)` → the array is not privatizable,
//! * `w_A ≠ m_A` (marks in `A_w`) → an output dependence, removed only
//!   if the array is privatized.
//!
//! Execution is *safe*: all writes land in per-thread private buffers
//! and are committed to the shared array only if the test passes (the
//! "values computed during parallel execution are stored in temporary
//! locations and then stored in permanent locations if the parallel
//! execution was correct" strategy of §3.5.1). On failure the original
//! data is untouched and the caller re-executes sequentially — exactly
//! the protocol whose cost Figure 6 charts as "potential slowdown".
//!
//! Both the marking phase and the merge/analysis phase are parallel; the
//! merge works on disjoint element ranges, giving the `O(a/p + log p)`
//! behaviour claimed in §3.5.2.

pub mod adaptive;
pub mod inspector;
pub mod lrpd;
pub mod verdict;

pub use adaptive::{
    AdaptiveController, Chunking, DecideEvent, Decision, DecisionRow, LoopHints, Observation,
    Strategy,
};
pub use inspector::{classify, speculative_doall_inspected, IndexProperties, InspectedMode};
pub use lrpd::{
    run_sequential, speculative_doall, speculative_doall_faulty, speculative_doall_recorded,
    ArrayView, SpecOutcome,
};
pub use verdict::{
    judge, ClaimKind, DepKind, DepObservation, LoopClaim, LoopObservation, LoopVerdict,
    OracleReport, Violation,
};

//! Adaptive per-loop dispatch: choose serial / static-parallel /
//! LRPD-speculative execution, a chunking discipline, and a thread
//! count from *observed* behaviour, per loop, per invocation.
//!
//! The controller is deliberately fed **deterministic** signals — trip
//! counts, simulated per-chunk cycle totals, and misspeculation
//! verdicts — never wall-clock. Two runs of the same program therefore
//! produce byte-identical decision tables, which is what lets the
//! conformance tier golden-snapshot them and assert decision-table
//! stability across repeated invocations (see DESIGN.md, "Adaptive
//! dispatch & determinism contract").
//!
//! The policy (after Baghdadi et al.'s synergistic static/dynamic/
//! speculative scheme, PAPERS.md):
//!
//! * invocation 1 **measures**: static/block for compiler-claimed
//!   parallel loops, speculative for LRPD candidates, serial otherwise;
//! * invocation ≥ 2 **re-dispatches** to the measured winner: tiny
//!   trips fall back to serial (fork/join dominates), high per-chunk
//!   cost variance selects work stealing, uniform cost keeps block
//!   chunking;
//! * sustained misspeculation (a streak of failed PD tests) throttles
//!   speculation to serial with hysteresis: the loop is held serial for
//!   a few invocations, then speculation is **probed** exactly once —
//!   a success re-opens it, another failure re-arms the throttle.
//!
//! Every table entry carries an integrity check word. A corrupted entry
//! (crash recovery, chaos injection) is detected on the next decision,
//! reset, and answered with the static fallback — adaptation state is
//! advisory, never load-bearing for correctness.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Execution strategy for one loop invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Serial,
    /// Compiler-proven doall, executed in parallel.
    Static,
    /// LRPD speculative doall with shadow validation.
    Speculative,
}

impl Strategy {
    pub fn as_str(&self) -> &'static str {
        match self {
            Strategy::Serial => "serial",
            Strategy::Static => "static",
            Strategy::Speculative => "speculative",
        }
    }
}

/// Chunk-to-worker discipline for parallel invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chunking {
    /// Contiguous blocks, one per worker.
    Block,
    /// Central-counter self-scheduling with the given chunk size.
    SelfSched { chunk: usize },
    /// Per-worker deques with work stealing, given chunk size.
    Stealing { chunk: usize },
}

impl Chunking {
    pub fn describe(&self) -> String {
        match self {
            Chunking::Block => "block".to_string(),
            Chunking::SelfSched { chunk } => format!("self:{chunk}"),
            Chunking::Stealing { chunk } => format!("steal:{chunk}"),
        }
    }
}

/// What the controller did when asked — mapped onto `adaptive.*`
/// counters by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecideEvent {
    /// First invocation: measuring configuration.
    #[default]
    Measure,
    /// Re-dispatched to the measured winner.
    Redispatch,
    /// Misspeculation throttle holding the loop serial.
    Throttle,
    /// Hysteresis expired: probing speculation once.
    Probe,
    /// Integrity check failed; entry reset, static fallback served.
    CorruptReset,
    /// A forced-cycle (adversarial test) choice, soundness-clamped.
    Forced,
}

/// A dispatch decision for one invocation of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    pub strategy: Strategy,
    pub chunking: Chunking,
    /// Worker count to use for parallel strategies (≥ 1).
    pub threads: usize,
    pub event: DecideEvent,
}

/// What the compiler proved about the loop — the soundness envelope no
/// decision may leave. `parallel` gates `Strategy::Static`;
/// `speculative` gates `Strategy::Speculative`; `Serial` is always
/// sound.
#[derive(Debug, Clone, Copy)]
pub struct LoopHints {
    pub parallel: bool,
    pub speculative: bool,
    pub trip: u64,
    pub procs: usize,
}

/// Deterministic profile from one invocation.
#[derive(Debug, Clone)]
pub struct Observation {
    pub trip: u64,
    /// Simulated cycle totals per chunk (or per bucket in simulated
    /// exec mode). Empty for serial invocations.
    pub chunk_cycles: Vec<u64>,
    /// `Some(true)` if an LRPD attempt misspeculated, `Some(false)` if
    /// it validated, `None` for non-speculative invocations.
    pub misspeculated: Option<bool>,
}

/// One row of the persisted decision table (plain data; copied into
/// `CompileReport` and printed under `--diag`).
#[derive(Debug, Clone)]
pub struct DecisionRow {
    pub loop_id: u32,
    pub label: String,
    pub invocations: u64,
    pub strategy: &'static str,
    pub chunking: String,
    pub threads: usize,
    pub trip: u64,
    /// Coefficient of variation of per-chunk cycles (0 when unmeasured).
    pub cost_cv: f64,
    pub misspec_streak: u32,
    pub event: &'static str,
}

/// Trips at or below this run serial: fork/join swamps the body.
const TINY_TRIP: u64 = 24;
/// Per-chunk cycle CV above this selects work stealing.
const CV_STEAL: f64 = 0.25;
/// Consecutive misspeculations before throttling to serial.
const MISSPEC_STREAK: u32 = 2;
/// Serial invocations to hold before probing speculation again.
const THROTTLE_HOLD: u32 = 4;

#[derive(Debug, Clone, Default)]
struct Entry {
    label: String,
    invocations: u64,
    trip: u64,
    /// Measured per-chunk mean and CV (×1e6, stored as integers so the
    /// check word covers exact bits).
    mean_cycles: u64,
    cv_micros: u64,
    misspec_streak: u32,
    /// Remaining serial invocations under throttle; probing when it
    /// crosses zero.
    throttle_hold: u32,
    /// `true` once the throttle has fired at least once (the probe
    /// path distinguishes "never speculated" from "recovering").
    throttled: bool,
    last_strategy: Option<Strategy>,
    last_chunking: Option<Chunking>,
    last_threads: usize,
    last_event: DecideEvent,
    /// Integrity check word over the fields above.
    check: u64,
}

impl DecideEvent {
    pub fn as_str(&self) -> &'static str {
        match self {
            DecideEvent::Measure => "measure",
            DecideEvent::Redispatch => "redispatch",
            DecideEvent::Throttle => "throttle",
            DecideEvent::Probe => "probe",
            DecideEvent::CorruptReset => "corrupt-reset",
            DecideEvent::Forced => "forced",
        }
    }
}

impl Entry {
    fn checkword(&self) -> u64 {
        // FNV-1a over the adaptation state. Cheap, deterministic, and
        // any single-field corruption flips it.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.invocations);
        mix(self.trip);
        mix(self.mean_cycles);
        mix(self.cv_micros);
        mix(self.misspec_streak as u64);
        mix(self.throttle_hold as u64);
        mix(self.throttled as u64);
        mix(match self.last_strategy {
            None => 0,
            Some(Strategy::Serial) => 1,
            Some(Strategy::Static) => 2,
            Some(Strategy::Speculative) => 3,
        });
        mix(match self.last_chunking {
            None => 0,
            Some(Chunking::Block) => 1,
            Some(Chunking::SelfSched { chunk }) => 0x100 | chunk as u64,
            Some(Chunking::Stealing { chunk }) => 0x200 | chunk as u64,
        });
        mix(self.last_threads as u64);
        h
    }

    fn seal(&mut self) {
        self.check = self.checkword();
    }

    fn cv(&self) -> f64 {
        self.cv_micros as f64 / 1e6
    }
}

/// The per-loop adaptation table. Shared (behind an `Arc`) between the
/// dispatcher and whoever persists / prints the decision table; in
/// `polarisd` one controller lives per content hash so cached
/// recompiles of the same source keep their adaptation history.
#[derive(Debug, Default)]
pub struct AdaptiveController {
    entries: Mutex<BTreeMap<u32, Entry>>,
    /// Adversarial test mode: cycle through these raw choices on every
    /// decision (soundness-clamped before being served).
    forced: Vec<(Strategy, Chunking)>,
}

impl AdaptiveController {
    pub fn new() -> AdaptiveController {
        AdaptiveController::default()
    }

    /// Adversarial controller for property tests: ignores all profile
    /// state and serves `cycle[i % len]` on the i-th decision for each
    /// loop — still clamped to the compiler's soundness envelope.
    pub fn with_forced_cycle(cycle: Vec<(Strategy, Chunking)>) -> AdaptiveController {
        AdaptiveController { entries: Mutex::new(BTreeMap::new()), forced: cycle }
    }

    /// Clamp a strategy to what the compiler proved sound. `Static` on
    /// an unproven loop degrades to speculation (which validates) or
    /// serial; `Speculative` without shadow instrumentation degrades to
    /// static (if proven) or serial.
    fn clamp(strategy: Strategy, hints: &LoopHints) -> Strategy {
        match strategy {
            Strategy::Static if !hints.parallel => {
                if hints.speculative {
                    Strategy::Speculative
                } else {
                    Strategy::Serial
                }
            }
            Strategy::Speculative if !hints.speculative => {
                if hints.parallel {
                    Strategy::Static
                } else {
                    Strategy::Serial
                }
            }
            s => s,
        }
    }

    /// Work-stealing chunk size: a few chunks per worker so the deques
    /// have something to steal, never below 1.
    fn steal_chunk(trip: u64, threads: usize) -> usize {
        ((trip as usize).div_ceil(threads.max(1) * 4)).max(1)
    }

    /// Decide how to run this invocation of `loop_id`.
    pub fn decide(&self, loop_id: u32, label: &str, hints: LoopHints) -> Decision {
        let mut map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let e = map.entry(loop_id).or_default();
        if e.label.is_empty() {
            label.clone_into(&mut e.label);
            e.seal();
        }

        // Integrity gate: a corrupted entry is reset and answered with
        // the static fallback — never trusted, never wedged.
        if e.check != e.checkword() {
            *e = Entry { label: label.to_string(), ..Entry::default() };
            let strategy = Self::clamp(Strategy::Static, &hints);
            let d = Decision {
                strategy,
                chunking: Chunking::Block,
                threads: hints.procs.max(1),
                event: DecideEvent::CorruptReset,
            };
            e.invocations = 1;
            e.trip = hints.trip;
            e.last_strategy = Some(d.strategy);
            e.last_chunking = Some(d.chunking);
            e.last_threads = d.threads;
            e.last_event = d.event;
            e.seal();
            return d;
        }

        if !self.forced.is_empty() {
            let (s, c) = self.forced[(e.invocations as usize) % self.forced.len()];
            let d = Decision {
                strategy: Self::clamp(s, &hints),
                chunking: c,
                threads: hints.procs.max(1),
                event: DecideEvent::Forced,
            };
            e.invocations += 1;
            e.trip = hints.trip;
            e.last_strategy = Some(d.strategy);
            e.last_chunking = Some(d.chunking);
            e.last_threads = d.threads;
            e.last_event = d.event;
            e.seal();
            return d;
        }

        e.invocations += 1;
        e.trip = hints.trip;
        let procs = hints.procs.max(1);

        let d = if e.invocations == 1 {
            // Measure: run the compiler's preferred configuration and
            // let `observe` record what it cost.
            let strategy = if hints.parallel {
                Strategy::Static
            } else if hints.speculative {
                Strategy::Speculative
            } else {
                Strategy::Serial
            };
            Decision {
                strategy,
                chunking: Chunking::Block,
                threads: procs,
                event: DecideEvent::Measure,
            }
        } else if hints.speculative && !hints.parallel {
            // LRPD regime: throttle ladder.
            if e.throttle_hold > 0 {
                e.throttle_hold -= 1;
                Decision {
                    strategy: Strategy::Serial,
                    chunking: Chunking::Block,
                    threads: 1,
                    event: DecideEvent::Throttle,
                }
            } else if e.throttled {
                // Hold expired: probe speculation exactly once; a
                // misspeculation re-arms the throttle via `observe`.
                Decision {
                    strategy: Strategy::Speculative,
                    chunking: Chunking::Block,
                    threads: procs,
                    event: DecideEvent::Probe,
                }
            } else {
                Decision {
                    strategy: Strategy::Speculative,
                    chunking: Chunking::Block,
                    threads: procs,
                    event: DecideEvent::Redispatch,
                }
            }
        } else if hints.trip <= TINY_TRIP {
            Decision {
                strategy: Strategy::Serial,
                chunking: Chunking::Block,
                threads: 1,
                event: DecideEvent::Redispatch,
            }
        } else {
            // Proven-parallel regime: chunking by measured variance.
            let threads = procs.min(((hints.trip / 8).max(1)) as usize).max(1);
            let chunking = if e.cv() > CV_STEAL {
                Chunking::Stealing { chunk: Self::steal_chunk(hints.trip, threads) }
            } else {
                Chunking::Block
            };
            Decision {
                strategy: Strategy::Static,
                chunking,
                threads,
                event: DecideEvent::Redispatch,
            }
        };

        e.last_strategy = Some(d.strategy);
        e.last_chunking = Some(d.chunking);
        e.last_threads = d.threads;
        e.last_event = d.event;
        e.seal();
        d
    }

    /// Feed back the deterministic profile of the invocation that the
    /// previous `decide` call dispatched.
    pub fn observe(&self, loop_id: u32, obs: Observation) {
        let mut map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let Some(e) = map.get_mut(&loop_id) else { return };
        if e.check != e.checkword() {
            // Leave corruption for the next `decide` to detect and
            // reset; folding observations into a corrupt entry would
            // launder the bad state back into a valid check word.
            return;
        }
        e.trip = obs.trip;
        // Cost variance is only folded in from *block-chunked*
        // invocations: block-partition skew is the property of the loop
        // being measured. A stealing run's balanced buckets are evidence
        // stealing worked, not that the loop turned uniform — updating
        // cv from them would oscillate the decision (steal → balanced →
        // block → skewed → steal …) and break decision-table stability.
        let block_run = matches!(e.last_chunking, None | Some(Chunking::Block));
        if block_run && !obs.chunk_cycles.is_empty() {
            let n = obs.chunk_cycles.len() as f64;
            let mean = obs.chunk_cycles.iter().sum::<u64>() as f64 / n;
            let var = obs
                .chunk_cycles
                .iter()
                .map(|&c| {
                    let d = c as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            e.mean_cycles = mean.round() as u64;
            e.cv_micros = (cv * 1e6).round() as u64;
        }
        match obs.misspeculated {
            Some(true) => {
                e.misspec_streak += 1;
                if e.misspec_streak >= MISSPEC_STREAK {
                    e.throttle_hold = THROTTLE_HOLD;
                    e.throttled = true;
                    e.misspec_streak = 0;
                }
            }
            Some(false) => {
                e.misspec_streak = 0;
                e.throttled = false;
            }
            None => {}
        }
        e.seal();
    }

    /// Did the last `observe` arm the misspeculation throttle for this
    /// loop? (The dispatcher uses this to bump `adaptive.throttle` at
    /// arming time, not just while held.)
    pub fn is_throttled(&self, loop_id: u32) -> bool {
        let map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        map.get(&loop_id).map(|e| e.throttle_hold > 0).unwrap_or(false)
    }

    /// Snapshot the decision table, ordered by loop id.
    pub fn decision_rows(&self) -> Vec<DecisionRow> {
        let map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .map(|(&loop_id, e)| DecisionRow {
                loop_id,
                label: e.label.clone(),
                invocations: e.invocations,
                strategy: e.last_strategy.unwrap_or(Strategy::Serial).as_str(),
                chunking: e.last_chunking.unwrap_or(Chunking::Block).describe(),
                threads: e.last_threads.max(1),
                trip: e.trip,
                cost_cv: e.cv(),
                misspec_streak: e.misspec_streak,
                event: e.last_event.as_str(),
            })
            .collect()
    }

    /// Test/chaos hook: flip adaptation state without updating the
    /// check word, simulating a torn write or recovered-from-crash
    /// table. The next `decide` must detect it.
    pub fn corrupt(&self, loop_id: u32) {
        let mut map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(e) = map.get_mut(&loop_id) {
            e.invocations ^= 0x5a5a;
            e.cv_micros ^= 0xdead;
            // deliberately NOT resealed
        }
    }

    /// [`corrupt`](AdaptiveController::corrupt) for every loop in the
    /// table — chaos sweeps that don't know individual loop ids.
    pub fn corrupt_all(&self) {
        let mut map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        for e in map.values_mut() {
            e.invocations ^= 0x5a5a;
            e.cv_micros ^= 0xdead;
            // deliberately NOT resealed
        }
    }

    /// Number of loops with adaptation state.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par_hints(trip: u64) -> LoopHints {
        LoopHints { parallel: true, speculative: false, trip, procs: 4 }
    }

    fn spec_hints(trip: u64) -> LoopHints {
        LoopHints { parallel: false, speculative: true, trip, procs: 4 }
    }

    #[test]
    fn first_invocation_measures_then_redispatches() {
        let c = AdaptiveController::new();
        let d1 = c.decide(1, "L10", par_hints(1000));
        assert_eq!(d1.event, DecideEvent::Measure);
        assert_eq!(d1.strategy, Strategy::Static);
        assert_eq!(d1.chunking, Chunking::Block);
        // Uniform chunk costs → block chunking on re-dispatch.
        c.observe(1, Observation { trip: 1000, chunk_cycles: vec![500; 4], misspeculated: None });
        let d2 = c.decide(1, "L10", par_hints(1000));
        assert_eq!(d2.event, DecideEvent::Redispatch);
        assert_eq!(d2.strategy, Strategy::Static);
        assert_eq!(d2.chunking, Chunking::Block);
    }

    #[test]
    fn skewed_chunk_costs_select_stealing() {
        let c = AdaptiveController::new();
        c.decide(1, "L10", par_hints(1000));
        c.observe(
            1,
            Observation { trip: 1000, chunk_cycles: vec![100, 100, 100, 4000], misspeculated: None },
        );
        let d = c.decide(1, "L10", par_hints(1000));
        assert!(matches!(d.chunking, Chunking::Stealing { chunk } if chunk >= 1));
        assert_eq!(d.strategy, Strategy::Static);
    }

    #[test]
    fn tiny_trips_fall_back_to_serial() {
        let c = AdaptiveController::new();
        c.decide(1, "L10", par_hints(8));
        c.observe(1, Observation { trip: 8, chunk_cycles: vec![10; 4], misspeculated: None });
        let d = c.decide(1, "L10", par_hints(8));
        assert_eq!(d.strategy, Strategy::Serial);
        assert_eq!(d.threads, 1);
    }

    #[test]
    fn misspeculation_storm_throttles_then_probes() {
        let c = AdaptiveController::new();
        let h = spec_hints(500);
        let d1 = c.decide(1, "L20", h);
        assert_eq!(d1.strategy, Strategy::Speculative);
        c.observe(1, Observation { trip: 500, chunk_cycles: vec![], misspeculated: Some(true) });
        let d2 = c.decide(1, "L20", h);
        assert_eq!(d2.strategy, Strategy::Speculative); // streak 1 < 2
        c.observe(1, Observation { trip: 500, chunk_cycles: vec![], misspeculated: Some(true) });
        assert!(c.is_throttled(1));
        // Held serial for THROTTLE_HOLD invocations…
        for _ in 0..THROTTLE_HOLD {
            let d = c.decide(1, "L20", h);
            assert_eq!(d.strategy, Strategy::Serial);
            assert_eq!(d.event, DecideEvent::Throttle);
        }
        // …then probed exactly once.
        let probe = c.decide(1, "L20", h);
        assert_eq!(probe.event, DecideEvent::Probe);
        assert_eq!(probe.strategy, Strategy::Speculative);
        // A successful probe re-opens speculation.
        c.observe(1, Observation { trip: 500, chunk_cycles: vec![], misspeculated: Some(false) });
        let d = c.decide(1, "L20", h);
        assert_eq!(d.event, DecideEvent::Redispatch);
        assert_eq!(d.strategy, Strategy::Speculative);
    }

    #[test]
    fn corrupt_entry_resets_to_static_fallback() {
        let c = AdaptiveController::new();
        c.decide(1, "L10", par_hints(1000));
        c.observe(
            1,
            Observation { trip: 1000, chunk_cycles: vec![100, 100, 100, 4000], misspeculated: None },
        );
        c.corrupt(1);
        let d = c.decide(1, "L10", par_hints(1000));
        assert_eq!(d.event, DecideEvent::CorruptReset);
        assert_eq!(d.strategy, Strategy::Static);
        assert_eq!(d.chunking, Chunking::Block);
        // Table is reset: the next decision behaves like invocation 2
        // with no measurement (block, not stealing).
        let d2 = c.decide(1, "L10", par_hints(1000));
        assert_eq!(d2.event, DecideEvent::Redispatch);
        assert_eq!(d2.chunking, Chunking::Block);
    }

    #[test]
    fn forced_cycle_is_soundness_clamped() {
        let cycle = vec![
            (Strategy::Static, Chunking::Block),
            (Strategy::Speculative, Chunking::Block),
            (Strategy::Serial, Chunking::Block),
        ];
        let c = AdaptiveController::with_forced_cycle(cycle);
        // Spec-only loop: Static must never be served.
        for _ in 0..9 {
            let d = c.decide(1, "L20", spec_hints(100));
            assert_ne!(d.strategy, Strategy::Static);
        }
        // Parallel-only loop: Speculative must never be served.
        for _ in 0..9 {
            let d = c.decide(2, "L10", par_hints(100));
            assert_ne!(d.strategy, Strategy::Speculative);
        }
        // Neither proven: everything clamps to serial.
        for _ in 0..9 {
            let d = c.decide(
                3,
                "L30",
                LoopHints { parallel: false, speculative: false, trip: 100, procs: 4 },
            );
            assert_eq!(d.strategy, Strategy::Serial);
        }
    }

    #[test]
    fn decision_table_is_stable_across_identical_invocations() {
        let mk = || {
            let c = AdaptiveController::new();
            for _ in 0..5 {
                c.decide(1, "L10", par_hints(1000));
                c.observe(
                    1,
                    Observation { trip: 1000, chunk_cycles: vec![250; 4], misspeculated: None },
                );
            }
            c.decision_rows()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.len(), 1);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a[0].strategy, "static");
        assert_eq!(a[0].invocations, 5);
    }
}

//! Verdict layer of the dependence oracle: shared types and the
//! cross-check that turns a run-time dependence trace plus the
//! compiler's per-loop claims into soundness/completeness judgements.
//!
//! The machine's instrumented interpreter (`polaris-machine::oracle`)
//! produces one [`LoopObservation`] per compiler-identified loop — the
//! exact cross-iteration flow/anti/output dependences the serial
//! execution exhibited. [`judge`] confronts them with the pipeline's
//! claims ([`LoopClaim`], distilled from `ParallelInfo`/`CompileReport`):
//!
//! * a loop marked PARALLEL with a cross-iteration dependence that is
//!   not discharged by a privatization or reduction claim is a
//!   **soundness violation** — the compiler published a race;
//! * a serial-marked loop whose observed dependence set is empty (over
//!   an invocation with at least two iterations) is a **completeness
//!   miss** — dynamic parallelism the static analysis left behind,
//!   counted per responsible pass but never a failure.
//!
//! These live here rather than in `polaris-machine` because every
//! consumer of the oracle (the `polarisc` driver, the bench trajectory,
//! the conformance tests) needs the types without needing the machine.

use polaris_ir::stmt::LoopId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Kind of a cross-iteration dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Write in an earlier iteration, read in a later one.
    Flow,
    /// Read in an earlier iteration, write in a later one.
    Anti,
    /// Writes in two different iterations to the same location.
    Output,
}

impl DepKind {
    pub fn as_str(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One aggregated cross-iteration dependence observed at run time:
/// all detections of the same `(var, kind)` pair collapse into one
/// record carrying a witness (the first pair of iterations seen).
#[derive(Debug, Clone, PartialEq)]
pub struct DepObservation {
    /// Source-level variable or array name.
    pub var: String,
    pub kind: DepKind,
    /// Number of individual detections folded into this record.
    pub count: u64,
    /// Witness: the earlier iteration (0-based index within the
    /// carrying loop's invocation).
    pub src_iter: u64,
    /// Witness: the later iteration.
    pub dst_iter: u64,
    /// Witness: flattened element index, for array dependences.
    pub element: Option<u64>,
}

/// Everything the oracle observed about one loop across the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopObservation {
    pub loop_id: LoopId,
    pub label: String,
    pub invocations: u64,
    /// Largest trip count of any invocation.
    pub max_trip: u64,
    /// Observed cross-iteration dependences, one per `(var, kind)`.
    pub deps: Vec<DepObservation>,
}

/// The compiler's claim for one loop, distilled from the lowered
/// `ParallelInfo` plus the `CompileReport` (for the serial reason).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopClaim {
    pub loop_id: LoopId,
    pub label: String,
    /// Proven parallel (a DOALL) — the claim the oracle audits.
    pub parallel: bool,
    /// Chosen for run-time speculative parallelization; dependences are
    /// allowed here (the LRPD test catches them), so never a violation.
    pub speculative: bool,
    /// Variables with per-iteration private copies (includes copy-out).
    pub private: BTreeSet<String>,
    /// Validated reduction targets.
    pub reductions: BTreeSet<String>,
    /// Why the loop stayed serial, when it did.
    pub serial_reason: Option<String>,
}

/// A PARALLEL claim contradicted by an observed dependence.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub loop_id: LoopId,
    pub label: String,
    pub dep: DepObservation,
    /// Human-readable account of why the claim does not discharge it.
    pub detail: String,
}

/// How the compiler classified the loop (the three claim states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    Parallel,
    Speculative,
    Serial,
}

impl ClaimKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ClaimKind::Parallel => "parallel",
            ClaimKind::Speculative => "speculative",
            ClaimKind::Serial => "serial",
        }
    }
}

/// Per-loop outcome of the cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopVerdict {
    pub loop_id: LoopId,
    pub label: String,
    pub claim: ClaimKind,
    pub serial_reason: Option<String>,
    pub invocations: u64,
    pub max_trip: u64,
    /// The raw observed dependence set (all kinds, before claims).
    pub deps: Vec<DepObservation>,
    /// Soundness violations (only possible when `claim == Parallel`).
    pub violations: Vec<Violation>,
    /// Serial loop, executed with >= 2 iterations, empty dependence set:
    /// the strict completeness miss the oracle counts.
    pub completeness_miss: bool,
    /// Serial loop whose only dependences are anti/output (no flow):
    /// privatization/renaming would clear them, so this is the wider
    /// "parallelism left behind" count.
    pub privatizable_miss: bool,
}

/// The full oracle verdict for one program run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    /// One verdict per compiler-identified loop, sorted by label.
    pub loops: Vec<LoopVerdict>,
}

impl OracleReport {
    pub fn has_violations(&self) -> bool {
        self.loops.iter().any(|l| !l.violations.is_empty())
    }

    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.loops.iter().flat_map(|l| l.violations.iter())
    }

    /// Serial loops that actually ran with >= 2 iterations — the
    /// denominator of the completeness-miss rate (a loop the program
    /// never exercised can't witness either way).
    pub fn serial_loops_exercised(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| l.claim == ClaimKind::Serial && l.max_trip >= 2)
            .count()
    }

    pub fn completeness_misses(&self) -> usize {
        self.loops.iter().filter(|l| l.completeness_miss).count()
    }

    pub fn privatizable_misses(&self) -> usize {
        self.loops.iter().filter(|l| l.privatizable_miss).count()
    }

    /// Strict completeness-miss rate over exercised serial loops
    /// (0.0 when no serial loop was exercised).
    pub fn miss_rate(&self) -> f64 {
        let n = self.serial_loops_exercised();
        if n == 0 {
            0.0
        } else {
            self.completeness_misses() as f64 / n as f64
        }
    }

    /// Completeness misses attributed to the pass/test that kept the
    /// loop serial (via its `serial_reason`).
    pub fn misses_by_pass(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for l in &self.loops {
            if l.completeness_miss {
                *out.entry(categorize_reason(l.serial_reason.as_deref())).or_insert(0) += 1;
            }
        }
        out
    }

    /// Deterministic JSON rendering (hand-rolled; the workspace has no
    /// serde): stable key order, no timings, suitable for golden files.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"polaris-oracle/v1\",\n");
        s.push_str(&format!("  \"violations\": {},\n", self.violations().count()));
        s.push_str(&format!(
            "  \"serial_loops_exercised\": {},\n",
            self.serial_loops_exercised()
        ));
        s.push_str(&format!("  \"completeness_misses\": {},\n", self.completeness_misses()));
        s.push_str(&format!("  \"privatizable_misses\": {},\n", self.privatizable_misses()));
        s.push_str(&format!("  \"miss_rate\": {},\n", json_f64(self.miss_rate())));
        s.push_str("  \"misses_by_pass\": {");
        let by_pass = self.misses_by_pass();
        for (i, (pass, n)) in by_pass.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {n}", json_escape(pass)));
        }
        s.push_str("},\n");
        s.push_str("  \"loops\": [\n");
        for (i, l) in self.loops.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"label\": \"{}\",\n", json_escape(&l.label)));
            s.push_str(&format!("      \"loop_id\": {},\n", l.loop_id.0));
            s.push_str(&format!("      \"claim\": \"{}\",\n", l.claim.as_str()));
            match &l.serial_reason {
                Some(r) => s.push_str(&format!(
                    "      \"serial_reason\": \"{}\",\n",
                    json_escape(r)
                )),
                None => s.push_str("      \"serial_reason\": null,\n"),
            }
            s.push_str(&format!("      \"invocations\": {},\n", l.invocations));
            s.push_str(&format!("      \"max_trip\": {},\n", l.max_trip));
            s.push_str("      \"deps\": [");
            for (j, d) in l.deps.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"var\": \"{}\", \"kind\": \"{}\", \"count\": {}, \"src_iter\": {}, \"dst_iter\": {}}}",
                    json_escape(&d.var),
                    d.kind,
                    d.count,
                    d.src_iter,
                    d.dst_iter
                ));
            }
            s.push_str("],\n");
            s.push_str("      \"violations\": [");
            for (j, v) in l.violations.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"var\": \"{}\", \"kind\": \"{}\", \"detail\": \"{}\"}}",
                    json_escape(&v.dep.var),
                    v.dep.kind,
                    json_escape(&v.detail)
                ));
            }
            s.push_str("],\n");
            s.push_str(&format!("      \"completeness_miss\": {},\n", l.completeness_miss));
            s.push_str(&format!("      \"privatizable_miss\": {}\n", l.privatizable_miss));
            s.push_str(if i + 1 == self.loops.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// Attribute a serial reason to the pass/test responsible for it. The
/// buckets mirror the dependence driver's decision points; unknown
/// strings land in "other" rather than being dropped.
pub fn categorize_reason(reason: Option<&str>) -> &'static str {
    let Some(r) = reason else { return "unattributed" };
    if r.contains("carried dependence") {
        "dependence-test"
    } else if r.contains("recurrence") || r.contains("live after") {
        "privatization"
    } else if r.contains("I/O")
        || r.contains("CALL")
        || r.contains("RETURN")
        || r.contains("STOP")
    {
        "serializing-stmt"
    } else if r.contains("loop step") {
        "loop-form"
    } else {
        "other"
    }
}

/// Cross-check claims against observations. `claims` drives the output
/// (one verdict per compiler-identified loop); a loop with no
/// observation simply never executed.
pub fn judge(claims: &[LoopClaim], observations: &[LoopObservation]) -> OracleReport {
    let by_id: BTreeMap<LoopId, &LoopObservation> =
        observations.iter().map(|o| (o.loop_id, o)).collect();
    let mut loops = Vec::with_capacity(claims.len());
    for c in claims {
        let obs = by_id.get(&c.loop_id);
        let deps: Vec<DepObservation> =
            obs.map(|o| o.deps.clone()).unwrap_or_default();
        let invocations = obs.map(|o| o.invocations).unwrap_or(0);
        let max_trip = obs.map(|o| o.max_trip).unwrap_or(0);
        let claim = if c.parallel {
            ClaimKind::Parallel
        } else if c.speculative {
            ClaimKind::Speculative
        } else {
            ClaimKind::Serial
        };

        let mut violations = Vec::new();
        if claim == ClaimKind::Parallel {
            for d in &deps {
                if c.reductions.contains(&d.var) {
                    // A validated reduction commutes; its RMW chain is
                    // exactly a cross-iteration flow dependence.
                    continue;
                }
                if c.private.contains(&d.var) {
                    // A privatized variable gets a fresh per-iteration
                    // copy, which discharges anti and output dependences
                    // — but a *flow* dependence means some iteration
                    // read a value another iteration wrote, which a
                    // private copy cannot reproduce.
                    if d.kind != DepKind::Flow {
                        continue;
                    }
                    violations.push(Violation {
                        loop_id: c.loop_id,
                        label: c.label.clone(),
                        dep: d.clone(),
                        detail: format!(
                            "`{}` is privatized but iteration {} reads the value iteration {} wrote",
                            d.var, d.dst_iter, d.src_iter
                        ),
                    });
                    continue;
                }
                violations.push(Violation {
                    loop_id: c.loop_id,
                    label: c.label.clone(),
                    dep: d.clone(),
                    detail: format!(
                        "loop is marked PARALLEL but carries a {} dependence on `{}` \
                         (iteration {} -> {})",
                        d.kind, d.var, d.src_iter, d.dst_iter
                    ),
                });
            }
        }

        let exercised = claim == ClaimKind::Serial && max_trip >= 2;
        let completeness_miss = exercised && deps.is_empty();
        let privatizable_miss =
            exercised && deps.iter().all(|d| d.kind != DepKind::Flow);

        loops.push(LoopVerdict {
            loop_id: c.loop_id,
            label: c.label.clone(),
            claim,
            serial_reason: c.serial_reason.clone(),
            invocations,
            max_trip,
            deps,
            violations,
            completeness_miss,
            privatizable_miss,
        });
    }
    loops.sort_by(|a, b| a.label.cmp(&b.label).then(a.loop_id.cmp(&b.loop_id)));
    OracleReport { loops }
}

/// Finite-only float formatting (JSON has no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(loop_id: u32, label: &str, trip: u64, deps: Vec<DepObservation>) -> LoopObservation {
        LoopObservation {
            loop_id: LoopId(loop_id),
            label: label.into(),
            invocations: 1,
            max_trip: trip,
            deps,
        }
    }

    fn dep(var: &str, kind: DepKind) -> DepObservation {
        DepObservation {
            var: var.into(),
            kind,
            count: 1,
            src_iter: 0,
            dst_iter: 1,
            element: None,
        }
    }

    fn claim(loop_id: u32, label: &str) -> LoopClaim {
        LoopClaim { loop_id: LoopId(loop_id), label: label.into(), ..Default::default() }
    }

    #[test]
    fn parallel_claim_with_raw_dependence_is_violation() {
        let mut c = claim(1, "T_do1");
        c.parallel = true;
        let r = judge(&[c], &[obs(1, "T_do1", 8, vec![dep("A", DepKind::Flow)])]);
        assert!(r.has_violations());
        assert_eq!(r.violations().count(), 1);
    }

    #[test]
    fn privatization_discharges_anti_and_output_but_not_flow() {
        let mut c = claim(1, "T_do1");
        c.parallel = true;
        c.private.insert("T".into());
        let clean = judge(
            &[c.clone()],
            &[obs(1, "T_do1", 8, vec![dep("T", DepKind::Anti), dep("T", DepKind::Output)])],
        );
        assert!(!clean.has_violations());
        let dirty = judge(&[c], &[obs(1, "T_do1", 8, vec![dep("T", DepKind::Flow)])]);
        assert!(dirty.has_violations());
    }

    #[test]
    fn reduction_discharges_flow() {
        let mut c = claim(1, "T_do1");
        c.parallel = true;
        c.reductions.insert("S".into());
        let r = judge(&[c], &[obs(1, "T_do1", 8, vec![dep("S", DepKind::Flow)])]);
        assert!(!r.has_violations());
    }

    #[test]
    fn serial_loop_with_no_deps_is_completeness_miss() {
        let mut c = claim(1, "T_do1");
        c.serial_reason = Some("possible carried dependence on array `A`".into());
        let r = judge(&[c], &[obs(1, "T_do1", 8, vec![])]);
        assert_eq!(r.completeness_misses(), 1);
        assert!(!r.has_violations());
        assert_eq!(r.misses_by_pass().get("dependence-test"), Some(&1));
        assert!((r.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_iteration_serial_loop_is_not_counted() {
        let c = claim(1, "T_do1");
        let r = judge(&[c], &[obs(1, "T_do1", 1, vec![])]);
        assert_eq!(r.serial_loops_exercised(), 0);
        assert_eq!(r.completeness_misses(), 0);
        assert_eq!(r.miss_rate(), 0.0);
    }

    #[test]
    fn anti_only_serial_loop_is_privatizable_miss_not_strict_miss() {
        let c = claim(1, "T_do1");
        let r = judge(&[c], &[obs(1, "T_do1", 4, vec![dep("T", DepKind::Anti)])]);
        assert_eq!(r.completeness_misses(), 0);
        assert_eq!(r.privatizable_misses(), 1);
    }

    #[test]
    fn speculative_loops_never_violate() {
        let mut c = claim(1, "T_do1");
        c.speculative = true;
        let r = judge(&[c], &[obs(1, "T_do1", 8, vec![dep("A", DepKind::Flow)])]);
        assert!(!r.has_violations());
    }

    #[test]
    fn json_is_deterministic_and_quotes_reasons() {
        let mut c = claim(1, "T_do1");
        c.serial_reason = Some("scalar recurrence on `S`".into());
        let r = judge(&[c], &[obs(1, "T_do1", 4, vec![dep("S", DepKind::Flow)])]);
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"polaris-oracle/v1\""));
        assert!(a.contains("scalar recurrence on `S`"));
        assert!(a.contains("\"claim\": \"serial\""));
    }
}

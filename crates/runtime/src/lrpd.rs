//! The Privatizing-Doall / LRPD test and the speculative executor.

use std::time::{Duration, Instant};

/// How loop bodies touch the shared array under test. The same body
/// closure runs speculatively (buffered view) and sequentially
/// (pass-through view), which guarantees both executions perform the
/// same computation.
pub trait ArrayView<T> {
    fn read(&mut self, idx: usize) -> T;
    fn write(&mut self, idx: usize, value: T);

    /// A *reduction update* `A(idx) = A(idx) + value`. During
    /// speculative execution the update accumulates into a per-thread
    /// partial (committed on success); the LRPD test validates that
    /// reduced elements are touched by reduction updates only. The
    /// sequential view applies it directly.
    fn reduce_add(&mut self, idx: usize, value: T);
}

/// Result of a speculative execution attempt.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// The loop was fully parallel as a plain doall.
    pub parallel_valid: bool,
    /// The loop was fully parallel with the array privatized
    /// (output dependences forgiven, §3.5.2).
    pub privatized_valid: bool,
    /// `any(A_w ∧ A_r)` — flow/anti dependence.
    pub flow_anti: bool,
    /// `w_A != m_A` — output dependence.
    pub output_dep: bool,
    /// `any(A_w ∧ A_np)` — read-before-write in an iteration.
    pub not_privatizable: bool,
    /// A reduced element was also read/written outside reduction updates
    /// (`any(A_x ∧ (A_w ∨ A_r))` in LRPD terms).
    pub reduction_conflict: bool,
    /// Elements updated through [`ArrayView::reduce_add`].
    pub reduced: u64,
    /// Total first-writes per (element, iteration).
    pub writes: u64,
    /// Elements marked in `A_w`.
    pub marks: u64,
    /// Whether the buffered values were committed.
    pub committed: bool,
    /// A speculative worker thread panicked. The attempt is treated
    /// exactly like a failed PD test: nothing is committed and the
    /// caller falls back to [`run_sequential`].
    pub worker_panicked: bool,
    /// Wall-clock of the speculative execution (marking included).
    pub exec_time: Duration,
    /// Wall-clock of merge + analysis + commit (the "PD test" overhead,
    /// `T_pdt` in §3.5.3).
    pub test_time: Duration,
}

impl SpecOutcome {
    /// Did the speculation succeed under the requested mode?
    pub fn success(&self) -> bool {
        self.committed
    }
}

const NEVER: u32 = u32::MAX;

/// Per-thread shadow state for one array.
struct ThreadShadow<T> {
    read_epoch: Vec<u32>,
    write_epoch: Vec<u32>,
    aw: Vec<bool>,
    ar: Vec<bool>,
    np: Vec<bool>,
    /// Touched by a reduction update (the LRPD `A_x` shadow).
    rx: Vec<bool>,
    values: Vec<T>,
    /// Per-thread reduction partials.
    partial: Vec<T>,
    last_write_iter: Vec<u32>,
    writes: u64,
    /// Elements first-read in the current iteration (tentative `A_r`).
    reads_buf: Vec<usize>,
}

impl<T: Copy + Default> ThreadShadow<T> {
    fn new(n: usize) -> ThreadShadow<T> {
        ThreadShadow {
            read_epoch: vec![NEVER; n],
            write_epoch: vec![NEVER; n],
            aw: vec![false; n],
            ar: vec![false; n],
            np: vec![false; n],
            values: vec![T::default(); n],
            rx: vec![false; n],
            partial: vec![T::default(); n],
            last_write_iter: vec![NEVER; n],
            writes: 0,
            reads_buf: Vec::new(),
        }
    }

    /// Commit the tentative `A_r` marks of iteration `t`: a read really
    /// was "never written in this iteration" if no write followed.
    fn end_iteration(&mut self, t: u32) {
        for &idx in &self.reads_buf {
            if self.write_epoch[idx] != t {
                self.ar[idx] = true;
            }
        }
        self.reads_buf.clear();
    }
}

/// The view used during speculative execution: writes are buffered,
/// reads prefer the iteration's own writes, shadow marks are maintained.
struct SpecView<'a, T> {
    original: &'a [T],
    shadow: &'a mut ThreadShadow<T>,
    iter: u32,
}

impl<'a, T: Copy + Default + std::ops::Add<Output = T>> ArrayView<T> for SpecView<'a, T> {
    fn read(&mut self, idx: usize) -> T {
        let t = self.iter;
        if self.shadow.write_epoch[idx] == t {
            return self.shadow.values[idx];
        }
        if self.shadow.read_epoch[idx] != t {
            self.shadow.read_epoch[idx] = t;
            self.shadow.reads_buf.push(idx);
        }
        self.original[idx]
    }

    fn write(&mut self, idx: usize, value: T) {
        let t = self.iter;
        if self.shadow.write_epoch[idx] != t {
            // first write of this iteration
            self.shadow.writes += 1;
            self.shadow.aw[idx] = true;
            if self.shadow.read_epoch[idx] == t {
                self.shadow.np[idx] = true;
            }
            self.shadow.write_epoch[idx] = t;
        }
        self.shadow.values[idx] = value;
        self.shadow.last_write_iter[idx] = t;
    }

    fn reduce_add(&mut self, idx: usize, value: T) {
        self.shadow.rx[idx] = true;
        self.shadow.partial[idx] = self.shadow.partial[idx] + value;
    }
}

/// Pass-through view for sequential (re-)execution.
struct DirectView<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Copy + std::ops::Add<Output = T>> ArrayView<T> for DirectView<'a, T> {
    fn read(&mut self, idx: usize) -> T {
        self.data[idx]
    }

    fn write(&mut self, idx: usize, value: T) {
        self.data[idx] = value;
    }

    fn reduce_add(&mut self, idx: usize, value: T) {
        self.data[idx] = self.data[idx] + value;
    }
}

/// Execute the loop sequentially (used for re-execution after a failed
/// speculation, and as the test oracle).
pub fn run_sequential<T, F>(data: &mut [T], n_iters: usize, body: F)
where
    T: Copy + std::ops::Add<Output = T>,
    F: Fn(usize, &mut dyn ArrayView<T>),
{
    let mut view = DirectView { data };
    for i in 0..n_iters {
        body(i, &mut view);
    }
}

/// Speculatively execute `body` for iterations `0..n_iters` as a doall
/// over `n_threads` threads, applying the PD test to accesses on `data`.
///
/// `privatized` selects the §3.5.2 acceptance rule: with privatization,
/// output dependences are forgiven (last-value commit resolves them).
/// Values are committed to `data` only on success; on failure `data` is
/// untouched and the caller should fall back to [`run_sequential`].
pub fn speculative_doall<T, F>(
    data: &mut [T],
    n_iters: usize,
    n_threads: usize,
    privatized: bool,
    body: F,
) -> SpecOutcome
where
    T: Copy + Default + Send + Sync + std::ops::Add<Output = T>,
    F: Fn(usize, &mut dyn ArrayView<T>) + Sync,
{
    speculative_doall_faulty(data, n_iters, n_threads, privatized, None, body)
}

/// [`speculative_doall`] with an observability [`polaris_obs::Recorder`]
/// attached: the attempt runs inside an `lrpd` span and the verdict is
/// mirrored into the `lrpd.pass` / `lrpd.fail` counters.
pub fn speculative_doall_recorded<T, F>(
    data: &mut [T],
    n_iters: usize,
    n_threads: usize,
    privatized: bool,
    rec: &polaris_obs::Recorder,
    body: F,
) -> SpecOutcome
where
    T: Copy + Default + Send + Sync + std::ops::Add<Output = T>,
    F: Fn(usize, &mut dyn ArrayView<T>) + Sync,
{
    let span = rec.span("lrpd", "speculative_doall");
    let outcome = speculative_doall_faulty(data, n_iters, n_threads, privatized, None, body);
    span.end();
    let verdict = if outcome.success() {
        polaris_obs::Counter::LrpdPass
    } else {
        polaris_obs::Counter::LrpdFail
    };
    rec.count(verdict, 1);
    outcome
}

/// [`speculative_doall`] with deterministic fault injection: when
/// `fail_at` is `Some(k)`, the worker that owns iteration `k` panics
/// just before executing it. Used to exercise the isolation guarantee —
/// a crashed speculative worker must surface as a failed speculation
/// ([`SpecOutcome::worker_panicked`], `committed == false`, `data`
/// untouched), never as a crash of the caller or a partial commit.
pub fn speculative_doall_faulty<T, F>(
    data: &mut [T],
    n_iters: usize,
    n_threads: usize,
    privatized: bool,
    fail_at: Option<usize>,
    body: F,
) -> SpecOutcome
where
    T: Copy + Default + Send + Sync + std::ops::Add<Output = T>,
    F: Fn(usize, &mut dyn ArrayView<T>) + Sync,
{
    let n = data.len();
    let n_threads = n_threads.max(1);
    let t_exec = Instant::now();

    // --- speculative parallel execution with marking -------------------
    // Workers run under the scope's isolation: a panicking worker is
    // detected at join and poisons the whole attempt, exactly like a
    // failed PD test. The shared array is read-only here, so a dead
    // worker cannot have left partial state anywhere but in its own
    // (discarded) shadow.
    let mut shadows: Vec<ThreadShadow<T>> = Vec::with_capacity(n_threads);
    let mut worker_panicked = false;
    {
        let data_ref: &[T] = data;
        let body_ref = &body;
        let joined = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..n_threads {
                handles.push(scope.spawn(move |_| {
                    let mut shadow = ThreadShadow::<T>::new(n);
                    // block distribution, matching the machine model
                    let per = n_iters.div_ceil(n_threads);
                    let lo = tid * per;
                    let hi = ((tid + 1) * per).min(n_iters);
                    for it in lo..hi {
                        if fail_at == Some(it) {
                            panic!("injected fault: speculative worker {tid} at iteration {it}");
                        }
                        let t = it as u32;
                        {
                            let mut view =
                                SpecView { original: data_ref, shadow: &mut shadow, iter: t };
                            body_ref(it, &mut view);
                        }
                        shadow.end_iteration(t);
                    }
                    shadow
                }));
            }
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        match joined {
            Ok(results) => {
                for r in results {
                    match r {
                        Ok(shadow) => shadows.push(shadow),
                        Err(_) => worker_panicked = true,
                    }
                }
            }
            Err(_) => worker_panicked = true,
        }
    }
    let exec_time = t_exec.elapsed();
    if worker_panicked {
        return SpecOutcome {
            parallel_valid: false,
            privatized_valid: false,
            flow_anti: false,
            output_dep: false,
            not_privatizable: false,
            reduction_conflict: false,
            reduced: 0,
            writes: 0,
            marks: 0,
            committed: false,
            worker_panicked: true,
            exec_time,
            test_time: Duration::ZERO,
        };
    }

    // --- parallel merge + analysis (the PD test proper) ------------------
    let t_test = Instant::now();
    let writes: u64 = shadows.iter().map(|s| s.writes).sum();
    let mut aw = vec![false; n];
    let mut rx = vec![false; n];
    let mut flow_anti = false;
    let mut not_priv = false;
    let mut reduction_conflict = false;
    let mut marks: u64 = 0;
    let mut reduced: u64 = 0;
    {
        // Disjoint element ranges merged concurrently: O(a/p + log p).
        // Per-range merge result: (marks, reduced, flow_anti, not_priv,
        // reduction_conflict, aw piece, rx piece).
        type MergePiece = (u64, u64, bool, bool, bool, Vec<bool>, Vec<bool>);
        let chunk = n.div_ceil(n_threads).max(1);
        let shadows_ref = &shadows;
        let pieces: Vec<MergePiece> =
            crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..n_threads {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| {
                    let mut marks = 0u64;
                    let mut reduced = 0u64;
                    let mut fa = false;
                    let mut np = false;
                    let mut rc = false;
                    let mut aw_piece = vec![false; hi - lo];
                    let mut rx_piece = vec![false; hi - lo];
                    for idx in lo..hi {
                        let w = shadows_ref.iter().any(|s| s.aw[idx]);
                        let r = shadows_ref.iter().any(|s| s.ar[idx]);
                        let p = shadows_ref.iter().any(|s| s.np[idx]);
                        let x = shadows_ref.iter().any(|s| s.rx[idx]);
                        if w {
                            marks += 1;
                            aw_piece[idx - lo] = true;
                            if r {
                                fa = true;
                            }
                            if p {
                                np = true;
                            }
                        }
                        if x {
                            reduced += 1;
                            rx_piece[idx - lo] = true;
                            if w || r {
                                rc = true;
                            }
                        }
                    }
                    (marks, reduced, fa, np, rc, aw_piece, rx_piece)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("merge worker panicked");
        let mut cursor = 0usize;
        for (m, red, fa, np, rc, piece, rx_piece) in pieces {
            marks += m;
            reduced += red;
            flow_anti |= fa;
            not_priv |= np;
            reduction_conflict |= rc;
            aw[cursor..cursor + piece.len()].copy_from_slice(&piece);
            rx[cursor..cursor + rx_piece.len()].copy_from_slice(&rx_piece);
            cursor += piece.len();
        }
    }
    let output_dep = writes != marks;
    let parallel_valid = !flow_anti && !not_priv && !output_dep && !reduction_conflict;
    let privatized_valid = !flow_anti && !not_priv && !reduction_conflict;
    let success = if privatized { privatized_valid } else { parallel_valid };

    // --- commit ------------------------------------------------------------
    if success {
        let chunk = n.div_ceil(n_threads).max(1);
        let shadows_ref = &shadows;
        let aw_ref = &aw;
        let mut data_chunks: Vec<&mut [T]> = data.chunks_mut(chunk).collect();
        crossbeam::thread::scope(|scope| {
            for (c, chunk_data) in data_chunks.iter_mut().enumerate() {
                let lo = c * chunk;
                let chunk_data: &mut [T] = chunk_data;
                let rx_ref = &rx;
                scope.spawn(move |_| {
                    for (off, slot) in chunk_data.iter_mut().enumerate() {
                        let idx = lo + off;
                        if aw_ref[idx] {
                            // value written by the globally last iteration
                            let mut best_iter = NEVER;
                            let mut best_val = None;
                            for s in shadows_ref {
                                let it = s.last_write_iter[idx];
                                if it != NEVER && (best_iter == NEVER || it > best_iter) {
                                    best_iter = it;
                                    best_val = Some(s.values[idx]);
                                }
                            }
                            if let Some(v) = best_val {
                                *slot = v;
                            }
                        }
                        if rx_ref[idx] {
                            // fold the per-thread reduction partials
                            let mut acc = *slot;
                            for s in shadows_ref {
                                acc = acc + s.partial[idx];
                            }
                            *slot = acc;
                        }
                    }
                });
            }
        })
        .expect("commit worker panicked");
    }
    let test_time = t_test.elapsed();

    SpecOutcome {
        parallel_valid,
        privatized_valid,
        flow_anti,
        output_dep,
        not_privatizable: not_priv,
        reduction_conflict,
        reduced,
        writes,
        marks,
        committed: success,
        worker_panicked: false,
        exec_time,
        test_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// fully parallel: every iteration writes its own element
    #[test]
    fn disjoint_writes_pass_and_commit() {
        let mut data = vec![0i64; 64];
        let out = speculative_doall(&mut data, 64, 4, false, |i, v| {
            v.write(i, i as i64 * 3);
        });
        assert!(out.parallel_valid && out.committed, "{out:?}");
        assert!(!out.flow_anti && !out.output_dep && !out.not_privatizable);
        assert_eq!(data[10], 30);
        assert_eq!(out.writes, 64);
        assert_eq!(out.marks, 64);
    }

    #[test]
    fn flow_dependence_fails_and_preserves_data() {
        let mut data: Vec<i64> = (0..64).collect();
        let orig = data.clone();
        let out = speculative_doall(&mut data, 63, 4, false, |i, v| {
            let prev = v.read(i);
            v.write(i + 1, prev + 1);
        });
        assert!(!out.parallel_valid, "{out:?}");
        assert!(out.flow_anti);
        assert!(!out.committed);
        assert_eq!(data, orig, "failed speculation must not disturb the array");
        // sequential re-execution completes the work
        run_sequential(&mut data, 63, |i, v| {
            let prev = v.read(i);
            v.write(i + 1, prev + 1);
        });
        assert_eq!(data[63], 63);
    }

    #[test]
    fn crashed_worker_fails_speculation_and_serial_fallback_recovers() {
        // A perfectly parallel loop, but one worker dies mid-flight: the
        // attempt must report worker_panicked with nothing committed, and
        // the standard failed-speculation path (sequential re-execution)
        // must still produce the right answer.
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.write(i, i as i64 * 3);
        };
        let mut data = vec![0i64; 64];
        let out = speculative_doall_faulty(&mut data, 64, 4, false, Some(17), body);
        assert!(out.worker_panicked, "{out:?}");
        assert!(!out.committed && !out.parallel_valid && !out.privatized_valid);
        assert_eq!(data, vec![0i64; 64], "crashed speculation must not disturb the array");
        if !out.success() {
            run_sequential(&mut data, 64, body);
        }
        assert_eq!(data[21], 63);
    }

    #[test]
    fn fault_in_every_worker_slot_is_isolated() {
        // Whichever worker the doomed iteration lands on, the caller
        // never sees the panic and the data is never partially written.
        for fail_at in [0usize, 15, 16, 31, 47, 63] {
            let mut data = vec![7i64; 64];
            let out = speculative_doall_faulty(&mut data, 64, 4, true, Some(fail_at), |i, v| {
                v.write(i, 0);
            });
            assert!(out.worker_panicked && !out.committed, "fail_at={fail_at}: {out:?}");
            assert_eq!(data, vec![7i64; 64], "fail_at={fail_at}");
        }
    }

    #[test]
    fn fault_outside_iteration_space_is_inert() {
        let mut data = vec![0i64; 8];
        let out = speculative_doall_faulty(&mut data, 8, 2, false, Some(100), |i, v| {
            v.write(i, 1);
        });
        assert!(!out.worker_panicked && out.committed, "{out:?}");
        assert_eq!(data, vec![1i64; 8]);
    }

    #[test]
    fn output_dependence_fails_plain_but_passes_privatized() {
        // every iteration writes element 0: output deps only
        let mut data = vec![0i64; 8];
        let out = speculative_doall(&mut data, 100, 4, false, |_, v| {
            v.write(0, 7);
        });
        assert!(!out.parallel_valid && out.output_dep && !out.flow_anti, "{out:?}");
        let out2 = speculative_doall(&mut data, 100, 4, true, |i, v| {
            v.write(0, i as i64);
        });
        assert!(out2.privatized_valid && out2.committed, "{out2:?}");
        // last-value semantics: iteration 99 wins
        assert_eq!(data[0], 99);
    }

    #[test]
    fn write_then_read_same_iteration_is_private() {
        // classic privatizable temp: each iteration writes A(0..4) then
        // reads them. Plain doall has output deps; privatized passes.
        let mut data = vec![0i64; 5];
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            for k in 0..5 {
                v.write(k, (i + k) as i64);
            }
            let mut s = 0;
            for k in 0..5 {
                s += v.read(k);
            }
            v.write(0, s);
        };
        let out = speculative_doall(&mut data, 16, 4, true, body);
        assert!(out.privatized_valid && out.committed, "{out:?}");
        assert!(!out.not_privatizable);
        // matches sequential
        let mut seq = vec![0i64; 5];
        run_sequential(&mut seq, 16, body);
        assert_eq!(data, seq);
    }

    #[test]
    fn read_before_write_not_privatizable() {
        let mut data = vec![1i64; 8];
        let out = speculative_doall(&mut data, 8, 4, true, |i, v| {
            let x = v.read(3); // read first...
            v.write(3, x + i as i64); // ...then write: A_np
        });
        assert!(out.not_privatizable, "{out:?}");
        assert!(!out.privatized_valid && !out.committed);
    }

    #[test]
    fn read_only_array_always_passes() {
        let mut data: Vec<i64> = (0..32).collect();
        let out = speculative_doall(&mut data, 32, 4, false, |i, v| {
            let _ = v.read(i % 32);
            let _ = v.read((i * 7) % 32);
        });
        assert!(out.parallel_valid, "{out:?}");
        assert_eq!(out.marks, 0);
        assert_eq!(out.writes, 0);
    }

    #[test]
    fn single_thread_matches_multi_thread_verdict() {
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.write(i % 10, i as i64);
        };
        let mut d1 = vec![0i64; 10];
        let mut d2 = vec![0i64; 10];
        let o1 = speculative_doall(&mut d1, 40, 1, true, body);
        let o2 = speculative_doall(&mut d2, 40, 7, true, body);
        assert_eq!(o1.privatized_valid, o2.privatized_valid);
        assert_eq!(o1.writes, o2.writes);
        assert_eq!(o1.marks, o2.marks);
        assert_eq!(d1, d2);
    }

    #[test]
    fn indirection_through_permutation_is_parallel() {
        // A(P(i)) = i with P a permutation — the paper's motivating
        // "access pattern is a function of the input data" case.
        let n = 128usize;
        let perm: Vec<usize> = (0..n).map(|i| (i * 77 + 13) % n).collect();
        // 77 is coprime with 128: a permutation
        let mut data = vec![0i64; n];
        let out = speculative_doall(&mut data, n, 8, false, |i, v| {
            v.write(perm[i], i as i64);
        });
        assert!(out.parallel_valid && out.committed, "{out:?}");
        for i in 0..n {
            assert_eq!(data[perm[i]], i as i64);
        }
    }

    #[test]
    fn colliding_indirection_is_caught() {
        let n = 64usize;
        let idx: Vec<usize> = (0..n).map(|i| i / 2).collect(); // collisions
        let mut data = vec![0i64; n];
        let out = speculative_doall(&mut data, n, 4, false, |i, v| {
            v.write(idx[i], i as i64);
        });
        assert!(out.output_dep, "{out:?}");
        assert!(!out.parallel_valid);
    }

    // ---- reduction speculation (the "R" in LRPD) -----------------------

    #[test]
    fn histogram_reduction_validates_and_commits() {
        // colliding indices, but every touch is a reduction update:
        // valid, and the committed totals match sequential execution.
        let n = 32usize;
        let iters = 400usize;
        let key: Vec<usize> = (0..iters).map(|i| (i * 7) % n).collect();
        let mut data = vec![0f64; n];
        let body = |i: usize, v: &mut dyn ArrayView<f64>| {
            v.reduce_add(key[i], (i % 5) as f64 + 0.5);
        };
        let out = speculative_doall(&mut data, iters, 4, false, body);
        assert!(out.parallel_valid && out.committed, "{out:?}");
        assert!(out.reduced as usize <= n && out.reduced > 0);
        assert!(!out.reduction_conflict);
        let mut seq = vec![0f64; n];
        run_sequential(&mut seq, iters, body);
        for (a, b) in data.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn mixing_reduction_and_plain_write_fails() {
        let mut data = vec![0f64; 8];
        let out = speculative_doall(&mut data, 16, 4, true, |i, v| {
            v.reduce_add(3, 1.0);
            if i == 7 {
                v.write(3, 99.0); // same element written non-reductively
            }
        });
        assert!(out.reduction_conflict, "{out:?}");
        assert!(!out.committed);
        assert!(data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn reading_a_reduced_element_fails() {
        let mut data = vec![1f64; 8];
        let out = speculative_doall(&mut data, 16, 4, true, |_, v| {
            let x = v.read(2);
            v.reduce_add(2, x * 0.0 + 1.0);
        });
        assert!(out.reduction_conflict, "{out:?}");
        assert!(!out.committed);
    }

    #[test]
    fn reductions_coexist_with_disjoint_writes() {
        let n = 64usize;
        let mut data = vec![0f64; n];
        let body = |i: usize, v: &mut dyn ArrayView<f64>| {
            v.write(i, i as f64); // disjoint plain writes
            v.reduce_add(0, 1.0); // histogram cell 0... wait: cell 0 is
                                  // also written by iteration 0 -> conflict
        };
        let out = speculative_doall(&mut data, n, 4, false, body);
        assert!(out.reduction_conflict, "cell 0 both written and reduced: {out:?}");
        // move the reduction target outside the written range:
        let mut d2 = vec![0f64; n + 1];
        let body2 = |i: usize, v: &mut dyn ArrayView<f64>| {
            v.write(i, i as f64);
            v.reduce_add(n, 1.0);
        };
        let out2 = speculative_doall(&mut d2, n, 4, false, body2);
        assert!(out2.parallel_valid && out2.committed, "{out2:?}");
        assert_eq!(d2[n], n as f64);
        let mut seq = vec![0f64; n + 1];
        run_sequential(&mut seq, n, body2);
        assert_eq!(d2, seq);
    }

    // ---- property: verdicts and values against a brute-force oracle ----

    #[derive(Debug, Clone)]
    enum Op {
        Read(usize),
        Write(usize),
    }

    fn apply_ops(ops: &[Vec<Op>]) -> impl Fn(usize, &mut dyn ArrayView<i64>) + Sync + '_ {
        move |i: usize, v: &mut dyn ArrayView<i64>| {
            let mut acc = i as i64;
            for op in &ops[i] {
                match op {
                    Op::Read(idx) => acc = acc.wrapping_add(v.read(*idx)),
                    Op::Write(idx) => v.write(*idx, acc),
                }
            }
        }
    }

    /// Oracle: is the loop fully parallel as a plain doall (every
    /// element touched by a write is touched by exactly one iteration,
    /// and never read by another)?
    fn oracle(ops: &[Vec<Op>], n_elems: usize) -> (bool, bool) {
        let n_iters = ops.len();
        let mut writers: Vec<Vec<usize>> = vec![Vec::new(); n_elems];
        let mut cross_readers: Vec<Vec<usize>> = vec![Vec::new(); n_elems];
        let mut read_before_write: Vec<bool> = vec![false; n_elems];
        for (it, seq) in ops.iter().enumerate() {
            let mut written = vec![false; n_elems];
            let mut read_first = vec![false; n_elems];
            let mut read_any = vec![false; n_elems];
            for op in seq {
                match op {
                    Op::Read(i) => {
                        if !written[*i] {
                            read_first[*i] = true;
                        }
                        read_any[*i] = true;
                    }
                    Op::Write(i) => written[*i] = true,
                }
            }
            for e in 0..n_elems {
                if written[e] {
                    writers[e].push(it);
                    if read_first[e] {
                        read_before_write[e] = true;
                    }
                }
                if read_any[e] && !written[e] {
                    cross_readers[e].push(it);
                }
            }
        }
        let _ = n_iters;
        let mut flow_anti = false;
        let mut output = false;
        let mut not_priv = false;
        for e in 0..n_elems {
            if writers[e].is_empty() {
                continue;
            }
            if !cross_readers[e].is_empty() {
                flow_anti = true;
            }
            if writers[e].len() > 1 {
                output = true;
            }
            if read_before_write[e] {
                not_priv = true;
            }
        }
        (
            !flow_anti && !output && !not_priv,
            !flow_anti && !not_priv,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_verdict_matches_oracle(
            seed in proptest::collection::vec(
                proptest::collection::vec((0usize..2, 0usize..6), 0..5),
                1..10,
            )
        ) {
            let n_elems = 6usize;
            let ops: Vec<Vec<Op>> = seed
                .iter()
                .map(|seq| {
                    seq.iter()
                        .map(|(k, i)| if *k == 0 { Op::Read(*i) } else { Op::Write(*i) })
                        .collect()
                })
                .collect();
            let (want_plain, want_priv) = oracle(&ops, n_elems);
            let mut d1 = vec![0i64; n_elems];
            let body = apply_ops(&ops);
            let out = speculative_doall(&mut d1, ops.len(), 3, false, &body);
            prop_assert_eq!(out.parallel_valid, want_plain, "plain verdict mismatch {:?}", out);
            let mut d2 = vec![0i64; n_elems];
            let out2 = speculative_doall(&mut d2, ops.len(), 3, true, &body);
            prop_assert_eq!(out2.privatized_valid, want_priv, "priv verdict mismatch {:?}", out2);
            // When committed, results must equal sequential execution.
            if out2.committed {
                let mut seq = vec![0i64; n_elems];
                run_sequential(&mut seq, ops.len(), &body);
                prop_assert_eq!(d2, seq);
            } else {
                prop_assert_eq!(d2, vec![0i64; n_elems], "failed spec must not mutate");
            }
        }
    }
}

//! Run-time index-array inspection — the inspector/executor scheme.
//!
//! The compile-time property pass (`polaris-core::idxprop`) proves
//! `A(IDX(I))` loops parallel when the *defining loop* of `IDX` is
//! statically recognizable. When it is not — the index array arrives
//! from input data, or its fill is conditional — the next-cheapest
//! option before full LRPD shadow speculation is to *inspect the
//! concrete index array at run time*, immediately before the loop:
//!
//! * [`classify`] derives the same property lattice the compiler uses
//!   (monotone / strict / injective / bounded) from the actual values,
//!   in one `O(n)` pass plus an `O(n log n)` duplicate check;
//! * [`speculative_doall_inspected`] consults that verdict: an
//!   injective, in-bounds index array makes a scatter through it
//!   race-free, so the loop runs as a plain logged doall — per-thread
//!   write logs instead of the four dense LRPD shadow arrays — and the
//!   log is re-checked cheaply at commit (defense in depth against a
//!   body that touches elements outside `IDX`). Anything the
//!   inspection or the log check cannot certify falls through to the
//!   full [`speculative_doall`] PD test, never to a wrong answer.
//!
//! The commit-time log check keeps the fast path *sound by
//! construction* rather than by contract: a conflicting write or a
//! cross-iteration read discards the logs (the shared array has not
//! been touched) and re-runs the loop under full LRPD.

use crate::lrpd::{speculative_doall, ArrayView, SpecOutcome};
use std::time::{Duration, Instant};

const NEVER: u32 = u32::MAX;

/// Properties of one concrete index array, mirroring the compile-time
/// lattice of `polaris-ir`'s `ArrayProps` (which speaks about symbolic
/// fills; this speaks about the values actually present at run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexProperties {
    /// Number of entries inspected.
    pub len: usize,
    /// Non-decreasing left to right.
    pub monotone_inc: bool,
    /// Non-increasing left to right.
    pub monotone_dec: bool,
    /// Strictly monotone (in whichever direction holds).
    pub strict: bool,
    /// No value occurs twice.
    pub injective: bool,
    /// Smallest value (0 when empty).
    pub min: i64,
    /// Largest value (0 when empty).
    pub max: i64,
}

impl IndexProperties {
    /// Every value lies in `lo..=hi` (vacuously true when empty).
    pub fn bounded_within(&self, lo: i64, hi: i64) -> bool {
        self.len == 0 || (self.min >= lo && self.max <= hi)
    }

    /// The values are exactly `lo, lo+1, …, lo+len-1` in some order.
    pub fn is_permutation_of(&self, lo: i64) -> bool {
        self.len > 0
            && self.injective
            && self.min == lo
            && self.max == lo + self.len as i64 - 1
    }

    /// Human-readable fact list, same vocabulary as the compile-time
    /// `ArrayProps::facts` so diagnostics line up across the two layers.
    pub fn facts(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.monotone_inc {
            out.push(if self.strict { "strictly-increasing" } else { "monotone-increasing" });
        }
        if self.monotone_dec {
            out.push(if self.strict { "strictly-decreasing" } else { "monotone-decreasing" });
        }
        if self.injective {
            out.push("injective");
        }
        out.push("bounded");
        out
    }
}

/// Inspect a concrete index array: one pass for monotonicity and value
/// bounds, then — only when monotonicity has not already settled it — a
/// sort-based duplicate scan for injectivity.
pub fn classify(idx: &[i64]) -> IndexProperties {
    if idx.is_empty() {
        return IndexProperties {
            len: 0,
            monotone_inc: true,
            monotone_dec: true,
            strict: true,
            injective: true,
            min: 0,
            max: 0,
        };
    }
    let mut inc = true;
    let mut dec = true;
    let mut strict_inc = true;
    let mut strict_dec = true;
    let (mut min, mut max) = (idx[0], idx[0]);
    for w in idx.windows(2) {
        let (a, b) = (w[0], w[1]);
        inc &= a <= b;
        dec &= a >= b;
        strict_inc &= a < b;
        strict_dec &= a > b;
        min = min.min(b);
        max = max.max(b);
    }
    let strict = (inc && strict_inc) || (dec && strict_dec);
    let injective = if strict {
        true
    } else if inc || dec {
        false // monotone with a repeat: the repeat is a duplicate
    } else {
        let mut sorted = idx.to_vec();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    };
    IndexProperties {
        len: idx.len(),
        monotone_inc: inc,
        monotone_dec: dec,
        strict,
        injective,
        min,
        max,
    }
}

/// Which executor [`speculative_doall_inspected`] ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectedMode {
    /// Inspection certified the index array; the loop ran as a logged
    /// doall with no dense shadow structures.
    Doall,
    /// Inspection (or the commit-time log check) could not certify the
    /// loop; it ran under the full LRPD PD test.
    Speculative,
}

impl InspectedMode {
    pub fn as_str(self) -> &'static str {
        match self {
            InspectedMode::Doall => "inspected-doall",
            InspectedMode::Speculative => "lrpd",
        }
    }
}

/// Per-thread access log for the certified fast path: every touched
/// element, no dense shadows. `writes` holds at most one entry per
/// (element, iteration); `reads` records reads served from the shared
/// array (reads of the iteration's own pending write are forwarded and
/// need no entry).
struct LogView<'a, T> {
    original: &'a [T],
    iter: u32,
    /// This iteration's pending writes, searched for read forwarding.
    cur: Vec<(usize, T)>,
    writes: Vec<(usize, u32, T)>,
    reads: Vec<(usize, u32)>,
}

impl<'a, T: Copy> LogView<'a, T> {
    fn end_iteration(&mut self) {
        let t = self.iter;
        for &(e, v) in &self.cur {
            self.writes.push((e, t, v));
        }
        self.cur.clear();
    }
}

impl<'a, T: Copy + std::ops::Add<Output = T>> ArrayView<T> for LogView<'a, T> {
    fn read(&mut self, idx: usize) -> T {
        if let Some(&(_, v)) = self.cur.iter().rev().find(|&&(e, _)| e == idx) {
            return v;
        }
        self.reads.push((idx, self.iter));
        self.original[idx]
    }

    fn write(&mut self, idx: usize, value: T) {
        if let Some(slot) = self.cur.iter_mut().find(|(e, _)| *e == idx) {
            slot.1 = value;
        } else {
            self.cur.push((idx, value));
        }
    }

    fn reduce_add(&mut self, idx: usize, value: T) {
        let v = self.read(idx) + value;
        self.write(idx, v);
    }
}

/// Inspector/executor wrapper around [`speculative_doall`]: inspect the
/// concrete index array `idx` (the subscript values iteration `i` uses
/// to address `data`), and
///
/// * if it is injective and in-bounds for `data`, execute the loop as a
///   plain logged doall — no dense shadow arrays — re-verifying the
///   access log at commit (a conflict discards the logs and falls
///   through to full LRPD);
/// * otherwise run the full PD test exactly as [`speculative_doall`]
///   would.
///
/// The iteration count is `idx.len()`. Returns the executor actually
/// used together with the outcome; a failed outcome leaves `data`
/// untouched so the caller re-executes sequentially, as with plain
/// LRPD.
pub fn speculative_doall_inspected<T, F>(
    data: &mut [T],
    idx: &[i64],
    n_threads: usize,
    privatized: bool,
    body: F,
) -> (InspectedMode, SpecOutcome)
where
    T: Copy + Default + Send + Sync + std::ops::Add<Output = T>,
    F: Fn(usize, &mut dyn ArrayView<T>) + Sync,
{
    let n_iters = idx.len();
    let props = classify(idx);
    let certified =
        n_iters > 0 && props.injective && props.bounded_within(0, data.len() as i64 - 1);
    if !certified {
        let out = speculative_doall(data, n_iters, n_threads, privatized, body);
        return (InspectedMode::Speculative, out);
    }

    // --- certified fast path: logged parallel execution -----------------
    let n_threads = n_threads.max(1);
    let t_exec = Instant::now();
    type ThreadLog<T> = (Vec<(usize, u32, T)>, Vec<(usize, u32)>);
    let mut logs: Vec<ThreadLog<T>> = Vec::new();
    let mut worker_panicked = false;
    {
        let data_ref: &[T] = data;
        let body_ref = &body;
        let joined = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..n_threads {
                handles.push(scope.spawn(move |_| {
                    let mut view = LogView {
                        original: data_ref,
                        iter: 0,
                        cur: Vec::new(),
                        writes: Vec::new(),
                        reads: Vec::new(),
                    };
                    let per = n_iters.div_ceil(n_threads);
                    let lo = tid * per;
                    let hi = ((tid + 1) * per).min(n_iters);
                    for it in lo..hi {
                        view.iter = it as u32;
                        body_ref(it, &mut view);
                        view.end_iteration();
                    }
                    (view.writes, view.reads)
                }));
            }
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        match joined {
            Ok(results) => {
                for r in results {
                    match r {
                        Ok(log) => logs.push(log),
                        Err(_) => worker_panicked = true,
                    }
                }
            }
            Err(_) => worker_panicked = true,
        }
    }
    let exec_time = t_exec.elapsed();
    if worker_panicked {
        // Same isolation contract as LRPD: nothing was committed, so
        // surface a failed attempt and let the caller go sequential.
        return (
            InspectedMode::Doall,
            SpecOutcome {
                parallel_valid: false,
                privatized_valid: false,
                flow_anti: false,
                output_dep: false,
                not_privatizable: false,
                reduction_conflict: false,
                reduced: 0,
                writes: 0,
                marks: 0,
                committed: false,
                worker_panicked: true,
                exec_time,
                test_time: Duration::ZERO,
            },
        );
    }

    // --- commit-time log check ------------------------------------------
    // Certification says the body addresses `data` through an injective
    // in-bounds map, but the check is on the log, not the promise: two
    // iterations writing one element, or a read of an element some other
    // iteration wrote, invalidates the fast path.
    let t_test = Instant::now();
    let mut writer = vec![NEVER; data.len()];
    let mut conflict = false;
    'outer: for (ws, _) in &logs {
        for &(e, t, _) in ws {
            if writer[e] != NEVER && writer[e] != t {
                conflict = true;
                break 'outer;
            }
            writer[e] = t;
        }
    }
    if !conflict {
        'outer: for (_, rs) in &logs {
            for &(e, t) in rs {
                if writer[e] != NEVER && writer[e] != t {
                    conflict = true;
                    break 'outer;
                }
            }
        }
    }
    if conflict {
        // Logs are side buffers; `data` is untouched. Re-run under the
        // full PD test, which will produce the precise failure verdict
        // (or even pass, e.g. write-then-read patterns LRPD privatizes).
        let out = speculative_doall(data, n_iters, n_threads, privatized, body);
        return (InspectedMode::Speculative, out);
    }
    let writes: u64 = logs.iter().map(|(ws, _)| ws.len() as u64).sum();
    for (ws, _) in &logs {
        for &(e, _, v) in ws {
            data[e] = v;
        }
    }
    let test_time = t_test.elapsed();
    (
        InspectedMode::Doall,
        SpecOutcome {
            parallel_valid: true,
            privatized_valid: true,
            flow_anti: false,
            output_dep: false,
            not_privatizable: false,
            reduction_conflict: false,
            reduced: 0,
            writes,
            marks: writes,
            committed: true,
            worker_panicked: false,
            exec_time,
            test_time,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrpd::run_sequential;

    #[test]
    fn classify_identity_is_a_strict_permutation() {
        let idx: Vec<i64> = (0..100).collect();
        let p = classify(&idx);
        assert!(p.monotone_inc && p.strict && p.injective);
        assert!(!p.monotone_dec);
        assert!(p.is_permutation_of(0));
        assert!(p.bounded_within(0, 99));
        assert!(!p.bounded_within(0, 98));
        assert_eq!(p.facts(), vec!["strictly-increasing", "injective", "bounded"]);
    }

    #[test]
    fn classify_shuffled_permutation_is_injective_not_monotone() {
        // 77 coprime with 128: a permutation of 0..128.
        let idx: Vec<i64> = (0..128).map(|i| (i * 77 + 13) % 128).collect();
        let p = classify(&idx);
        assert!(p.injective && !p.monotone_inc && !p.monotone_dec && !p.strict);
        assert!(p.is_permutation_of(0));
    }

    #[test]
    fn classify_duplicates_are_bounded_only() {
        let idx: Vec<i64> = (0..64).map(|i| i / 2).collect();
        let p = classify(&idx);
        assert!(p.monotone_inc && !p.strict && !p.injective);
        assert!(!p.is_permutation_of(0));
        assert_eq!((p.min, p.max), (0, 31));
        assert_eq!(p.facts(), vec!["monotone-increasing", "bounded"]);
    }

    #[test]
    fn classify_strictly_decreasing() {
        let idx: Vec<i64> = (0..50).map(|i| 100 - 2 * i).collect();
        let p = classify(&idx);
        assert!(p.monotone_dec && p.strict && p.injective && !p.monotone_inc);
        assert!(!p.is_permutation_of(2), "stride 2 skips values");
        assert_eq!(p.facts(), vec!["strictly-decreasing", "injective", "bounded"]);
    }

    #[test]
    fn certified_scatter_runs_as_doall_and_matches_sequential() {
        let n = 128usize;
        let idx: Vec<i64> = (0..n as i64).map(|i| (i * 77 + 13) % n as i64).collect();
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.write(idx[i] as usize, i as i64 * 3);
        };
        let mut data = vec![0i64; n];
        let (mode, out) = speculative_doall_inspected(&mut data, &idx, 8, false, body);
        assert_eq!(mode, InspectedMode::Doall, "{out:?}");
        assert!(out.parallel_valid && out.committed);
        assert_eq!(out.writes, n as u64);
        let mut seq = vec![0i64; n];
        run_sequential(&mut seq, n, body);
        assert_eq!(data, seq);
    }

    #[test]
    fn duplicate_index_array_falls_through_to_lrpd_and_fails_safe() {
        let n = 64usize;
        let idx: Vec<i64> = (0..n as i64).map(|i| i / 2).collect();
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.write(idx[i] as usize, i as i64);
        };
        let mut data = vec![7i64; n];
        let (mode, out) = speculative_doall_inspected(&mut data, &idx, 4, false, body);
        assert_eq!(mode, InspectedMode::Speculative);
        assert!(out.output_dep && !out.committed, "{out:?}");
        assert_eq!(data, vec![7i64; n], "failed speculation must not disturb the array");
        run_sequential(&mut data, n, body);
        assert_eq!(data[0], 1, "last writer of element 0 is iteration 1");
    }

    #[test]
    fn out_of_bounds_index_array_is_not_certified() {
        // Injective but one entry past the end of `data`: inspection
        // must refuse the fast path (LRPD then fails on the stray write
        // only if the body actually performs it — here it clamps, so the
        // PD test passes; the point is the *mode*).
        let n = 16usize;
        let mut idx: Vec<i64> = (0..n as i64).collect();
        idx[7] = n as i64; // out of bounds for data
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.write((idx[i] as usize).min(15), i as i64);
        };
        let mut data = vec![0i64; n];
        let (mode, _) = speculative_doall_inspected(&mut data, &idx, 4, false, body);
        assert_eq!(mode, InspectedMode::Speculative);
    }

    #[test]
    fn contract_breaking_body_is_caught_by_the_log_check() {
        // The index array certifies, but the body ignores it and hammers
        // element 0 from every iteration: the commit-time log check must
        // detect the collision, discard the logs, and let full LRPD
        // deliver the failure with `data` untouched.
        let n = 32usize;
        let idx: Vec<i64> = (0..n as i64).collect();
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.write(0, i as i64);
        };
        let mut data = vec![5i64; n];
        let (mode, out) = speculative_doall_inspected(&mut data, &idx, 4, false, body);
        assert_eq!(mode, InspectedMode::Speculative, "{out:?}");
        assert!(out.output_dep && !out.committed);
        assert_eq!(data, vec![5i64; n]);
    }

    #[test]
    fn cross_iteration_read_is_caught_by_the_log_check() {
        // Certified injective writes, but iteration i also reads the
        // element iteration i-1 writes: a flow dependence the inspection
        // cannot see. The log check must refuse the fast-path commit.
        let n = 64usize;
        let idx: Vec<i64> = (0..n as i64).collect();
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            let carry = if i > 0 { v.read(i - 1) } else { 0 };
            v.write(i, carry + 1);
        };
        let mut data = vec![0i64; n];
        let (mode, out) = speculative_doall_inspected(&mut data, &idx, 4, false, body);
        assert_eq!(mode, InspectedMode::Speculative, "{out:?}");
        assert!(!out.committed, "{out:?}");
        assert_eq!(data, vec![0i64; n]);
        run_sequential(&mut data, n, body);
        assert_eq!(data[n - 1], n as i64);
    }

    #[test]
    fn same_iteration_read_after_write_is_forwarded_and_commits() {
        // Reads of the iteration's own pending write must be served from
        // the log (not the stale shared array) and must not count as
        // conflicts.
        let n = 32usize;
        let idx: Vec<i64> = (0..n as i64).map(|i| (n as i64 - 1) - i).collect();
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            let e = idx[i] as usize;
            v.write(e, i as i64);
            let mine = v.read(e);
            v.write(e, mine * 2);
        };
        let mut data = vec![0i64; n];
        let (mode, out) = speculative_doall_inspected(&mut data, &idx, 4, false, body);
        assert_eq!(mode, InspectedMode::Doall, "{out:?}");
        assert!(out.committed);
        let mut seq = vec![0i64; n];
        run_sequential(&mut seq, n, body);
        assert_eq!(data, seq);
    }

    #[test]
    fn empty_index_array_goes_speculative_trivially() {
        let mut data = vec![1i64; 4];
        let (mode, out) =
            speculative_doall_inspected(&mut data, &[], 4, false, |_i, _v: &mut dyn ArrayView<i64>| {});
        assert_eq!(mode, InspectedMode::Speculative);
        assert!(out.committed, "zero iterations trivially commit");
        assert_eq!(data, vec![1i64; 4]);
    }

    #[test]
    fn reduce_add_through_injective_index_matches_sequential() {
        let n = 48usize;
        let idx: Vec<i64> = (0..n as i64).map(|i| (i * 7 + 3) % n as i64).collect();
        assert!(classify(&idx).injective, "7 coprime with 48");
        let body = |i: usize, v: &mut dyn ArrayView<i64>| {
            v.reduce_add(idx[i] as usize, i as i64 + 1);
        };
        let mut data: Vec<i64> = (0..n as i64).collect();
        let (mode, out) = speculative_doall_inspected(&mut data, &idx, 4, false, body);
        assert_eq!(mode, InspectedMode::Doall, "{out:?}");
        assert!(out.committed);
        let mut seq: Vec<i64> = (0..n as i64).collect();
        run_sequential(&mut seq, n, body);
        assert_eq!(data, seq);
    }
}

//! F-Mini lint suite (`polarisc --lint`).
//!
//! Six static lints over the *parsed, untransformed* program — problems
//! worth reporting to the programmer whether or not the restructurer can
//! work around them:
//!
//! | lint                    | severity | what it catches                         |
//! |-------------------------|----------|-----------------------------------------|
//! | `use-before-def`        | warning  | scalar read before any assignment       |
//! | `const-subscript-bounds`| error    | constant subscript outside declared dims|
//! | `common-mismatch`       | error    | COMMON member shape/type disagreement   |
//! | `dead-store`            | warning  | scalar stored twice with no read between|
//! | `induction-recurrence`  | warning  | loop-carried scalar recurrence outside  |
//! |                         |          | the induction-substitutable forms       |
//! | `nest-locality`         | warning  | loop nest whose innermost stride is     |
//! |                         |          | non-unit while a legal interchange with |
//! |                         |          | better estimated locality exists        |
//!
//! Findings carry `line:col` spans (col re-derived from the source text,
//! since the IR keeps only lines) and render to a machine-readable JSON
//! document, schema `polaris-verify/lint/v1`.

use polaris_ir::expr::{BinOp, Expr, LValue};
use polaris_ir::stmt::{Stmt, StmtKind, StmtList};
use polaris_ir::symbol::{Dim, SymKind};
use polaris_ir::{Program, ProgramUnit};
use std::collections::{BTreeMap, BTreeSet};

/// Lint severity: `Error` findings are exit-code violations, `Warning`
/// findings merely degrade the exit code (see the CLI contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding with a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    pub severity: Severity,
    pub unit: String,
    /// 1-based source line (1 when the statement was synthesized).
    pub line: u32,
    /// 1-based column of the offending identifier in that line (1 when
    /// it cannot be located).
    pub col: u32,
    pub message: String,
}

/// All findings over one program, sorted by (line, col, lint).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
}

impl LintReport {
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warning).count()
    }

    /// Machine-readable JSON document, schema `polaris-verify/lint/v1`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"polaris-verify/lint/v1\",\n");
        s.push_str(&format!("  \"errors\": {},\n", self.errors()));
        s.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"unit\": \"{}\", \
                 \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
                f.lint,
                f.severity.as_str(),
                json_escape(&f.unit),
                f.line,
                f.col,
                json_escape(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run every lint over `program`. `source` is the original text the
/// program was parsed from, used to recover column positions.
pub fn lint_program(program: &Program, source: &str) -> LintReport {
    let lines: Vec<&str> = source.lines().collect();
    let mut sink = Sink { lines: &lines, findings: Vec::new() };
    for unit in &program.units {
        lint_use_before_def(unit, &mut sink);
        lint_const_subscript_bounds(unit, &mut sink);
        lint_dead_store(unit, &mut sink);
        lint_induction_recurrence(unit, &mut sink);
    }
    // The locality lint needs reduction flags (relaxable rows) to judge
    // interchange legality the way the compiler will; flag a throwaway
    // clone so linting stays side-effect free.
    let mut flagged = program.clone();
    polaris_core::reduction::flag_reductions(&mut flagged);
    for unit in &flagged.units {
        lint_nest_locality(unit, &mut sink);
    }
    lint_common_mismatch(program, &mut sink);
    let mut findings = sink.findings;
    findings.sort_by(|a, b| {
        (a.line, a.col, a.lint, &a.message).cmp(&(b.line, b.col, b.lint, &b.message))
    });
    LintReport { findings }
}

struct Sink<'a> {
    lines: &'a [&'a str],
    findings: Vec<Finding>,
}

impl Sink<'_> {
    fn push(
        &mut self,
        lint: &'static str,
        severity: Severity,
        unit: &str,
        line: u32,
        ident: &str,
        message: String,
    ) {
        let line = line.max(1);
        self.findings.push(Finding {
            lint,
            severity,
            unit: unit.to_string(),
            line,
            col: col_of(self.lines, line, ident),
            message,
        });
    }
}

/// 1-based column of `ident` (as a whole word, case-insensitive) in the
/// given 1-based source line; 1 when not found.
fn col_of(lines: &[&str], line: u32, ident: &str) -> u32 {
    let Some(text) = lines.get(line as usize - 1) else { return 1 };
    let hay = text.to_ascii_uppercase();
    let needle = ident.to_ascii_uppercase();
    if needle.is_empty() {
        return 1;
    }
    let bytes = hay.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(pos) = hay[start..].find(&needle) {
        let p = start + pos;
        let end = p + needle.len();
        let before_ok = p == 0 || !is_ident(bytes[p - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return (p + 1) as u32;
        }
        start = p + 1;
    }
    1
}

/// Scalar variable names read by `e`, subscripts included.
fn scalar_reads(e: &Expr, unit: &ProgramUnit, out: &mut Vec<(String, ())>) {
    e.for_each(&mut |n| {
        if let Expr::Var(v) = n {
            if unit.symbols.get(v).map(|s| matches!(s.kind, SymKind::Scalar)).unwrap_or(true) {
                out.push((v.clone(), ()));
            }
        }
    });
}

// ---------------------------------------------------------------- lints

/// `use-before-def`: a scalar read before any assignment to it on every
/// path the linear walk has seen. Dummy arguments, COMMON members and
/// PARAMETERs arrive defined; a DO header defines its variable.
fn lint_use_before_def(unit: &ProgramUnit, sink: &mut Sink) {
    let mut defined: BTreeSet<String> = BTreeSet::new();
    for sym in unit.symbols.iter() {
        let externally_set = sym.is_arg
            || sym.common.is_some()
            || matches!(sym.kind, SymKind::Parameter(_) | SymKind::External);
        if externally_set {
            defined.insert(sym.name.clone());
        }
    }
    let mut reported: BTreeSet<String> = BTreeSet::new();
    walk_ubd(&unit.body, unit, &mut defined, &mut reported, sink);
}

fn walk_ubd(
    list: &StmtList,
    unit: &ProgramUnit,
    defined: &mut BTreeSet<String>,
    reported: &mut BTreeSet<String>,
    sink: &mut Sink,
) {
    let check = |e: &Expr, line: u32, defined: &BTreeSet<String>, sink: &mut Sink,
                     reported: &mut BTreeSet<String>| {
        let mut reads = Vec::new();
        scalar_reads(e, unit, &mut reads);
        for (name, ()) in reads {
            if !defined.contains(&name) && reported.insert(name.clone()) {
                sink.push(
                    "use-before-def",
                    Severity::Warning,
                    &unit.name,
                    line,
                    &name,
                    format!("scalar `{name}` is read before any assignment defines it"),
                );
            }
        }
    };
    for s in list.iter() {
        match &s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                check(rhs, s.line, defined, sink, reported);
                for sub in lhs.subs() {
                    check(sub, s.line, defined, sink, reported);
                }
                if let LValue::Var(n) = lhs {
                    defined.insert(n.clone());
                }
            }
            StmtKind::Do(d) => {
                check(&d.init, s.line, defined, sink, reported);
                check(&d.limit, s.line, defined, sink, reported);
                if let Some(st) = &d.step {
                    check(st, s.line, defined, sink, reported);
                }
                defined.insert(d.var.clone());
                walk_ubd(&d.body, unit, defined, reported, sink);
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    check(&arm.cond, s.line, defined, sink, reported);
                }
                // Conservative join: anything any branch defines counts
                // as defined afterwards (a false "defined" only silences
                // a warning, never invents one).
                for arm in arms {
                    walk_ubd(&arm.body, unit, defined, reported, sink);
                }
                walk_ubd(else_body, unit, defined, reported, sink);
            }
            StmtKind::Call { args, .. } => {
                for a in args {
                    check(a, s.line, defined, sink, reported);
                    // A callee may define any variable passed by reference.
                    match a {
                        Expr::Var(n) => {
                            defined.insert(n.clone());
                        }
                        Expr::Index { array, .. } => {
                            defined.insert(array.clone());
                        }
                        _ => {}
                    }
                }
            }
            StmtKind::Print { items } => {
                for e in items {
                    check(e, s.line, defined, sink, reported);
                }
            }
            StmtKind::Assert { cond } => {
                // An assertion states a fact about a value; it does not
                // read it at run time. Treat named variables as defined
                // from here on (the user vouches for them).
                let mut reads = Vec::new();
                scalar_reads(cond, unit, &mut reads);
                for (name, ()) in reads {
                    defined.insert(name);
                }
            }
            StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
        }
    }
}

/// `const-subscript-bounds`: a constant subscript provably outside the
/// declared (constant) bounds of its dimension.
fn lint_const_subscript_bounds(unit: &ProgramUnit, sink: &mut Sink) {
    let check_index = |array: &str, subs: &[Expr], line: u32, sink: &mut Sink| {
        let Some(sym) = unit.symbols.get(array) else { return };
        let dims: &[Dim] = sym.dims();
        for (d, sub) in dims.iter().zip(subs.iter()) {
            let (Some(v), Some(lo), Some(hi)) = (
                sub.simplified().as_int(),
                d.lo.simplified().as_int(),
                d.hi.simplified().as_int(),
            ) else {
                continue;
            };
            if v < lo || v > hi {
                sink.push(
                    "const-subscript-bounds",
                    Severity::Error,
                    &unit.name,
                    line,
                    array,
                    format!("subscript {v} of `{array}` is outside its declared bounds {lo}:{hi}"),
                );
            }
        }
    };
    unit.body.walk(&mut |s| {
        let line = s.line;
        if let StmtKind::Assign { lhs: LValue::Index { array, subs }, .. } = &s.kind {
            check_index(array, subs, line, sink);
        }
        for_each_expr(s, &mut |e| {
            if let Expr::Index { array, subs } = e {
                check_index(array, subs, line, sink);
            }
        });
    });
}

/// `common-mismatch`: a COMMON member declared with a different type or
/// shape in different units (storage association goes wrong silently),
/// or the same name placed in *different* COMMON blocks.
/// One COMMON declaration site: (block, unit, type keyword, extents).
type CommonDecl = (String, String, String, Vec<Option<i64>>);

fn lint_common_mismatch(program: &Program, sink: &mut Sink) {
    let mut decls: BTreeMap<String, Vec<CommonDecl>> = BTreeMap::new();
    for unit in &program.units {
        for sym in unit.symbols.iter() {
            if let Some(block) = &sym.common {
                let extents: Vec<Option<i64>> =
                    sym.dims().iter().map(|d| d.const_extent()).collect();
                decls.entry(sym.name.clone()).or_default().push((
                    block.clone(),
                    unit.name.clone(),
                    sym.ty.keyword().to_string(),
                    extents,
                ));
            }
        }
    }
    for (name, sites) in &decls {
        let (block0, unit0, ty0, ext0) = &sites[0];
        for (block, unit, ty, ext) in &sites[1..] {
            if block != block0 {
                sink.push(
                    "common-mismatch",
                    Severity::Warning,
                    unit,
                    1,
                    name,
                    format!(
                        "`{name}` lives in COMMON /{block}/ here but in /{block0}/ in \
                         unit {unit0} (same name, different storage)"
                    ),
                );
            } else if ty != ty0 || ext != ext0 {
                sink.push(
                    "common-mismatch",
                    Severity::Error,
                    unit,
                    1,
                    name,
                    format!(
                        "COMMON /{block}/ member `{name}` is {} here but {} in unit \
                         {unit0} (storage association mismatch)",
                        shape_str(ty, ext),
                        shape_str(ty0, ext0),
                    ),
                );
            }
        }
    }
}

fn shape_str(ty: &str, ext: &[Option<i64>]) -> String {
    if ext.is_empty() {
        ty.to_string()
    } else {
        let dims: Vec<String> = ext
            .iter()
            .map(|e| e.map(|v| v.to_string()).unwrap_or_else(|| "*".into()))
            .collect();
        format!("{ty}({})", dims.join(","))
    }
}

/// `dead-store`: two assignments to the same scalar in one straight-line
/// statement list with no intervening read (the first store can never be
/// observed). Control flow, CALLs and list boundaries conservatively
/// clear the tracking.
fn lint_dead_store(unit: &ProgramUnit, sink: &mut Sink) {
    walk_dead(&unit.body, unit, sink);
}

fn walk_dead(list: &StmtList, unit: &ProgramUnit, sink: &mut Sink) {
    // scalar name -> line of the pending (not-yet-read) store
    let mut pending: BTreeMap<String, u32> = BTreeMap::new();
    for s in list.iter() {
        let mut reads = Vec::new();
        for_each_expr(s, &mut |e| {
            let mut r = Vec::new();
            scalar_reads(e, unit, &mut r);
            reads.extend(r.into_iter().map(|(n, ())| n));
        });
        match &s.kind {
            StmtKind::Assign { lhs, .. } => {
                for r in &reads {
                    pending.remove(r);
                }
                if let LValue::Var(n) = lhs {
                    if let Some(prev) = pending.insert(n.clone(), s.line) {
                        sink.push(
                            "dead-store",
                            Severity::Warning,
                            &unit.name,
                            prev,
                            n,
                            format!(
                                "value stored to `{n}` is overwritten at line {} before \
                                 being read",
                                s.line
                            ),
                        );
                    }
                }
            }
            StmtKind::Do(d) => {
                for r in &reads {
                    pending.remove(r);
                }
                pending.clear();
                walk_dead(&d.body, unit, sink);
            }
            StmtKind::IfBlock { arms, else_body } => {
                for r in &reads {
                    pending.remove(r);
                }
                pending.clear();
                for arm in arms {
                    walk_dead(&arm.body, unit, sink);
                }
                walk_dead(else_body, unit, sink);
            }
            _ => {
                for r in &reads {
                    pending.remove(r);
                }
                if matches!(&s.kind, StmtKind::Call { .. }) {
                    pending.clear();
                }
            }
        }
    }
}

/// `induction-recurrence`: inside a DO body, `x = f(x)` where `f` is not
/// one of the forms induction substitution (or reduction recognition)
/// rewrites — `x + e`, `e + x`, `x - e`, `x * e`, `e * x` with `e` free
/// of `x`. Such recurrences serialize the loop.
fn lint_induction_recurrence(unit: &ProgramUnit, sink: &mut Sink) {
    unit.body.walk(&mut |s| {
        if let StmtKind::Do(d) = &s.kind {
            // direct statements of this body only: nested loops get their
            // own visit, so each recurrence is reported once.
            for b in d.body.iter() {
                if let StmtKind::Assign { lhs: LValue::Var(x), rhs, .. } = &b.kind {
                    if mentions_var(rhs, x) && !substitutable(rhs, x) {
                        sink.push(
                            "induction-recurrence",
                            Severity::Warning,
                            &unit.name,
                            b.line,
                            x,
                            format!(
                                "scalar `{x}` carries the recurrence {x} = {}, outside \
                                 the induction-substitutable forms; it serializes `{}`",
                                polaris_ir::printer::format_expr(rhs),
                                d.label
                            ),
                        );
                    }
                }
            }
        }
    });
}

fn mentions_var(e: &Expr, var: &str) -> bool {
    let mut found = false;
    e.for_each(&mut |n| {
        if let Expr::Var(v) = n {
            if v == var {
                found = true;
            }
        }
    });
    found
}

/// Is `rhs` one of the forms the induction/reduction machinery handles?
fn substitutable(rhs: &Expr, x: &str) -> bool {
    match rhs {
        Expr::Bin { op: BinOp::Add, lhs, rhs: r } => {
            (is_var(lhs, x) && !mentions_var(r, x)) || (is_var(r, x) && !mentions_var(lhs, x))
        }
        Expr::Bin { op: BinOp::Sub, lhs, rhs: r } => is_var(lhs, x) && !mentions_var(r, x),
        Expr::Bin { op: BinOp::Mul, lhs, rhs: r } => {
            (is_var(lhs, x) && !mentions_var(r, x)) || (is_var(r, x) && !mentions_var(lhs, x))
        }
        _ => false,
    }
}

fn is_var(e: &Expr, x: &str) -> bool {
    matches!(e, Expr::Var(v) if v == x)
}

/// Visit every expression of one statement (not descending into nested
/// statement bodies).
fn for_each_expr(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    let mut visit = |e: &Expr| e.for_each(f);
    match &s.kind {
        StmtKind::Assign { lhs, rhs, .. } => {
            for sub in lhs.subs() {
                visit(sub);
            }
            visit(rhs);
        }
        StmtKind::Do(d) => {
            visit(&d.init);
            visit(&d.limit);
            if let Some(st) = &d.step {
                visit(st);
            }
        }
        StmtKind::IfBlock { arms, .. } => {
            for arm in arms {
                visit(&arm.cond);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                visit(a);
            }
        }
        StmtKind::Print { items } => {
            for e in items {
                visit(e);
            }
        }
        StmtKind::Assert { cond } => visit(cond),
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
    }
}

/// `nest-locality`: a loop nest runs with a worse memory order than a
/// *legal* alternative — the column-major stride model scores a
/// different permutation strictly cheaper and the dependence matrix
/// permits it. The restructurer performs this interchange itself when
/// its nest stages are enabled; the lint surfaces the same fact to the
/// programmer (who may be compiling with `--no-nest-opts` or a baseline
/// configuration).
fn lint_nest_locality(unit: &ProgramUnit, sink: &mut Sink) {
    use polaris_core::nestdeps::{band_of, better_legal_order, summarize_nest};
    let stats = polaris_core::DdStats::new();
    fn roots<'a>(list: &'a StmtList, out: &mut Vec<&'a Stmt>) {
        for s in list.iter() {
            match &s.kind {
                StmtKind::Do(d) => {
                    out.push(s);
                    let innermost = *band_of(d).last().expect("band");
                    roots(&innermost.body, out);
                }
                StmtKind::IfBlock { arms, else_body } => {
                    for arm in arms {
                        roots(&arm.body, out);
                    }
                    roots(else_body, out);
                }
                _ => {}
            }
        }
    }
    let mut nest_roots = Vec::new();
    roots(&unit.body, &mut nest_roots);
    for s in nest_roots {
        let d = s.as_do().expect("collected as DO");
        let summary = summarize_nest(&unit.name, d, &stats);
        let accesses =
            polaris_ir::visit::collect_accesses(&band_of(d).last().expect("band").body);
        if let Some((perm, from, to)) = better_legal_order(&summary, &accesses) {
            let vars = summary.vars();
            let order: Vec<&str> = perm.iter().map(|&i| vars[i].as_str()).collect();
            sink.push(
                "nest-locality",
                Severity::Warning,
                &unit.name,
                s.line,
                &d.var,
                format!(
                    "loop nest over ({}) has non-optimal memory order; \
                     the legal order ({}) scores {to} vs {from} in the \
                     column-major stride model",
                    vars.join(", "),
                    order.join(", ")
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints(src: &str) -> LintReport {
        let p = polaris_ir::parse(src).unwrap();
        lint_program(&p, src)
    }

    fn has(report: &LintReport, lint: &str, frag: &str) -> bool {
        report.findings.iter().any(|f| f.lint == lint && f.message.contains(frag))
    }

    #[test]
    fn use_before_def_flagged_with_span() {
        let src = "program t\nreal a(10)\na(1) = x + 1.0\nx = 2.0\nend\n";
        let r = lints(src);
        assert!(has(&r, "use-before-def", "`X`"), "{:?}", r.findings);
        let f = r.findings.iter().find(|f| f.lint == "use-before-def").unwrap();
        assert_eq!(f.line, 3);
        assert_eq!(f.col, 8, "col of X in `a(1) = x + 1.0`");
        assert_eq!(f.severity, Severity::Warning);
    }

    #[test]
    fn defined_names_do_not_warn() {
        // args, parameters, DO variables, assert-vouched symbolics
        let src = "program t\ninteger n\nparameter (n = 10)\nreal a(10)\n!$assert (m >= 1)\ndo i = 1, n\n  a(i) = i * 1.0\nend do\nk = m\nprint *, a(1), k\nend\n";
        let r = lints(src);
        assert!(
            !r.findings.iter().any(|f| f.lint == "use-before-def"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn const_subscript_out_of_bounds_is_an_error() {
        let src = "program t\nreal a(10)\na(11) = 0.0\nx = a(0)\nend\n";
        let r = lints(src);
        assert_eq!(
            r.findings.iter().filter(|f| f.lint == "const-subscript-bounds").count(),
            2,
            "{:?}",
            r.findings
        );
        assert!(has(&r, "const-subscript-bounds", "subscript 11"));
        assert!(has(&r, "const-subscript-bounds", "subscript 0"));
        assert_eq!(r.errors(), 2);
    }

    #[test]
    fn in_bounds_and_symbolic_subscripts_are_silent() {
        let src = "program t\nreal a(10)\ndo i = 1, 10\n  a(i) = 0.0\nend do\na(10) = 1.0\nend\n";
        let r = lints(src);
        assert!(!r.findings.iter().any(|f| f.lint == "const-subscript-bounds"));
    }

    #[test]
    fn common_shape_mismatch_across_units() {
        let src = "program t\nreal x(10)\ncommon /blk/ x\ncall f()\nend\n\
                   subroutine f()\nreal x(20)\ncommon /blk/ x\nx(1) = 0.0\nend\n";
        let r = lints(src);
        assert!(has(&r, "common-mismatch", "`X`"), "{:?}", r.findings);
        assert_eq!(r.errors(), 1);
    }

    #[test]
    fn dead_store_in_straight_line_code() {
        let src = "program t\nx = 1.0\nx = 2.0\nprint *, x\nend\n";
        let r = lints(src);
        let f = r.findings.iter().find(|f| f.lint == "dead-store").unwrap();
        assert_eq!(f.line, 2, "{:?}", r.findings);
        assert!(f.message.contains("line 3"), "{}", f.message);
    }

    #[test]
    fn read_or_branch_between_stores_suppresses_dead_store() {
        let src = "program t\nx = 1.0\ny = x\nx = 2.0\nprint *, x, y\nend\n";
        assert!(!lints(src).findings.iter().any(|f| f.lint == "dead-store"));
        let src2 = "program t\nx = 1.0\nif (k > 0) then\n  print *, x\nend if\nx = 2.0\nprint *, x\nend\n";
        assert!(!lints(src2).findings.iter().any(|f| f.lint == "dead-store"));
    }

    #[test]
    fn nonlinear_recurrence_flagged_linear_forms_silent() {
        let src = "program t\ns = 1.0\nk = 0\ndo i = 1, 10\n  k = k + 1\n  s = s * s\nend do\nprint *, s, k\nend\n";
        let r = lints(src);
        assert!(has(&r, "induction-recurrence", "`S`"), "{:?}", r.findings);
        assert!(!has(&r, "induction-recurrence", "`K`"), "{:?}", r.findings);
    }

    #[test]
    fn json_document_shape() {
        let src = "program t\nreal a(10)\na(11) = 0.0\nend\n";
        let j = lints(src).to_json();
        assert!(j.contains("\"schema\": \"polaris-verify/lint/v1\""), "{j}");
        assert!(j.contains("\"errors\": 1"), "{j}");
        assert!(j.contains("\"line\": 3"), "{j}");
        assert!(j.contains("\"col\":"), "{j}");
    }

    #[test]
    fn nest_locality_flags_column_crossing_inner_loop() {
        // Inner loop J walks the second subscript: stride 34 in the
        // column-major layout. Swapping to I-inner is legal and cheaper.
        let r = lints(
            "program t\nreal a(34,34), b(34,34)\n\
             do i = 2, 33\n  do j = 2, 33\n\
             \x20   b(i,j) = a(i,j) + a(i-1,j)\n\
             end do\nend do\nprint *, b(2,2)\nend\n",
        );
        assert!(has(&r, "nest-locality", "legal order (J, I)"), "{:?}", r.findings);
    }

    #[test]
    fn nest_locality_stays_silent_when_interchange_is_illegal() {
        // The profitable J-inner... wait: the (<, >) dependence forbids
        // the only cheaper order, so no finding may be emitted.
        let r = lints(
            "program t\nreal a(64,64)\n\
             do i = 2, 63\n  do j = 2, 63\n\
             \x20   a(i,j) = a(i+1,j-1) + 1.0\n\
             end do\nend do\nprint *, a(2,2)\nend\n",
        );
        assert!(!has(&r, "nest-locality", ""), "{:?}", r.findings);
    }

    #[test]
    fn nest_locality_stays_silent_on_optimal_order() {
        let r = lints(
            "program t\nreal a(34,34), b(34,34)\n\
             do j = 2, 33\n  do i = 2, 33\n\
             \x20   b(i,j) = a(i,j) + a(i-1,j)\n\
             end do\nend do\nprint *, b(2,2)\nend\n",
        );
        assert!(!has(&r, "nest-locality", ""), "{:?}", r.findings);
    }
}

//! Independent re-proving of nest-transformation legality certificates.
//!
//! The `interchange`/`tile`/`fuse` stages in `polaris-core` justify every
//! applied transformation with a [`LegalityCert`] carrying the dependence
//! matrix they judged. This module **does not trust that matrix**: for
//! each cert it locates the transformed nest in the final IR, validates
//! the structural claim (the loops really are the claimed permutation /
//! tiling / fused splice), reconstructs the *original* iteration order
//! from the certificate's loop list, re-derives the dependence matrix
//! from the transformed program's own accesses, and re-judges legality
//! with the same prover — the `idxprop` refusal pattern. A certificate
//! the re-prover cannot reproduce is rejected with the stage attributed,
//! never believed; `FaultKind::ForceIllegal` exists precisely to test
//! that this is the layer that catches a lying pass.

use polaris_core::ddtest::DdStats;
use polaris_core::nestdeps::{
    band_of, fusion_legal, interchange_legal, summarize_band_with, tiling_legal, NestLoop,
};
use polaris_core::CompileReport;
use polaris_ir::cert::{CertCheck, CertKind, LegalityCert};
use polaris_ir::stmt::{DoLoop, LoopId, StmtKind, StmtList};
use polaris_ir::{Program, ProgramUnit};

/// Re-derive every certificate in `report` from the transformed
/// `program`. One [`CertCheck`] per cert, in emission order.
pub fn recheck_certs(program: &Program, report: &CompileReport) -> Vec<CertCheck> {
    let stats = DdStats::new();
    report
        .nest
        .certs
        .iter()
        .map(|cert| {
            let verdict = check_cert(program, cert, &stats);
            CertCheck {
                stage: cert.stage(),
                unit: cert.unit.clone(),
                label: cert.label.clone(),
                accepted: verdict.is_ok(),
                reason: verdict.err().unwrap_or_default(),
            }
        })
        .collect()
}

fn check_cert(program: &Program, cert: &LegalityCert, stats: &DdStats) -> Result<(), String> {
    let unit = program
        .units
        .iter()
        .find(|u| u.name == cert.unit)
        .ok_or_else(|| format!("unit `{}` not found", cert.unit))?;
    let anchor = find_loop(&unit.body, cert.loop_id)
        .ok_or_else(|| format!("anchor loop {} not found in `{}`", cert.loop_id, cert.unit))?;
    match &cert.kind {
        CertKind::Interchange { perm } => check_interchange(unit, anchor, cert, perm, stats),
        CertKind::Tile { band, sizes } => check_tile(unit, anchor, cert, band, sizes, stats),
        CertKind::Fuse { fused_loop, boundary } => {
            check_fuse(anchor, *fused_loop, *boundary, stats)
        }
    }
}

fn find_loop(list: &StmtList, id: LoopId) -> Option<&DoLoop> {
    for s in list.iter() {
        match &s.kind {
            StmtKind::Do(d) => {
                if d.loop_id == id {
                    return Some(d);
                }
                if let Some(f) = find_loop(&d.body, id) {
                    return Some(f);
                }
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    if let Some(f) = find_loop(&arm.body, id) {
                        return Some(f);
                    }
                }
                if let Some(f) = find_loop(else_body, id) {
                    return Some(f);
                }
            }
            _ => {}
        }
    }
    None
}

fn valid_perm(perm: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    perm.len() == n
        && perm.iter().all(|&i| {
            if i >= n || seen[i] {
                false
            } else {
                seen[i] = true;
                true
            }
        })
}

/// Interchange: the transformed band's loop variables must be exactly
/// the cert's original list under the claimed permutation; then the
/// original-order dependence matrix is re-derived from the transformed
/// body (header permutation does not move statements, so reordering the
/// loop list reconstructs the pre-transformation nest) and the
/// permutation re-judged against it.
fn check_interchange(
    unit: &ProgramUnit,
    anchor: &DoLoop,
    cert: &LegalityCert,
    perm: &[usize],
    stats: &DdStats,
) -> Result<(), String> {
    let n = cert.loop_vars.len();
    if !valid_perm(perm, n) {
        return Err(format!("perm {perm:?} is not a permutation of 0..{n}"));
    }
    let band = band_of(anchor);
    if band.len() < n {
        return Err(format!("band depth {} shallower than cert depth {n}", band.len()));
    }
    let band = &band[..n];
    for (k, d) in band.iter().enumerate() {
        if d.var != cert.loop_vars[perm[k]] {
            return Err(format!(
                "band position {k} holds `{}`, cert claims `{}`",
                d.var, cert.loop_vars[perm[k]]
            ));
        }
    }
    // inverse[j] = transformed position of original loop j.
    let mut inverse = vec![0usize; n];
    for (k, &j) in perm.iter().enumerate() {
        inverse[j] = k;
    }
    let original: Vec<NestLoop> = inverse.iter().map(|&k| NestLoop::of(band[k])).collect();
    let body = &band[n - 1].body;
    let summary = summarize_band_with(&unit.name, original, body, anchor, stats);
    if summary.vars() != cert.loop_vars {
        return Err("re-derived loop order disagrees with cert".to_string());
    }
    interchange_legal(&summary.vectors, perm)
        .map_err(|e| format!("re-derived matrix rejects the permutation: {e}"))
}

/// Tiling: the transformed band must be `tile loops (step = size) over
/// point loops (step 1, bounds `T .. T+size-1`)`; the original band is
/// reconstructed by giving each point loop its tile loop's bounds, then
/// full permutability is re-judged over the re-derived matrix.
fn check_tile(
    unit: &ProgramUnit,
    anchor: &DoLoop,
    cert: &LegalityCert,
    band_idx: &[usize],
    sizes: &[i64],
    stats: &DdStats,
) -> Result<(), String> {
    let depth = cert.loop_vars.len();
    if band_idx.len() != depth || sizes.len() != depth {
        return Err("tile cert band/sizes do not cover the nest".to_string());
    }
    let band = band_of(anchor);
    if band.len() < 2 * depth {
        return Err(format!(
            "expected {} loops (tile + point), found {}",
            2 * depth,
            band.len()
        ));
    }
    let (tiles, points) = (&band[..depth], &band[depth..2 * depth]);
    let mut original = Vec::with_capacity(depth);
    for k in 0..depth {
        let (t, p) = (tiles[k], points[k]);
        if p.var != cert.loop_vars[k] {
            return Err(format!(
                "point loop {k} is `{}`, cert claims `{}` (tiling must not permute)",
                p.var, cert.loop_vars[k]
            ));
        }
        let size = sizes[k];
        if t.step_expr().simplified().as_int() != Some(size) {
            return Err(format!("tile loop `{}` does not step by {size}", t.var));
        }
        let (Some(lo), Some(hi)) =
            (t.init.simplified().as_int(), t.limit.simplified().as_int())
        else {
            return Err(format!("tile loop `{}` has non-constant bounds", t.var));
        };
        if size <= 0 || (hi - lo + 1) % size != 0 {
            return Err(format!(
                "tile loop `{}` trip {} is not a multiple of {size} (remainder iterations lost)",
                t.var,
                hi - lo + 1
            ));
        }
        let point_ok = p.init == polaris_ir::Expr::var(t.var.clone())
            && p.limit
                == polaris_ir::Expr::add(
                    polaris_ir::Expr::var(t.var.clone()),
                    polaris_ir::Expr::int(size - 1),
                )
            && p.step_expr().simplified().as_int() == Some(1);
        if !point_ok {
            return Err(format!(
                "point loop `{}` does not cover exactly its `{}` tile",
                p.var, t.var
            ));
        }
        original.push(NestLoop {
            var: p.var.clone(),
            loop_id: p.loop_id,
            label: p.label.clone(),
            lo: Some(lo),
            hi: Some(hi),
            unit_step: true,
        });
    }
    let body = &points[depth - 1].body;
    let summary = summarize_band_with(&unit.name, original, body, anchor, stats);
    tiling_legal(&summary.vectors, 0)
        .map_err(|e| format!("re-derived matrix rejects the tiling: {e}"))
}

/// Fusion: split the fused body back apart at the recorded boundary
/// statement and re-judge with the same cross-body prover the stage
/// claims to have used.
fn check_fuse(
    anchor: &DoLoop,
    fused_loop: LoopId,
    boundary: u32,
    stats: &DdStats,
) -> Result<(), String> {
    let split = anchor
        .body
        .0
        .iter()
        .position(|s| s.id.0 == boundary)
        .ok_or_else(|| format!("boundary statement s{boundary} not found in the fused body"))?;
    if split == 0 {
        return Err("boundary points at the first statement: nothing was fused".to_string());
    }
    let mut first = anchor.clone();
    let tail = first.body.0.split_off(split);
    let mut second = anchor.clone();
    second.body = StmtList(tail);
    second.loop_id = fused_loop;
    fusion_legal(&first, &second, stats)
        .map(|_| ())
        .map_err(|e| format!("re-derived cross-body analysis rejects the fusion: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_core::pipeline::FaultPlan;
    use polaris_core::PassOptions;

    const MMT: &str = "program mmt\nreal a(32,32), b(32,32), c(32,32)\nreal s\ns = 0.0\n\
                       do k = 1, 32\n  do i = 1, 32\n    do j = 1, 32\n\
                       \x20     c(i,j) = c(i,j) + a(k,i) * b(k,j)\n\
                       \x20     s = s + a(k,i)\n\
                       end do\nend do\nend do\nprint *, s\nend\n";

    const STENCIL: &str = "program st\nreal a(34,34), b(34,34)\n\
                           do j = 2, 33\n  do i = 2, 33\n\
                           \x20   b(i,j) = a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1)\n\
                           end do\nend do\nprint *, b(2,2)\nend\n";

    const FUSABLE: &str = "program fu\nreal a(64), b(64)\n\
                           do i = 1, 64\n  a(i) = i * 1.0\nend do\n\
                           do i = 1, 64\n  b(i) = a(i) + 1.0\nend do\n\
                           print *, b(1)\nend\n";

    fn compiled(src: &str, opts: &PassOptions) -> (Program, CompileReport) {
        polaris_core::parse_and_compile(src, opts).unwrap()
    }

    #[test]
    fn honest_certs_are_reaccepted() {
        for src in [MMT, STENCIL, FUSABLE] {
            let (p, rep) = compiled(src, &PassOptions::polaris());
            assert!(!rep.nest.certs.is_empty(), "no transformation fired on {src}");
            let checks = recheck_certs(&p, &rep);
            for c in &checks {
                assert!(c.accepted, "{}/{}: {}", c.stage, c.label, c.reason);
            }
        }
    }

    #[test]
    fn forced_illegal_interchange_is_rejected_with_stage_attribution() {
        let src = "program t\nreal a(64,64)\n\
                   do i = 2, 63\n  do j = 2, 63\n\
                   \x20   a(i,j) = a(i+1,j-1) + 1.0\n\
                   end do\nend do\nprint *, a(2,2)\nend\n";
        let opts = PassOptions::polaris().with_faults(FaultPlan::force_in("interchange"));
        let (p, rep) = compiled(src, &opts);
        assert_eq!(rep.nest.interchanges, 1, "fault must force the application");
        let checks = recheck_certs(&p, &rep);
        let bad: Vec<_> = checks.iter().filter(|c| !c.accepted).collect();
        assert_eq!(bad.len(), 1, "{checks:?}");
        assert_eq!(bad[0].stage, "interchange");
        assert!(bad[0].reason.contains("rejects the permutation"), "{}", bad[0].reason);
    }

    #[test]
    fn forced_illegal_tile_is_rejected_with_stage_attribution() {
        // (<, >) dependence with stencil reuse and 8-divisible trips:
        // a tiling candidate the prover rejects; the fault applies it.
        let src = "program t\nreal a(34,34)\n\
                   do i = 2, 33\n  do j = 2, 33\n\
                   \x20   a(i,j) = a(i-1,j+1) + a(i-1,j-1)\n\
                   end do\nend do\nprint *, a(2,2)\nend\n";
        let opts = PassOptions::polaris().with_faults(FaultPlan::force_in("tile"));
        let (p, rep) = compiled(src, &opts);
        assert_eq!(rep.nest.tiles, 1, "fault must force the application: {:?}", rep.nest);
        let checks = recheck_certs(&p, &rep);
        let bad: Vec<_> = checks.iter().filter(|c| !c.accepted).collect();
        assert_eq!(bad.len(), 1, "{checks:?}");
        assert_eq!(bad[0].stage, "tile");
        assert!(bad[0].reason.contains("rejects the tiling"), "{}", bad[0].reason);
    }

    #[test]
    fn forced_illegal_fusion_is_rejected_with_stage_attribution() {
        let src = "program t\nreal a(65), b(64)\n\
                   do i = 1, 64\n  a(i) = i * 1.0\nend do\n\
                   do i = 1, 64\n  b(i) = a(i+1) + 1.0\nend do\n\
                   print *, b(1)\nend\n";
        let opts = PassOptions::polaris().with_faults(FaultPlan::force_in("fuse"));
        let (p, rep) = compiled(src, &opts);
        assert_eq!(rep.nest.fusions, 1, "fault must force the application");
        let checks = recheck_certs(&p, &rep);
        let bad: Vec<_> = checks.iter().filter(|c| !c.accepted).collect();
        assert_eq!(bad.len(), 1, "{checks:?}");
        assert_eq!(bad[0].stage, "fuse");
        assert!(bad[0].reason.contains("rejects the fusion"), "{}", bad[0].reason);
    }

    #[test]
    fn tampered_cert_matrix_is_ignored_by_the_rederivation() {
        // Blank out the cert's own evidence: the re-prover must still
        // accept, because it never reads the cert's matrix.
        let (p, mut rep) = compiled(MMT, &PassOptions::polaris());
        for cert in &mut rep.nest.certs {
            cert.vectors.clear();
        }
        let checks = recheck_certs(&p, &rep);
        assert!(checks.iter().all(|c| c.accepted), "{checks:?}");
    }

    #[test]
    fn cert_pointing_at_a_missing_loop_is_rejected() {
        let (p, mut rep) = compiled(MMT, &PassOptions::polaris());
        for cert in &mut rep.nest.certs {
            cert.loop_id = LoopId(9999);
        }
        let checks = recheck_certs(&p, &rep);
        assert!(checks.iter().all(|c| !c.accepted));
        assert!(checks[0].reason.contains("not found"), "{}", checks[0].reason);
    }
}

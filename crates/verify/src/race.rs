//! Static race detector over lowered `RLoop` plans.
//!
//! For every loop the compiler claims PARALLEL, re-derive — independently
//! of the dependence driver that made the claim — that no cross-iteration
//! conflict is possible:
//!
//! * every scalar the body writes must be covered by a privatization,
//!   lastprivate (copy-out) or reduction annotation (the loop's own
//!   control variable, and nested loop control variables, are per-
//!   iteration state of the execution model and exempt);
//! * every array the body writes must either be covered by a
//!   privatization / speculation / reduction annotation, or its accesses
//!   must be proven iteration-disjoint by the range test, re-run here
//!   over the *lowered* subscripts with the range facts (`!$assert`
//!   conditions, PARAMETER values, enclosing loop headers) re-seeded from
//!   scratch.
//!
//! The verdict per claim is [`RaceVerdict::Clean`] (all writes covered or
//! proven disjoint), [`RaceVerdict::NeedsPrivatization`] (an uncovered
//! write whose only possible conflicts are output/anti — a private copy
//! or renaming would discharge them), or [`RaceVerdict::PotentialRace`]
//! (an uncovered write with reads in flight: a flow dependence cannot be
//! excluded). The verdicts are *conservative*: `Clean` is a proof
//! obligation, the other two are "could not prove" states that the
//! runtime oracle grades into precision misses (see
//! [`crate::agreement`]).

use polaris_core::ddtest::range_test::{no_carried_dependence, InnerLoop, RefSpec};
use polaris_core::ddtest::DdStats;
use polaris_core::idxprop::{self, PropAccess};
use polaris_core::rangeprop::assume_loop_header;
use polaris_ir::expr::{Expr, UnOp};
use polaris_ir::stmt::{LoopId, StmtKind};
use polaris_ir::symbol::{ArrayProps, SymKind};
use polaris_ir::Program;
use polaris_machine::lower::{Image, RExpr, RLoop, RRef, RStmt};
use polaris_machine::MachineError;
use polaris_symbolic::poly::{DivPolicy, Poly};
use polaris_symbolic::{Range, RangeEnv};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of the static check for one PARALLEL claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceVerdict {
    /// Every cross-iteration-visible write is covered by an annotation or
    /// proven iteration-disjoint.
    Clean,
    /// Uncovered writes remain, but no read of the written storage is in
    /// flight: only output (or discharged anti) conflicts are possible,
    /// which privatization or renaming would clear.
    NeedsPrivatization,
    /// An uncovered write with reads of the same storage: a flow
    /// dependence across iterations cannot be excluded.
    PotentialRace,
}

impl RaceVerdict {
    pub fn as_str(self) -> &'static str {
        match self {
            RaceVerdict::Clean => "clean",
            RaceVerdict::NeedsPrivatization => "needs-privatization",
            RaceVerdict::PotentialRace => "potential-race",
        }
    }

    fn worse(self, other: RaceVerdict) -> RaceVerdict {
        use RaceVerdict::*;
        match (self, other) {
            (PotentialRace, _) | (_, PotentialRace) => PotentialRace,
            (NeedsPrivatization, _) | (_, NeedsPrivatization) => NeedsPrivatization,
            _ => Clean,
        }
    }
}

/// The static verdict for one PARALLEL-claimed loop.
#[derive(Debug, Clone)]
pub struct LoopRace {
    pub loop_id: LoopId,
    pub label: String,
    pub verdict: RaceVerdict,
    /// Why: the first unprovable access for non-clean verdicts, or a
    /// summary of what was discharged for clean ones.
    pub detail: String,
}

/// Verdicts for every PARALLEL claim in the lowered image, in code order.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    pub loops: Vec<LoopRace>,
}

impl RaceReport {
    pub fn parallel_claims(&self) -> usize {
        self.loops.len()
    }

    pub fn count(&self, v: RaceVerdict) -> usize {
        self.loops.iter().filter(|l| l.verdict == v).count()
    }
}

/// Run the static race detector over a compiled program: lower the main
/// unit and check every PARALLEL claim, with range facts seeded from the
/// unit's PARAMETER declarations and `!$assert` conditions.
pub fn analyze(program: &Program) -> Result<RaceReport, MachineError> {
    let image = polaris_machine::lower::lower(program)?;
    let main = program.main().ok_or(MachineError::NoMain)?;
    let mut env = RangeEnv::new();
    for sym in main.symbols.iter() {
        if let SymKind::Parameter(value) = &sym.kind {
            if let Some(p) = Poly::from_expr(value, DivPolicy::Opaque) {
                env.set_fresh(sym.name.clone(), Range::exact(p));
            }
        }
    }
    main.body.walk(&mut |s| {
        if let StmtKind::Assert { cond } = &s.kind {
            env.assume_cond(cond);
        }
    });
    // Index-array properties are re-derived from the IR, NOT read from
    // `Symbol.props`: a corrupted or hand-edited annotation must not be
    // able to launder an unsound PARALLEL claim past the detector.
    let props = idxprop::infer_unit(main).props;
    Ok(check_image(&image, &env, &props))
}

/// Check every PARALLEL claim in an already-lowered image. `facts` holds
/// the loop-invariant range facts (assertions, parameters); scalar
/// assignment facts and enclosing loop headers are accumulated as the
/// walk descends, mirroring the dependence driver's abstract execution.
/// `props` holds independently re-derived index-array properties (pass
/// an empty map to disable the property-based disjointness fallback).
pub fn check_image(
    image: &Image,
    facts: &RangeEnv,
    props: &BTreeMap<String, ArrayProps>,
) -> RaceReport {
    let mut report = RaceReport::default();
    let mut env = facts.clone();
    walk(&image.code, image, &mut env, props, &mut report);
    report
}

fn walk(
    code: &[RStmt],
    image: &Image,
    env: &mut RangeEnv,
    props: &BTreeMap<String, ArrayProps>,
    report: &mut RaceReport,
) {
    for s in code {
        match s {
            RStmt::Do(l) => {
                // Facts about anything the body reassigns are stale both
                // inside the loop and after it.
                for slot in assigned_scalars(&l.body) {
                    env.invalidate(&image.scalar_names[slot]);
                }
                env.invalidate(&image.scalar_names[l.var]);
                let mut body_env = env.clone();
                assume_header(l, image, &mut body_env);
                if l.par.parallel {
                    report.loops.push(check_parallel_loop(l, image, &body_env, props));
                }
                walk(&l.body, image, &mut body_env, props, report);
            }
            RStmt::If(arms, else_body) => {
                for (_, body) in arms {
                    let mut arm_env = env.clone();
                    walk(body, image, &mut arm_env, props, report);
                }
                let mut else_env = env.clone();
                walk(else_body, image, &mut else_env, props, report);
                let mut killed = BTreeSet::new();
                for (_, body) in arms {
                    killed.extend(assigned_scalars(body));
                }
                killed.extend(assigned_scalars(else_body));
                for slot in killed {
                    env.invalidate(&image.scalar_names[slot]);
                }
            }
            RStmt::AssignS(slot, rhs) => {
                let name = &image.scalar_names[*slot];
                env.invalidate(name);
                if let Some(p) =
                    unlower(rhs, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Opaque))
                {
                    if !p.mentions_var(name) {
                        env.set_fresh(name.clone(), Range::exact(p));
                    }
                }
            }
            RStmt::AssignE(slot, _, _) => {
                env.invalidate(&image.arrays[*slot].name);
            }
            _ => {}
        }
    }
}

/// Every scalar slot `code` assigns, including nested loop variables.
fn assigned_scalars(code: &[RStmt]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    fn go(code: &[RStmt], out: &mut BTreeSet<usize>) {
        for s in code {
            match s {
                RStmt::AssignS(slot, _) => {
                    out.insert(*slot);
                }
                RStmt::Do(d) => {
                    out.insert(d.var);
                    go(&d.body, out);
                }
                RStmt::If(arms, else_body) => {
                    for (_, body) in arms {
                        go(body, out);
                    }
                    go(else_body, out);
                }
                _ => {}
            }
        }
    }
    go(code, &mut out);
    out
}

/// Assume a loop header's facts in `env` (mirrors what range propagation
/// feeds the dependence driver). Falls back to invalidating the variable
/// when the bounds cannot be un-lowered.
fn assume_header(l: &RLoop, image: &Image, env: &mut RangeEnv) {
    let var = &image.scalar_names[l.var];
    let init = unlower(&l.init, image);
    let limit = unlower(&l.limit, image);
    let step = l.step.as_ref().map(|s| unlower(s, image));
    match (init, limit, step) {
        (Some(init), Some(limit), None) => {
            assume_loop_header(env, var, &init, &limit, None);
        }
        (Some(init), Some(limit), Some(Some(step))) => {
            assume_loop_header(env, var, &init, &limit, Some(&step));
        }
        _ => env.invalidate(var),
    }
}

/// One array access inside the checked loop's body.
struct ArrAccess {
    write: bool,
    /// Un-lowered per-dimension subscripts (`None`: contains something
    /// outside the symbolic fragment — intrinsics, reals — so every pair
    /// involving this access is unprovable).
    subs: Option<Vec<Expr>>,
    /// Nested loops enclosing the access, outermost first (`None`: a
    /// bound or step could not be modeled).
    inner: Option<Vec<InnerLoop>>,
}

/// Everything the body of one checked loop touches.
#[derive(Default)]
struct BodyAccesses {
    scalar_reads: BTreeSet<usize>,
    scalar_writes: BTreeSet<usize>,
    /// Control variables: the checked loop's own var plus every nested
    /// loop's var (per-iteration state, invisible to the oracle).
    control: BTreeSet<usize>,
    /// (array slot, access) pairs in body order.
    arrays: Vec<(usize, ArrAccess)>,
}

fn check_parallel_loop(
    l: &RLoop,
    image: &Image,
    env: &RangeEnv,
    props: &BTreeMap<String, ArrayProps>,
) -> LoopRace {
    let mut acc = BodyAccesses::default();
    acc.control.insert(l.var);
    collect(&l.body, image, &mut Vec::new(), &mut Defs::default(), true, &mut acc);

    let name = |slot: usize| image.scalar_names[slot].clone();
    let covered_scalars: BTreeSet<usize> = l
        .par
        .private_scalars
        .iter()
        .chain(l.par.copy_out_scalars.iter())
        .copied()
        .chain(l.par.reductions.iter().filter_map(|r| match r.target {
            RRef::Scalar(s) => Some(s),
            RRef::Array(_) => None,
        }))
        .collect();
    let covered_arrays: BTreeSet<usize> = l
        .par
        .private_arrays
        .iter()
        .chain(l.par.spec_arrays.iter())
        .copied()
        .chain(l.par.reductions.iter().filter_map(|r| match r.target {
            RRef::Array(a) => Some(a),
            RRef::Scalar(_) => None,
        }))
        .collect();

    let mut verdict = RaceVerdict::Clean;
    let mut detail = String::new();
    let flag = |v: RaceVerdict, why: String, verdict: &mut RaceVerdict, detail: &mut String| {
        if detail.is_empty() || (v == RaceVerdict::PotentialRace && *verdict != v) {
            *detail = why;
        }
        *verdict = verdict.worse(v);
    };

    // Scalars: every written slot must be covered or control state.
    for &slot in &acc.scalar_writes {
        if acc.control.contains(&slot) || covered_scalars.contains(&slot) {
            continue;
        }
        if acc.scalar_reads.contains(&slot) {
            flag(
                RaceVerdict::PotentialRace,
                format!(
                    "scalar `{}` is read and written across iterations with no \
                     privatization or reduction annotation",
                    name(slot)
                ),
                &mut verdict,
                &mut detail,
            );
        } else {
            flag(
                RaceVerdict::NeedsPrivatization,
                format!(
                    "scalar `{}` is written every iteration with no privatization \
                     (cross-iteration output dependence)",
                    name(slot)
                ),
                &mut verdict,
                &mut detail,
            );
        }
    }

    // Arrays: uncovered writes must be proven iteration-disjoint against
    // every access (including themselves) of the same array.
    let step = l
        .step
        .as_ref()
        .map(|s| unlower(s, image).and_then(|e| e.simplified().as_int()))
        .unwrap_or(Some(1));
    let written: BTreeSet<usize> =
        acc.arrays.iter().filter(|(_, a)| a.write).map(|(slot, _)| *slot).collect();
    // A subscript mentioning a body-written scalar (other than control
    // variables) is not iteration-invariant; the range test would treat
    // it as a fixed symbol, so such accesses must abstain.
    let varying: BTreeSet<String> = acc
        .scalar_writes
        .iter()
        .filter(|s| !acc.control.contains(s))
        .map(|&s| name(s))
        .collect();
    let written_names: BTreeSet<String> =
        written.iter().map(|&s| image.arrays[s].name.clone()).collect();
    for &slot in &written {
        if covered_arrays.contains(&slot) {
            continue;
        }
        let arr = &image.arrays[slot].name;
        let accesses: Vec<&ArrAccess> =
            acc.arrays.iter().filter(|(s, _)| *s == slot).map(|(_, a)| a).collect();
        let has_reads = accesses.iter().any(|a| !a.write);
        let proven = step.is_some_and(|step| {
            all_pairs_disjoint(l, image, &accesses, step, &varying, env)
                || disjoint_via_props(
                    l, image, &accesses, step, &varying, env, props, &written_names,
                )
        });
        if !proven {
            if has_reads {
                flag(
                    RaceVerdict::PotentialRace,
                    format!(
                        "array `{arr}` is read and written without coverage and \
                         iteration-disjointness of its subscripts could not be proven"
                    ),
                    &mut verdict,
                    &mut detail,
                );
            } else {
                flag(
                    RaceVerdict::NeedsPrivatization,
                    format!(
                        "array `{arr}` is written without coverage and write \
                         disjointness could not be proven (output dependence at worst)"
                    ),
                    &mut verdict,
                    &mut detail,
                );
            }
        }
    }

    if verdict == RaceVerdict::Clean {
        detail = "all cross-iteration-visible writes covered or proven disjoint".into();
    }
    LoopRace { loop_id: l.loop_id, label: l.label.clone(), verdict, detail }
}

/// Prove every (write, access) pair of one array iteration-disjoint at
/// the checked loop via the range test.
fn all_pairs_disjoint(
    l: &RLoop,
    image: &Image,
    accesses: &[&ArrAccess],
    step: i64,
    varying: &BTreeSet<String>,
    env: &RangeEnv,
) -> bool {
    let var = image.scalar_names[l.var].clone();
    let (Some(lo), Some(hi)) = (
        unlower(&l.init, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Exact)),
        unlower(&l.limit, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Exact)),
    ) else {
        return false;
    };
    let self_loop = InnerLoop { var: var.clone(), lo, hi, step };
    let stats = DdStats::new();
    let spec_of = |a: &ArrAccess| -> Option<RefSpec> {
        let subs = a.subs.as_ref()?;
        let inner = a.inner.as_ref()?;
        let mut polys = Vec::with_capacity(subs.len());
        for e in subs {
            if varying.iter().any(|v| expr_mentions(e, v)) {
                return None;
            }
            polys.push(Poly::from_expr(e, DivPolicy::Exact)?);
        }
        for il in inner {
            if varying.contains(&il.var) {
                return None;
            }
        }
        Some(RefSpec { subs: polys, inner: inner.clone() })
    };
    let specs: Option<Vec<RefSpec>> = accesses.iter().map(|a| spec_of(a)).collect();
    let Some(specs) = specs else { return false };
    for (i, a) in accesses.iter().enumerate() {
        for (j, b) in accesses.iter().enumerate() {
            if j < i || (!a.write && !b.write) {
                continue;
            }
            if specs[i].subs.len() != specs[j].subs.len() {
                return false;
            }
            if !no_carried_dependence(
                &specs[i], &specs[j], &var, step, &self_loop, env, &stats, true,
            ) {
                return false;
            }
        }
    }
    true
}

/// Fallback for subscripted subscripts the range test abstains on: prove
/// the pairs disjoint from independently re-derived index-array
/// properties (`A(IDX(I))` with `IDX` injective over a domain containing
/// the argument's image). Arrays written inside the checked loop answer
/// no properties — their fill-time facts would be stale mid-loop.
#[allow(clippy::too_many_arguments)]
fn disjoint_via_props(
    l: &RLoop,
    image: &Image,
    accesses: &[&ArrAccess],
    step: i64,
    varying: &BTreeSet<String>,
    env: &RangeEnv,
    props: &BTreeMap<String, ArrayProps>,
    written_names: &BTreeSet<String>,
) -> bool {
    let var = image.scalar_names[l.var].clone();
    let (Some(lo), Some(hi)) = (
        unlower(&l.init, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Exact)),
        unlower(&l.limit, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Exact)),
    ) else {
        return false;
    };
    let self_loop = InnerLoop { var, lo, hi, step };
    let mut recs = Vec::with_capacity(accesses.len());
    for a in accesses {
        let (Some(subs), Some(inner)) = (a.subs.as_ref(), a.inner.as_ref()) else {
            return false;
        };
        recs.push(PropAccess {
            write: a.write,
            subs,
            ctx_vars: inner.iter().map(|il| il.var.clone()).collect(),
        });
    }
    let lookup = |n: &str| {
        if written_names.contains(n) {
            None
        } else {
            props.get(n).cloned()
        }
    };
    let stats = DdStats::new();
    idxprop::pairs_disjoint_via_props(&recs, &self_loop, varying, env, &lookup, &stats)
}

/// In-iteration scalar reaching definitions, mirroring the dependence
/// driver's `resolve_scalar_subscripts`: a subscript mentioning `X` where
/// the body opens with an unconditional `X = f(I)` is analyzed with `f(I)`
/// substituted in. Only *top-level, unconditional* definitions whose RHS
/// reads no array qualify; any deeper or self-referential write kills the
/// definition (it no longer dominates later uses).
#[derive(Default)]
struct Defs(std::collections::BTreeMap<usize, Expr>);

impl Defs {
    fn resolve(&self, e: &Expr, image: &Image) -> Expr {
        let mut cur = e.clone();
        for _ in 0..2 {
            let mut changed = false;
            for (&slot, rhs) in &self.0 {
                let name = &image.scalar_names[slot];
                if expr_mentions(&cur, name) {
                    cur = cur.substitute_var(name, rhs);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        cur
    }
}

/// Collect every access in `code`, carrying the chain of nested loops
/// (`inner`) enclosing the current position. `top` is true only for the
/// checked loop's own statement list (where a definition dominates
/// everything after it).
fn collect(
    code: &[RStmt],
    image: &Image,
    inner: &mut Vec<Option<InnerLoop>>,
    defs: &mut Defs,
    top: bool,
    acc: &mut BodyAccesses,
) {
    for s in code {
        match s {
            RStmt::AssignS(slot, rhs) => {
                acc.scalar_writes.insert(*slot);
                collect_expr(rhs, image, inner, defs, acc);
                let dominating_def = top
                    && unlower(rhs, image).is_some_and(|e| {
                        !expr_has_index(&e) && !expr_mentions(&e, &image.scalar_names[*slot])
                    });
                if dominating_def {
                    defs.0.insert(*slot, unlower(rhs, image).unwrap());
                } else {
                    defs.0.remove(slot);
                }
            }
            RStmt::AssignE(slot, subs, rhs) => {
                for e in subs {
                    collect_expr(e, image, inner, defs, acc);
                }
                collect_expr(rhs, image, inner, defs, acc);
                acc.arrays.push((*slot, arr_access(true, subs, image, inner, defs)));
            }
            RStmt::Do(d) => {
                acc.control.insert(d.var);
                acc.scalar_writes.insert(d.var);
                defs.0.remove(&d.var);
                collect_expr(&d.init, image, inner, defs, acc);
                collect_expr(&d.limit, image, inner, defs, acc);
                if let Some(st) = &d.step {
                    collect_expr(st, image, inner, defs, acc);
                }
                inner.push(inner_loop_of(d, image));
                collect(&d.body, image, inner, defs, false, acc);
                inner.pop();
            }
            RStmt::If(arms, else_body) => {
                for (cond, body) in arms {
                    collect_expr(cond, image, inner, defs, acc);
                    collect(body, image, inner, defs, false, acc);
                }
                collect(else_body, image, inner, defs, false, acc);
            }
            RStmt::Print(items) => {
                for e in items {
                    collect_expr(e, image, inner, defs, acc);
                }
            }
            RStmt::Stop => {}
        }
    }
}

/// Model a nested loop for the range test; `None` when a bound or step
/// is outside the symbolic fragment.
fn inner_loop_of(d: &RLoop, image: &Image) -> Option<InnerLoop> {
    let lo = unlower(&d.init, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Exact))?;
    let hi = unlower(&d.limit, image).and_then(|e| Poly::from_expr(&e, DivPolicy::Exact))?;
    let step = match &d.step {
        None => 1,
        Some(s) => unlower(s, image).and_then(|e| e.simplified().as_int())?,
    };
    Some(InnerLoop { var: image.scalar_names[d.var].clone(), lo, hi, step })
}

fn arr_access(
    write: bool,
    subs: &[RExpr],
    image: &Image,
    inner: &[Option<InnerLoop>],
    defs: &Defs,
) -> ArrAccess {
    ArrAccess {
        write,
        subs: subs
            .iter()
            .map(|e| unlower(e, image).map(|e| defs.resolve(&e, image).simplified()))
            .collect(),
        inner: inner.iter().cloned().collect(),
    }
}

fn collect_expr(
    e: &RExpr,
    image: &Image,
    inner: &[Option<InnerLoop>],
    defs: &Defs,
    acc: &mut BodyAccesses,
) {
    match e {
        RExpr::Load(slot) => {
            acc.scalar_reads.insert(*slot);
        }
        RExpr::Elem(slot, subs) => {
            for s in subs {
                collect_expr(s, image, inner, defs, acc);
            }
            acc.arrays.push((*slot, arr_access(false, subs, image, inner, defs)));
        }
        RExpr::Un(_, a) => collect_expr(a, image, inner, defs, acc),
        RExpr::Bin(_, a, b) => {
            collect_expr(a, image, inner, defs, acc);
            collect_expr(b, image, inner, defs, acc);
        }
        RExpr::Intrin(_, args) => {
            for a in args {
                collect_expr(a, image, inner, defs, acc);
            }
        }
        RExpr::I(_) | RExpr::R(_) | RExpr::B(_) | RExpr::Str(_) => {}
    }
}

/// Does `e` contain any array element reference?
fn expr_has_index(e: &Expr) -> bool {
    let mut found = false;
    e.for_each(&mut |n| {
        if matches!(n, Expr::Index { .. }) {
            found = true;
        }
    });
    found
}

/// Does `e` reference the scalar variable `var` anywhere (subscripts
/// included)?
fn expr_mentions(e: &Expr, var: &str) -> bool {
    let mut found = false;
    e.for_each(&mut |n| {
        if let Expr::Var(v) = n {
            if v == var {
                found = true;
            }
        }
    });
    found
}

/// Un-lower a lowered expression back to source-level [`Expr`] form so
/// the symbolic machinery can consume it. Intrinsics and non-integer
/// literals fall outside the fragment (`None`).
fn unlower(e: &RExpr, image: &Image) -> Option<Expr> {
    Some(match e {
        RExpr::I(v) => Expr::Int(*v),
        RExpr::Load(slot) => Expr::Var(image.scalar_names[*slot].clone()),
        RExpr::Elem(slot, subs) => Expr::Index {
            array: image.arrays[*slot].name.clone(),
            subs: subs.iter().map(|s| unlower(s, image)).collect::<Option<Vec<_>>>()?,
        },
        RExpr::Un(UnOp::Neg, a) => Expr::Un { op: UnOp::Neg, arg: Box::new(unlower(a, image)?) },
        RExpr::Bin(op, a, b) => Expr::Bin {
            op: *op,
            lhs: Box::new(unlower(a, image)?),
            rhs: Box::new(unlower(b, image)?),
        },
        RExpr::R(_) | RExpr::B(_) | RExpr::Str(_) | RExpr::Un(_, _) | RExpr::Intrin(_, _) => {
            return None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_core::{compile, PassOptions};

    fn race_of(src: &str) -> RaceReport {
        let mut p = polaris_ir::parse(src).unwrap();
        compile(&mut p, &PassOptions::polaris()).unwrap();
        analyze(&p).unwrap()
    }

    /// Parse only — hand `!$polaris` annotations survive (the compile
    /// pipeline would overwrite them with its own analysis).
    fn race_raw(src: &str) -> RaceReport {
        let p = polaris_ir::parse(src).unwrap();
        analyze(&p).unwrap()
    }

    #[test]
    fn identity_doall_is_clean() {
        let r = race_of(
            "program t\nreal a(100)\ndo i = 1, 100\n  a(i) = 1.0\nend do\nprint *, a(1)\nend\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::Clean, "{}", r.loops[0].detail);
    }

    #[test]
    fn reduction_and_privatized_scalar_are_covered() {
        let r = race_of(
            "program t\nreal a(100), s\ns = 0.0\ndo i = 1, 100\n  t = a(i) * 2.0\n  s = s + t\nend do\nprint *, s\nend\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::Clean, "{}", r.loops[0].detail);
    }

    #[test]
    fn hand_annotated_uncovered_scalar_is_flagged() {
        // A hand directive claims DOALL while `s` carries a recurrence:
        // the detector must not trust the claim.
        let r = race_raw(
            "program t\nreal a(100), s\ns = 0.0\n!$polaris doall\ndo i = 1, 100\n  s = s + a(i)\nend do\nprint *, s\nend\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::PotentialRace, "{}", r.loops[0].detail);
        assert!(r.loops[0].detail.contains("`S`"), "{}", r.loops[0].detail);
    }

    #[test]
    fn hand_annotated_write_only_scalar_needs_privatization() {
        let r = race_raw(
            "program t\nreal a(100)\n!$polaris doall\ndo i = 1, 100\n  t = 1.0\n  a(i) = t\nend do\nprint *, a(1)\nend\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        // T is written then read — read-covered → potential race unless
        // annotated; a write-never-read scalar is rarer, so accept either
        // non-clean verdict here but require non-clean.
        assert_ne!(r.loops[0].verdict, RaceVerdict::Clean, "{}", r.loops[0].detail);
    }

    #[test]
    fn hand_annotated_overlapping_array_write_is_flagged() {
        let r = race_raw(
            "program t\nreal a(101)\n!$polaris doall\ndo i = 1, 100\n  a(i) = a(i + 1)\nend do\nprint *, a(1)\nend\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::PotentialRace, "{}", r.loops[0].detail);
        assert!(r.loops[0].detail.contains("`A`"), "{}", r.loops[0].detail);
    }

    #[test]
    fn hand_annotated_write_only_array_overlap_needs_privatization() {
        // Every iteration writes the same element, never reads it inside
        // the loop: output dependence only.
        let r = race_raw(
            "program t\nreal a(100)\n!$polaris doall\ndo i = 1, 100\n  a(1) = 0.0\nend do\nprint *, a(1)\nend\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::NeedsPrivatization, "{}", r.loops[0].detail);
    }

    #[test]
    fn scatter_through_injective_fill_is_clean() {
        // The compiler proves the scatter PARALLEL from IDX's inferred
        // injectivity; the detector must reach the same verdict from its
        // own independent derivation of the property.
        let r = race_of(
            "program t\n\
             integer idx(100)\n\
             real a(100), b(100)\n\
             do i = 1, 100\n\
             \x20 idx(i) = i\n\
             end do\n\
             do i = 1, 100\n\
             \x20 a(idx(i)) = b(i) + 1.0\n\
             end do\n\
             print *, a(1)\n\
             end\n",
        );
        assert_eq!(r.parallel_claims(), 2, "{:?}", r.loops);
        for l in &r.loops {
            assert_eq!(l.verdict, RaceVerdict::Clean, "{}: {}", l.label, l.detail);
        }
    }

    #[test]
    fn hand_annotated_injective_scatter_is_clean_without_compile() {
        // No compile pipeline ran, so Symbol.props is empty: the verdict
        // can only come from the detector's own inference over the IR.
        let r = race_raw(
            "program t\n\
             integer idx(100)\n\
             real a(100), b(100)\n\
             do i = 1, 100\n\
             \x20 idx(i) = i\n\
             end do\n\
             !$polaris doall\n\
             do i = 1, 100\n\
             \x20 a(idx(i)) = b(i) + 1.0\n\
             end do\n\
             print *, a(1)\n\
             end\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::Clean, "{}", r.loops[0].detail);
    }

    #[test]
    fn hand_annotated_non_injective_scatter_stays_flagged() {
        // MOD fills are bounded but not injective: the property rule must
        // refuse, and the hand DOALL claim must be exposed as a race.
        let r = race_raw(
            "program t\n\
             integer bin(100)\n\
             real h(8)\n\
             do i = 1, 100\n\
             \x20 bin(i) = mod(i, 8) + 1\n\
             end do\n\
             !$polaris doall\n\
             do i = 1, 100\n\
             \x20 h(bin(i)) = h(bin(i)) + 1.0\n\
             end do\n\
             print *, h(1)\n\
             end\n",
        );
        assert_eq!(r.parallel_claims(), 1, "{:?}", r.loops);
        assert_eq!(r.loops[0].verdict, RaceVerdict::PotentialRace, "{}", r.loops[0].detail);
        assert!(r.loops[0].detail.contains("`H`"), "{}", r.loops[0].detail);
    }

    #[test]
    fn trfd_nest_is_clean_from_reseeded_facts() {
        // The paper's worked example: the closed-form subscript needs the
        // `!$assert (n >= 1)` fact plus the loop headers, all re-derived
        // here from scratch.
        let r = race_of(
            "program trfd\n\
             real a(100000)\n\
             integer x, x0\n\
             !$assert (n >= 1)\n\
             x0 = 0\n\
             do i = 0, m - 1\n\
             \x20 x = x0\n\
             \x20 do j = 0, n - 1\n\
             \x20   do k = 0, j - 1\n\
             \x20     x = x + 1\n\
             \x20     a(x) = 1.0\n\
             \x20   end do\n\
             \x20 end do\n\
             \x20 x0 = x0 + (n**2 + n)/2\n\
             end do\n\
             end\n",
        );
        assert!(r.parallel_claims() >= 1, "{:?}", r.loops);
        for l in &r.loops {
            assert_eq!(l.verdict, RaceVerdict::Clean, "{}: {}", l.label, l.detail);
        }
    }
}

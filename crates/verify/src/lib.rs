//! # polaris-verify — independent checking of the restructurer's output
//!
//! Three cooperating analyses, all *independent re-derivations* rather
//! than trust in the passes that produced the result:
//!
//! 1. **Inter-pass IR verifier** — the shared invariant set in
//!    `polaris_ir::validate` is run by the pipeline after every stage;
//!    this crate surfaces its totals ([`VerifyReport`]) and re-runs the
//!    full check over the final program.
//! 2. **Static race detector** ([`race`]) — every PARALLEL claim in the
//!    lowered machine plan is re-checked for cross-iteration conflicts
//!    from scratch: annotation coverage for scalars, range-test
//!    subscript disjointness for arrays.
//! 3. **F-Mini lint suite** ([`lint`]) — programmer-facing static
//!    diagnostics with `line:col` spans, rendered as JSON.
//!
//! [`agreement`] cross-checks the static race verdicts against the
//! runtime dependence oracle (`polaris_machine::audit`): a static
//! `potential-race` on a loop the oracle saw run clean is a *precision
//! miss* (the detector was conservative); a static `clean` on a loop
//! with observed violations is a *soundness failure* — the serious case,
//! counted separately and required to be zero by the conformance suite.

pub mod lint;
pub mod nest;
pub mod race;

pub use lint::{lint_program, Finding, LintReport, Severity};
pub use nest::recheck_certs;
pub use race::{analyze, check_image, LoopRace, RaceReport, RaceVerdict};

use polaris_core::{CompileReport, StageOutcome};
use polaris_ir::cert::CertCheck;
use polaris_ir::Program;
use polaris_obs::{Counter, Recorder};
use polaris_runtime::verdict::{ClaimKind, OracleReport};

/// The prefix the pipeline puts on rollback reasons that originate from
/// the inter-pass verifier (as opposed to a stage panicking or erroring
/// on its own).
pub const VERIFIER_ROLLBACK_PREFIX: &str = "post-stage validation failed";

/// Combined verification outcome for one compiled program.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Invariant checks the pipeline ran at stage boundaries.
    pub invariants_checked: u64,
    /// Violations those checks caught (each rolled its stage back).
    pub invariant_violations: u64,
    /// Stages rolled back *because of* a verifier violation, in run order.
    pub verifier_rollbacks: Vec<&'static str>,
    /// Violations from re-running the full invariant set over the final
    /// program. Must be empty: the pipeline never lets ill-formed IR
    /// escape, so anything here is a verifier or pipeline bug.
    pub final_violations: Vec<String>,
    /// Static race verdicts over the lowered plan; `None` when the
    /// program cannot be lowered (e.g. non-constant dimensions), which
    /// leaves nothing for the machine to execute either.
    pub race: Option<RaceReport>,
    /// Independent re-derivation of every nest-transformation
    /// [`polaris_ir::LegalityCert`] from the final IR (see [`nest`]).
    /// A rejected check means a pass applied a transformation its own
    /// evidence does not justify — as serious as an invariant violation.
    pub cert_checks: Vec<CertCheck>,
}

impl VerifyReport {
    /// No invariant ever fired, the final program validates, and every
    /// transformation certificate was independently re-derived.
    pub fn ok(&self) -> bool {
        self.invariant_violations == 0
            && self.final_violations.is_empty()
            && self.certs_ok()
    }

    /// Every nest-transformation certificate re-proved from the IR.
    pub fn certs_ok(&self) -> bool {
        self.cert_checks.iter().all(|c| c.accepted)
    }

    /// Cert checks the re-prover rejected.
    pub fn rejected_certs(&self) -> Vec<&CertCheck> {
        self.cert_checks.iter().filter(|c| !c.accepted).collect()
    }

    /// Mirror the verdict counts into typed observability counters.
    pub fn record(&self, rec: &Recorder) {
        if let Some(race) = &self.race {
            rec.count(Counter::VerifyRaceClean, race.count(RaceVerdict::Clean) as u64);
            rec.count(
                Counter::VerifyRaceNeedsPrivatization,
                race.count(RaceVerdict::NeedsPrivatization) as u64,
            );
            rec.count(
                Counter::VerifyRacePotentialRace,
                race.count(RaceVerdict::PotentialRace) as u64,
            );
        }
    }

    /// Machine-readable JSON document, schema `polaris-verify/v1`.
    /// `agreement` adds the static-vs-oracle cross-check block when the
    /// runtime oracle also ran.
    pub fn to_json(&self, agreement: Option<&Agreement>) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"polaris-verify/v1\",\n");
        s.push_str("  \"invariants\": {\n");
        s.push_str(&format!("    \"checked\": {},\n", self.invariants_checked));
        s.push_str(&format!("    \"violations\": {},\n", self.invariant_violations));
        s.push_str(&format!(
            "    \"verifier_rollbacks\": [{}],\n",
            self.verifier_rollbacks
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "    \"final_violations\": [{}]\n",
            self.final_violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  },\n");
        s.push_str("  \"certs\": {\n");
        s.push_str(&format!("    \"checked\": {},\n", self.cert_checks.len()));
        s.push_str(&format!("    \"rejected\": {},\n", self.rejected_certs().len()));
        s.push_str("    \"checks\": [\n");
        for (i, c) in self.cert_checks.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"stage\": \"{}\", \"unit\": \"{}\", \"label\": \"{}\", \"accepted\": {}, \"reason\": \"{}\"}}{}\n",
                c.stage,
                json_escape(&c.unit),
                json_escape(&c.label),
                c.accepted,
                json_escape(&c.reason),
                if i + 1 == self.cert_checks.len() { "" } else { "," }
            ));
        }
        s.push_str("    ]\n");
        s.push_str("  },\n");
        match &self.race {
            None => s.push_str("  \"race\": null"),
            Some(race) => {
                s.push_str("  \"race\": {\n");
                s.push_str(&format!(
                    "    \"parallel_claims\": {},\n",
                    race.parallel_claims()
                ));
                s.push_str(&format!(
                    "    \"clean\": {},\n",
                    race.count(RaceVerdict::Clean)
                ));
                s.push_str(&format!(
                    "    \"needs_privatization\": {},\n",
                    race.count(RaceVerdict::NeedsPrivatization)
                ));
                s.push_str(&format!(
                    "    \"potential_race\": {},\n",
                    race.count(RaceVerdict::PotentialRace)
                ));
                s.push_str("    \"loops\": [\n");
                for (i, l) in race.loops.iter().enumerate() {
                    s.push_str(&format!(
                        "      {{\"label\": \"{}\", \"verdict\": \"{}\", \"detail\": \"{}\"}}{}\n",
                        json_escape(&l.label),
                        l.verdict.as_str(),
                        json_escape(&l.detail),
                        if i + 1 == race.loops.len() { "" } else { "," }
                    ));
                }
                s.push_str("    ]\n");
                s.push_str("  }");
            }
        }
        match agreement {
            None => s.push('\n'),
            Some(a) => {
                s.push_str(",\n");
                s.push_str("  \"agreement\": {\n");
                s.push_str(&format!("    \"compared\": {},\n", a.compared));
                s.push_str(&format!(
                    "    \"precision_misses\": [{}],\n",
                    a.precision_misses
                        .iter()
                        .map(|l| format!("\"{}\"", json_escape(l)))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                s.push_str(&format!(
                    "    \"soundness_failures\": [{}]\n",
                    a.soundness_failures
                        .iter()
                        .map(|l| format!("\"{}\"", json_escape(l)))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                s.push_str("  }\n");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Verify a compiled program: collect the pipeline's inter-pass verifier
/// totals from `report`, re-run the full invariant set over the final
/// `program`, and run the static race detector over its lowered plan.
pub fn verify_compiled(program: &Program, report: &CompileReport) -> VerifyReport {
    let final_violations = polaris_ir::validate::check_program(program)
        .iter()
        .map(|v| v.to_string())
        .collect();
    let verifier_rollbacks = report
        .stages
        .iter()
        .filter(|s| match &s.outcome {
            StageOutcome::RolledBack { reason } => reason.starts_with(VERIFIER_ROLLBACK_PREFIX),
            _ => false,
        })
        .map(|s| s.name)
        .collect();
    VerifyReport {
        invariants_checked: report.verify.invariants_checked,
        invariant_violations: report.verify.violations,
        verifier_rollbacks,
        final_violations,
        race: race::analyze(program).ok(),
        cert_checks: nest::recheck_certs(program, report),
    }
}

/// Static-vs-dynamic cross-check of the race verdicts.
#[derive(Debug, Clone, Default)]
pub struct Agreement {
    /// PARALLEL claims present in both reports (joined on loop id).
    pub compared: usize,
    /// Labels where the static detector abstained (`needs-privatization`
    /// or `potential-race`) but the oracle observed a clean run: the
    /// detector was merely conservative.
    pub precision_misses: Vec<String>,
    /// Labels where the static detector said `clean` but the oracle
    /// observed a dependence violation: the detector (or the range test
    /// under it) is unsound for this loop. Must never happen.
    pub soundness_failures: Vec<String>,
}

impl Agreement {
    pub fn sound(&self) -> bool {
        self.soundness_failures.is_empty()
    }
}

/// Join the static race verdicts against the runtime oracle's observed
/// dependences, PARALLEL claims only (the oracle grades speculative and
/// serial loops on different axes the static detector does not model).
pub fn agreement(race: &RaceReport, oracle: &OracleReport) -> Agreement {
    let mut a = Agreement::default();
    for lv in &oracle.loops {
        if lv.claim != ClaimKind::Parallel {
            continue;
        }
        let Some(lr) = race.loops.iter().find(|r| r.loop_id == lv.loop_id) else {
            continue;
        };
        a.compared += 1;
        let observed_violation = !lv.violations.is_empty();
        match (lr.verdict, observed_violation) {
            (RaceVerdict::Clean, true) => a.soundness_failures.push(lv.label.clone()),
            (RaceVerdict::NeedsPrivatization | RaceVerdict::PotentialRace, false) => {
                a.precision_misses.push(lv.label.clone())
            }
            _ => {}
        }
    }
    a
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_ir::stmt::LoopId;
    use polaris_runtime::verdict::{DepKind, DepObservation, LoopVerdict, Violation};

    fn compiled(src: &str) -> (Program, CompileReport) {
        polaris_core::parse_and_compile(src, &polaris_core::PassOptions::polaris()).unwrap()
    }

    #[test]
    fn clean_program_verifies_with_race_report() {
        let (p, rep) = compiled(
            "program t\nreal a(100)\ndo i = 1, 100\n  a(i) = 1.0\nend do\nprint *, a(1)\nend\n",
        );
        let v = verify_compiled(&p, &rep);
        assert!(v.ok(), "{:?}", v.final_violations);
        assert!(v.invariants_checked > 0);
        assert!(v.verifier_rollbacks.is_empty());
        let race = v.race.as_ref().expect("lowerable program");
        assert_eq!(race.count(RaceVerdict::Clean), race.parallel_claims());
        let j = v.to_json(None);
        assert!(j.contains("\"schema\": \"polaris-verify/v1\""), "{j}");
        assert!(j.contains("\"parallel_claims\""), "{j}");
    }

    fn lv(id: u32, label: &str, violations: Vec<Violation>) -> LoopVerdict {
        LoopVerdict {
            loop_id: LoopId(id),
            label: label.into(),
            claim: ClaimKind::Parallel,
            serial_reason: None,
            invocations: 1,
            max_trip: 4,
            deps: Vec::new(),
            violations,
            completeness_miss: false,
            privatizable_miss: false,
        }
    }

    fn lr(id: u32, label: &str, verdict: RaceVerdict) -> LoopRace {
        LoopRace { loop_id: LoopId(id), label: label.into(), verdict, detail: String::new() }
    }

    fn violation(id: u32, label: &str) -> Violation {
        Violation {
            loop_id: LoopId(id),
            label: label.into(),
            dep: DepObservation {
                var: "A".into(),
                kind: DepKind::Flow,
                count: 1,
                src_iter: 0,
                dst_iter: 1,
                element: Some(0),
            },
            detail: "flow dependence".into(),
        }
    }

    #[test]
    fn agreement_classifies_misses_and_failures() {
        let race = RaceReport {
            loops: vec![
                lr(1, "do1", RaceVerdict::PotentialRace),
                lr(2, "do2", RaceVerdict::Clean),
                lr(3, "do3", RaceVerdict::Clean),
            ],
        };
        let oracle = OracleReport {
            loops: vec![
                lv(1, "do1", Vec::new()),
                lv(2, "do2", vec![violation(2, "do2")]),
                lv(3, "do3", Vec::new()),
            ],
        };
        let a = agreement(&race, &oracle);
        assert_eq!(a.compared, 3);
        assert_eq!(a.precision_misses, vec!["do1".to_string()]);
        assert_eq!(a.soundness_failures, vec!["do2".to_string()]);
        assert!(!a.sound());
        let j = VerifyReport::default().to_json(Some(&a));
        assert!(j.contains("\"soundness_failures\": [\"do2\"]"), "{j}");
    }

    #[test]
    fn agreement_on_real_program_has_no_soundness_failures() {
        let (p, rep) = compiled(
            "program t\nreal a(200), s\ns = 0.0\ndo i = 1, 100\n  a(i) = i * 1.0\nend do\n\
             do i = 1, 100\n  s = s + a(i)\nend do\nprint *, s\nend\n",
        );
        let v = verify_compiled(&p, &rep);
        let race = v.race.as_ref().unwrap();
        let oracle = polaris_machine::audit(&p, &rep).unwrap();
        let a = agreement(race, &oracle);
        assert!(a.compared >= 1);
        assert!(a.sound(), "{:?}", a.soundness_failures);
    }
}

//! Adversarial exercise of the inter-pass verifier: hand-corrupt the IR
//! *after* each of the pipeline's stages (duplicate `LoopId`, dangling
//! symbol, type-punned assignment) and assert that
//!
//! * the verifier catches the damage at that stage's boundary,
//! * the rollback is attributed to the right stage by name,
//! * the rollback reason names the violated invariant,
//! * the program that escapes the pipeline still validates, and
//! * [`polaris_verify::verify_compiled`] surfaces the whole story.

use polaris_core::{
    parse_and_compile, CorruptKind, FaultPlan, PassOptions, StageOutcome, STAGE_NAMES,
};
use polaris_verify::{verify_compiled, VERIFIER_ROLLBACK_PREFIX};

/// A program with work for every stage: a call to inline, constants to
/// fold, two loops (one reduction), a dead store.
const SOURCE: &str = "program t\n\
                      real v(1000)\n\
                      integer n\n\
                      parameter (n = 1000)\n\
                      s = 0.0\n\
                      t = 1.0\n\
                      t = 2.0\n\
                      call fill(v, n)\n\
                      do i = 1, n\n\
                      \x20 s = s + v(i) * t\n\
                      end do\n\
                      print *, s\n\
                      end\n\
                      subroutine fill(a, m)\n\
                      real a(m)\n\
                      integer m\n\
                      do i = 1, m\n\
                      \x20 a(i) = i * 2.0\n\
                      end do\n\
                      end\n";

/// The invariant each corruption kind must trip.
fn expected_invariant(kind: CorruptKind) -> &'static str {
    match kind {
        CorruptKind::DuplicateLoopId => "loop-id-provenance",
        CorruptKind::DanglingSymbol => "symbol-use",
        CorruptKind::TypePun => "type-agreement",
    }
}

#[test]
fn every_stage_and_corruption_kind_is_caught_and_attributed() {
    for kind in CorruptKind::ALL {
        for stage in STAGE_NAMES {
            let opts =
                PassOptions::polaris().with_faults(FaultPlan::corrupt_in(stage, kind));
            let (program, report) = parse_and_compile(SOURCE, &opts)
                .unwrap_or_else(|e| panic!("{kind:?} after `{stage}` aborted the compile: {e}"));

            // The corrupted stage — and only it — rolled back.
            assert_eq!(
                report.rolled_back_stages(),
                vec![stage],
                "{kind:?} after `{stage}`"
            );
            let sr = report.stage(stage).unwrap();
            let StageOutcome::RolledBack { reason } = &sr.outcome else {
                panic!("{kind:?} after `{stage}`: expected rollback, got {:?}", sr.outcome);
            };
            assert!(
                reason.starts_with(VERIFIER_ROLLBACK_PREFIX),
                "{kind:?} after `{stage}`: {reason}"
            );
            assert!(
                reason.contains(&format!("invariant `{}`", expected_invariant(kind))),
                "{kind:?} after `{stage}`: wrong invariant named: {reason}"
            );

            // The verifier's own accounting agrees.
            let v = verify_compiled(&program, &report);
            assert_eq!(v.verifier_rollbacks, vec![stage], "{kind:?} after `{stage}`");
            assert!(v.invariant_violations > 0);
            assert!(
                v.final_violations.is_empty(),
                "{kind:?} after `{stage}`: corrupt IR escaped: {:?}",
                v.final_violations
            );
        }
    }
}

#[test]
fn clean_compile_reports_no_verifier_activity() {
    let (program, report) =
        parse_and_compile(SOURCE, &PassOptions::polaris()).unwrap();
    let v = verify_compiled(&program, &report);
    assert!(v.ok(), "{:?}", v.final_violations);
    assert!(v.verifier_rollbacks.is_empty());
    assert_eq!(v.invariant_violations, 0);
    assert_eq!(
        v.invariants_checked,
        (STAGE_NAMES.len() * polaris_ir::validate::INVARIANTS.len()) as u64
    );
}

#[test]
fn corrupted_compile_still_yields_clean_race_verdicts() {
    // A rollback degrades the compile but what escapes must still be a
    // sound program: the static race detector must find no uncovered
    // PARALLEL claim in it.
    let opts = PassOptions::polaris()
        .with_faults(FaultPlan::corrupt_in("induction", CorruptKind::DuplicateLoopId));
    let (program, report) = parse_and_compile(SOURCE, &opts).unwrap();
    let v = verify_compiled(&program, &report);
    if let Some(race) = &v.race {
        assert_eq!(
            race.count(polaris_verify::RaceVerdict::Clean),
            race.parallel_claims(),
            "{:?}",
            race.loops
        );
    }
}

//! Symbols and symbol tables.

use crate::expr::Expr;
use crate::types::DataType;
use std::collections::BTreeMap;

/// One dimension of an array declaration: `lo:hi` (F-Mini default `1:hi`).
///
/// Bounds may be symbolic expressions (`A(N, M)`), which is precisely what
/// forces the symbolic region analysis of §3.4.
#[derive(Debug, Clone, PartialEq)]
pub struct Dim {
    pub lo: Expr,
    pub hi: Expr,
}

impl Dim {
    pub fn upto(hi: Expr) -> Dim {
        Dim { lo: Expr::Int(1), hi }
    }

    /// Constant extent if both bounds are integer literals.
    pub fn const_extent(&self) -> Option<i64> {
        let lo = self.lo.simplified().as_int()?;
        let hi = self.hi.simplified().as_int()?;
        Some((hi - lo + 1).max(0))
    }
}

/// Statically proven facts about the *contents* of an integer index
/// array, in the spirit of Bhosale & Eigenmann's subscripted-subscript
/// analysis: a small property lattice (monotone / strictly monotone /
/// injective / permutation / value-bounded) over the subscript domain a
/// defining fill loop covered. Computed by `polaris-core`'s `idxprop`
/// stage and consumed by the dependence framework, which can then prove
/// `A(IDX(I))` scatters parallel when the property suffices.
///
/// Every `true` flag is a *proof obligation met*, never a heuristic:
/// facts hold only for subscripts within `[domain_lo, domain_hi]` and
/// only while the array is not rewritten.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayProps {
    /// Entries never decrease with the subscript (non-strict).
    pub monotone_inc: bool,
    /// Entries never increase with the subscript (non-strict).
    pub monotone_dec: bool,
    /// The monotone direction above holds *strictly* (no equal
    /// neighbours) — which implies `injective`.
    pub strict: bool,
    /// Distinct subscripts in the domain hold distinct values.
    pub injective: bool,
    /// The stored values form a contiguous integer range (an affine
    /// relabeling of the domain — `IDX(I)=I`-style fills).
    pub permutation: bool,
    /// Proven bounds on every stored value, when derivable.
    pub value_lo: Option<Expr>,
    pub value_hi: Option<Expr>,
    /// Subscript range the defining fill covered; the facts above say
    /// nothing about elements outside it.
    pub domain_lo: Expr,
    pub domain_hi: Expr,
}

impl ArrayProps {
    /// Fresh lattice bottom over a domain: nothing proven yet.
    pub fn over(domain_lo: Expr, domain_hi: Expr) -> ArrayProps {
        ArrayProps {
            monotone_inc: false,
            monotone_dec: false,
            strict: false,
            injective: false,
            permutation: false,
            value_lo: None,
            value_hi: None,
            domain_lo,
            domain_hi,
        }
    }

    /// True if any property beyond the bare domain was proven.
    pub fn any(&self) -> bool {
        self.monotone_inc
            || self.monotone_dec
            || self.injective
            || self.permutation
            || self.value_lo.is_some()
            || self.value_hi.is_some()
    }

    /// Short human-readable fact list for diagnostics
    /// (e.g. `strictly-increasing injective permutation`).
    pub fn facts(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        match (self.monotone_inc, self.monotone_dec, self.strict) {
            (true, _, true) => out.push("strictly-increasing"),
            (true, _, false) => out.push("non-decreasing"),
            (_, true, true) => out.push("strictly-decreasing"),
            (_, true, false) => out.push("non-increasing"),
            _ => {}
        }
        if self.injective {
            out.push("injective");
        }
        if self.permutation {
            out.push("permutation");
        }
        if self.value_lo.is_some() || self.value_hi.is_some() {
            out.push("bounded");
        }
        out
    }
}

/// What kind of object a symbol denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum SymKind {
    /// A scalar variable.
    Scalar,
    /// An array with its declared dimensions.
    Array(Vec<Dim>),
    /// A named constant with its defining expression (`PARAMETER`).
    Parameter(Expr),
    /// A subroutine/function name visible in this unit.
    External,
}

/// A declared (or implicitly typed) symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    pub name: String,
    pub ty: DataType,
    pub kind: SymKind,
    /// Name of the COMMON block this symbol lives in, if any.
    pub common: Option<String>,
    /// True if the symbol is a dummy argument of its unit.
    pub is_arg: bool,
    /// Proven index-array content properties (set by the `idxprop`
    /// stage; `None` until then and for non-index arrays).
    pub props: Option<ArrayProps>,
}

impl Symbol {
    pub fn scalar(name: impl Into<String>, ty: DataType) -> Symbol {
        Symbol {
            name: name.into(),
            ty,
            kind: SymKind::Scalar,
            common: None,
            is_arg: false,
            props: None,
        }
    }

    pub fn array(name: impl Into<String>, ty: DataType, dims: Vec<Dim>) -> Symbol {
        Symbol {
            name: name.into(),
            ty,
            kind: SymKind::Array(dims),
            common: None,
            is_arg: false,
            props: None,
        }
    }

    pub fn parameter(name: impl Into<String>, ty: DataType, value: Expr) -> Symbol {
        Symbol {
            name: name.into(),
            ty,
            kind: SymKind::Parameter(value),
            common: None,
            is_arg: false,
            props: None,
        }
    }

    pub fn is_array(&self) -> bool {
        matches!(self.kind, SymKind::Array(_))
    }

    pub fn dims(&self) -> &[Dim] {
        match &self.kind {
            SymKind::Array(d) => d,
            _ => &[],
        }
    }

    /// Rank (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims().len()
    }
}

/// Per-unit symbol table.
///
/// Uses a `BTreeMap` so iteration (and therefore unparsing, pass output and
/// test expectations) is deterministic — the HPC-guide equivalent of
/// avoiding hash-iteration nondeterminism in a compiler.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SymbolTable {
    map: BTreeMap<String, Symbol>,
}

impl SymbolTable {
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Insert or replace a symbol (name is upper-cased).
    pub fn insert(&mut self, mut sym: Symbol) {
        sym.name = sym.name.to_ascii_uppercase();
        self.map.insert(sym.name.clone(), sym);
    }

    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.map.get(&name.to_ascii_uppercase())
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut Symbol> {
        self.map.get_mut(&name.to_ascii_uppercase())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    pub fn remove(&mut self, name: &str) -> Option<Symbol> {
        self.map.remove(&name.to_ascii_uppercase())
    }

    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.map.values()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The declared or implicit type of `name` (Fortran implicit rules
    /// apply to undeclared identifiers).
    pub fn type_of(&self, name: &str) -> DataType {
        match self.get(name) {
            Some(s) => s.ty,
            None => DataType::implicit_for(name),
        }
    }

    /// True if `name` names an array in this table.
    pub fn is_array(&self, name: &str) -> bool {
        self.get(name).map(|s| s.is_array()).unwrap_or(false)
    }

    /// The `PARAMETER` value of `name`, if it is one.
    pub fn parameter_value(&self, name: &str) -> Option<&Expr> {
        match &self.get(name)?.kind {
            SymKind::Parameter(e) => Some(e),
            _ => None,
        }
    }

    /// Generate a name not currently in the table, of the form
    /// `{base}_{k}` — used by the inliner's renaming and by pass-created
    /// temporaries.
    pub fn unique_name(&self, base: &str) -> String {
        let base = base.to_ascii_uppercase();
        if !self.contains(&base) {
            return base;
        }
        for k in 1.. {
            let cand = format!("{base}_{k}");
            if !self.contains(&cand) {
                return cand;
            }
        }
        unreachable!()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_normalizes_case_and_lookup_is_insensitive() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::scalar("foo", DataType::Real));
        assert!(t.contains("FOO"));
        assert!(t.contains("foo"));
        assert_eq!(t.get("Foo").unwrap().name, "FOO");
    }

    #[test]
    fn type_of_falls_back_to_implicit() {
        let t = SymbolTable::new();
        assert_eq!(t.type_of("I"), DataType::Integer);
        assert_eq!(t.type_of("X"), DataType::Real);
    }

    #[test]
    fn unique_name_skips_existing() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::scalar("K", DataType::Integer));
        t.insert(Symbol::scalar("K_1", DataType::Integer));
        assert_eq!(t.unique_name("K"), "K_2");
        assert_eq!(t.unique_name("Z"), "Z");
    }

    #[test]
    fn dims_and_rank() {
        let a = Symbol::array(
            "A",
            DataType::Real,
            vec![Dim::upto(Expr::int(10)), Dim::upto(Expr::var("N"))],
        );
        assert_eq!(a.rank(), 2);
        assert_eq!(a.dims()[0].const_extent(), Some(10));
        assert_eq!(a.dims()[1].const_extent(), None);
    }

    #[test]
    fn parameter_value_access() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::parameter("N", DataType::Integer, Expr::int(64)));
        assert_eq!(t.parameter_value("N"), Some(&Expr::int(64)));
        assert_eq!(t.parameter_value("M"), None);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = SymbolTable::new();
        for n in ["Z", "A", "M"] {
            t.insert(Symbol::scalar(n, DataType::Real));
        }
        let names: Vec<_> = t.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["A", "M", "Z"]);
    }
}

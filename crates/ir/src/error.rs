//! Error types shared by the lexer, parser and validators.

use std::fmt;

/// Result alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, CompileError>;

/// An error produced while lexing, parsing or validating F-Mini source.
///
/// Polaris reported internal inconsistencies through `p_assert`; in this
/// reproduction user-facing problems surface as `CompileError` values while
/// internal invariants use `debug_assert!`/`panic!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which stage produced the error.
    pub stage: Stage,
    /// 1-based source line, when known.
    pub line: Option<u32>,
    /// 1-based source column, when known.
    pub col: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

/// Frontend stage that produced a [`CompileError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Lex,
    Parse,
    Validate,
    /// Errors raised by transformation passes (e.g. the inliner refusing a
    /// nonconforming argument mapping).
    Transform,
}

impl CompileError {
    pub fn lex(line: u32, message: impl Into<String>) -> Self {
        CompileError { stage: Stage::Lex, line: Some(line), col: None, message: message.into() }
    }

    pub fn parse(line: u32, message: impl Into<String>) -> Self {
        CompileError { stage: Stage::Parse, line: Some(line), col: None, message: message.into() }
    }

    pub fn validate(message: impl Into<String>) -> Self {
        CompileError { stage: Stage::Validate, line: None, col: None, message: message.into() }
    }

    pub fn transform(message: impl Into<String>) -> Self {
        CompileError { stage: Stage::Transform, line: None, col: None, message: message.into() }
    }

    /// Attach a source line if none is recorded yet.
    pub fn with_line(mut self, line: u32) -> Self {
        self.line.get_or_insert(line);
        self
    }

    /// Attach a source column (builder style).
    pub fn at_col(mut self, col: u32) -> Self {
        self.col = Some(col);
        self
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Validate => "validate",
            Stage::Transform => "transform",
        };
        match (self.line, self.col) {
            (Some(line), Some(col)) => {
                write!(f, "{stage} error at line {line}, col {col}: {}", self.message)
            }
            (Some(line), None) => write!(f, "{stage} error at line {line}: {}", self.message),
            _ => write!(f, "{stage} error: {}", self.message),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_line() {
        let e = CompileError::parse(12, "expected END DO");
        assert_eq!(e.to_string(), "parse error at line 12: expected END DO");
        let e = CompileError::validate("duplicate unit MAIN");
        assert_eq!(e.to_string(), "validate error: duplicate unit MAIN");
    }

    #[test]
    fn with_line_does_not_overwrite() {
        let e = CompileError::parse(3, "x").with_line(9);
        assert_eq!(e.line, Some(3));
        let e = CompileError::validate("x").with_line(9);
        assert_eq!(e.line, Some(9));
    }
}

//! Ergonomic construction helpers for IR used by passes and tests.
//!
//! Polaris passes created statements through the class constructors; these
//! free functions play the same role while keeping statement-id discipline
//! (ids come from the owning [`ProgramUnit`]).

use crate::expr::{Expr, LValue};
use crate::program::ProgramUnit;
use crate::stmt::{DoLoop, IfArm, LoopId, ParallelInfo, Stmt, StmtKind, StmtList};

/// Build an assignment statement with a fresh id.
pub fn assign(unit: &mut ProgramUnit, lhs: LValue, rhs: Expr) -> Stmt {
    Stmt::new(unit.fresh_stmt_id(), 0, StmtKind::Assign { lhs, rhs, reduction: None })
}

/// Build a scalar assignment `name = rhs`.
pub fn assign_var(unit: &mut ProgramUnit, name: &str, rhs: Expr) -> Stmt {
    assign(unit, LValue::Var(name.to_ascii_uppercase()), rhs)
}

/// Build a `DO` loop statement with a fresh id and a derived label.
pub fn do_loop(
    unit: &mut ProgramUnit,
    var: &str,
    init: Expr,
    limit: Expr,
    body: Vec<Stmt>,
) -> Stmt {
    let id = unit.fresh_stmt_id();
    let label = format!("{}_do_s{}", unit.name, id.0);
    Stmt::new(
        id,
        0,
        StmtKind::Do(Box::new(DoLoop {
            var: var.to_ascii_uppercase(),
            init,
            limit,
            step: None,
            body: StmtList(body),
            par: ParallelInfo::default(),
            label,
            loop_id: LoopId(id.0),
        })),
    )
}

/// Build a single-arm `IF (cond) THEN ... END IF`.
pub fn if_then(unit: &mut ProgramUnit, cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::new(
        unit.fresh_stmt_id(),
        0,
        StmtKind::IfBlock {
            arms: vec![IfArm { cond, body: StmtList(body) }],
            else_body: StmtList::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::UnitKind;

    #[test]
    fn builders_use_fresh_ids() {
        let mut u = ProgramUnit::new("T", UnitKind::Program);
        let a = assign_var(&mut u, "x", Expr::int(1));
        let b = assign_var(&mut u, "y", Expr::int(2));
        assert_ne!(a.id, b.id);
        let d = do_loop(&mut u, "i", Expr::int(1), Expr::int(10), vec![a, b]);
        assert_eq!(d.as_do().unwrap().body.len(), 2);
        assert_eq!(d.as_do().unwrap().var, "I");
    }

    #[test]
    fn if_then_builds_single_arm() {
        let mut u = ProgramUnit::new("T", UnitKind::Program);
        let body = vec![assign_var(&mut u, "x", Expr::int(1))];
        let s = if_then(&mut u, Expr::Logical(true), body);
        match s.kind {
            StmtKind::IfBlock { arms, else_body } => {
                assert_eq!(arms.len(), 1);
                assert!(else_body.is_empty());
            }
            _ => panic!(),
        }
    }
}

//! Tokens produced by the F-Mini lexer.

use std::fmt;

/// A lexical token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

/// Token kinds. Keywords are lexed as `Ident` and classified by the
/// parser (Fortran has no reserved words).
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, upper-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (covers `1.5`, `1E-3`, `2.5D0`).
    Real(f64),
    /// Character literal `'...'`.
    Str(String),
    /// `.TRUE.`
    True,
    /// `.FALSE.`
    False,
    Plus,
    Minus,
    Star,
    Slash,
    /// `**`
    Pow,
    LParen,
    RParen,
    Comma,
    Assign,
    Colon,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    And,
    Or,
    Not,
    /// End of a logical source line (statement separator).
    Newline,
    /// A `!$POLARIS ...` or `!$ASSERT ...` directive line; payload is the
    /// text after `!$`.
    Directive(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::True => write!(f, ".TRUE."),
            Tok::False => write!(f, ".FALSE."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Pow => write!(f, "**"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Assign => write!(f, "="),
            Tok::Colon => write!(f, ":"),
            Tok::Lt => write!(f, ".LT."),
            Tok::Le => write!(f, ".LE."),
            Tok::Gt => write!(f, ".GT."),
            Tok::Ge => write!(f, ".GE."),
            Tok::EqEq => write!(f, ".EQ."),
            Tok::Ne => write!(f, ".NE."),
            Tok::And => write!(f, ".AND."),
            Tok::Or => write!(f, ".OR."),
            Tok::Not => write!(f, ".NOT."),
            Tok::Newline => write!(f, "<eol>"),
            Tok::Directive(s) => write!(f, "!${s}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

//! Program well-formedness validation — the `p_assert` layer.
//!
//! Polaris ran "extensive error checking throughout the system through the
//! liberal use of assertions" and refused to let a transformation leave
//! the IR "in a state that does not correspond to proper Fortran syntax".
//! Passes in `polaris-core` call [`validate_program`] after mutating the
//! IR (in debug builds and in every test) so a transformation bug
//! surfaces at the point of damage rather than as a downstream
//! miscompile.

use crate::error::{CompileError, Result};
use crate::expr::Expr;
use crate::program::{Program, ProgramUnit, UnitKind};
use crate::stmt::{Stmt, StmtKind};
use crate::symbol::SymKind;
use crate::types::DataType;
use std::collections::BTreeSet;

/// Validate a whole program; the first problem found is returned.
pub fn validate_program(program: &Program) -> Result<()> {
    let mut names = BTreeSet::new();
    if program.units.is_empty() {
        return Err(CompileError::validate("program has no units"));
    }
    let mains = program.units.iter().filter(|u| u.is_main()).count();
    if mains > 1 {
        return Err(CompileError::validate("more than one PROGRAM unit"));
    }
    for unit in &program.units {
        if !names.insert(unit.name.clone()) {
            return Err(CompileError::validate(format!("duplicate unit `{}`", unit.name)));
        }
        validate_unit(unit)?;
    }
    Ok(())
}

/// Validate a single unit.
pub fn validate_unit(unit: &ProgramUnit) -> Result<()> {
    // Dummy arguments must be declared.
    for arg in &unit.args {
        if unit.symbols.get(arg).is_none() {
            return Err(CompileError::validate(format!(
                "unit {}: dummy argument `{arg}` is undeclared",
                unit.name
            )));
        }
    }
    if matches!(unit.kind, UnitKind::Program) && !unit.args.is_empty() {
        return Err(CompileError::validate("PROGRAM unit cannot take arguments"));
    }
    // Unique statement ids.
    let mut ids = BTreeSet::new();
    let mut dup = None;
    unit.body.walk(&mut |s| {
        if !ids.insert(s.id) && dup.is_none() {
            dup = Some(s.id);
        }
    });
    if let Some(id) = dup {
        return Err(CompileError::validate(format!(
            "unit {}: duplicate statement id {id}",
            unit.name
        )));
    }
    if let Some(&max) = ids.iter().map(|i| &i.0).max() {
        if max >= unit.stmt_id_watermark() {
            return Err(CompileError::validate(format!(
                "unit {}: statement id {max} >= fresh-id watermark {} (id discipline violated)",
                unit.name,
                unit.stmt_id_watermark()
            )));
        }
    }
    // Unique loop provenance ids. Every pass must either keep a loop's
    // `LoopId` or assign a fresh one when it clones the loop (inlining);
    // a duplicate means run-time observations could be attributed to the
    // wrong compile-time verdict, so it is rejected — inside the
    // pipeline this rolls the offending stage back.
    let mut loop_ids = BTreeSet::new();
    let mut dup_loop = None;
    unit.body.walk(&mut |s| {
        if let Some(d) = s.as_do() {
            if !loop_ids.insert(d.loop_id) && dup_loop.is_none() {
                dup_loop = Some((d.loop_id, d.label.clone()));
            }
        }
    });
    if let Some((id, label)) = dup_loop {
        return Err(CompileError::validate(format!(
            "unit {}: duplicate loop id {id} (at loop `{label}`)",
            unit.name
        )));
    }
    // Per-statement checks.
    let mut err: Option<CompileError> = None;
    let mut loop_stack: Vec<String> = Vec::new();
    validate_stmts(unit, &unit.body.0, &mut loop_stack, &mut err);
    if let Some(e) = err {
        return Err(e);
    }
    Ok(())
}

fn validate_stmts(
    unit: &ProgramUnit,
    stmts: &[Stmt],
    loop_stack: &mut Vec<String>,
    err: &mut Option<CompileError>,
) {
    for s in stmts {
        if err.is_some() {
            return;
        }
        match &s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                check_lvalue(unit, s, lhs.name(), lhs.subs(), err);
                check_expr(unit, s, rhs, err);
                for sub in lhs.subs() {
                    check_expr(unit, s, sub, err);
                }
                // F77 forbids assigning to an active DO variable.
                if lhs.subs().is_empty() && loop_stack.iter().any(|v| v == lhs.name()) {
                    *err = Some(
                        CompileError::validate(format!(
                            "unit {}: assignment to active DO variable `{}`",
                            unit.name,
                            lhs.name()
                        ))
                        .with_line(s.line),
                    );
                }
            }
            StmtKind::Do(d) => {
                if unit.symbols.type_of(&d.var) != DataType::Integer {
                    *err = Some(
                        CompileError::validate(format!(
                            "unit {}: DO variable `{}` is not INTEGER",
                            unit.name, d.var
                        ))
                        .with_line(s.line),
                    );
                    return;
                }
                if unit.symbols.is_array(&d.var) {
                    *err = Some(
                        CompileError::validate(format!(
                            "unit {}: DO variable `{}` is an array",
                            unit.name, d.var
                        ))
                        .with_line(s.line),
                    );
                    return;
                }
                check_expr(unit, s, &d.init, err);
                check_expr(unit, s, &d.limit, err);
                if let Some(step) = &d.step {
                    check_expr(unit, s, step, err);
                    if step.simplified().as_int() == Some(0) {
                        *err = Some(
                            CompileError::validate(format!(
                                "unit {}: DO loop `{}` has zero step",
                                unit.name, d.label
                            ))
                            .with_line(s.line),
                        );
                        return;
                    }
                }
                loop_stack.push(d.var.clone());
                validate_stmts(unit, &d.body.0, loop_stack, err);
                loop_stack.pop();
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    check_expr(unit, s, &arm.cond, err);
                    validate_stmts(unit, &arm.body.0, loop_stack, err);
                }
                validate_stmts(unit, &else_body.0, loop_stack, err);
            }
            StmtKind::Call { args, .. } => {
                for a in args {
                    check_expr(unit, s, a, err);
                }
            }
            StmtKind::Print { items } => {
                for a in items {
                    check_expr(unit, s, a, err);
                }
            }
            StmtKind::Assert { cond } => check_expr(unit, s, cond, err),
            StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
        }
    }
}

fn check_lvalue(
    unit: &ProgramUnit,
    s: &Stmt,
    name: &str,
    subs: &[Expr],
    err: &mut Option<CompileError>,
) {
    if err.is_some() {
        return;
    }
    match unit.symbols.get(name) {
        Some(sym) => match &sym.kind {
            SymKind::Array(dims) => {
                if subs.is_empty() {
                    *err = Some(
                        CompileError::validate(format!(
                            "unit {}: whole-array assignment to `{name}`",
                            unit.name
                        ))
                        .with_line(s.line),
                    );
                } else if subs.len() != dims.len() {
                    *err = Some(
                        CompileError::validate(format!(
                            "unit {}: `{name}` has rank {} but is subscripted with {} indices",
                            unit.name,
                            dims.len(),
                            subs.len()
                        ))
                        .with_line(s.line),
                    );
                }
            }
            SymKind::Parameter(_) => {
                *err = Some(
                    CompileError::validate(format!(
                        "unit {}: assignment to PARAMETER `{name}`",
                        unit.name
                    ))
                    .with_line(s.line),
                );
            }
            SymKind::Scalar => {
                if !subs.is_empty() {
                    *err = Some(
                        CompileError::validate(format!(
                            "unit {}: scalar `{name}` used with subscripts",
                            unit.name
                        ))
                        .with_line(s.line),
                    );
                }
            }
            SymKind::External => {
                *err = Some(
                    CompileError::validate(format!(
                        "unit {}: assignment to external `{name}`",
                        unit.name
                    ))
                    .with_line(s.line),
                );
            }
        },
        None => {
            *err = Some(
                CompileError::validate(format!(
                    "unit {}: assignment to undeclared symbol `{name}` (implicit declaration \
                     should have happened at parse time)",
                    unit.name
                ))
                .with_line(s.line),
            );
        }
    }
}

fn check_expr(unit: &ProgramUnit, s: &Stmt, e: &Expr, err: &mut Option<CompileError>) {
    if err.is_some() {
        return;
    }
    e.for_each(&mut |node| {
        if err.is_some() {
            return;
        }
        match node {
            Expr::Index { array, subs } => {
                if let Some(sym) = unit.symbols.get(array) {
                    if let SymKind::Array(dims) = &sym.kind {
                        if subs.len() != dims.len() {
                            *err = Some(
                                CompileError::validate(format!(
                                    "unit {}: `{array}` has rank {} but is subscripted with {}",
                                    unit.name,
                                    dims.len(),
                                    subs.len()
                                ))
                                .with_line(s.line),
                            );
                        }
                    } else {
                        *err = Some(
                            CompileError::validate(format!(
                                "unit {}: `{array}` subscripted but not an array",
                                unit.name
                            ))
                            .with_line(s.line),
                        );
                    }
                }
            }
            Expr::Wildcard(id) => {
                *err = Some(
                    CompileError::validate(format!(
                        "unit {}: wildcard _W{id} escaped into program text",
                        unit.name
                    ))
                    .with_line(s.line),
                );
            }
            _ => {}
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Result<()> {
        let p = crate::parse(src)?;
        validate_program(&p)
    }

    #[test]
    fn valid_program_passes() {
        check("program p\ninteger n\nparameter (n=4)\nreal a(n)\ndo i=1,n\na(i)=i\nend do\nend\n")
            .unwrap();
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = check("program p\nreal a(4,4)\na(1) = 0.0\nend\n").unwrap_err();
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn assignment_to_do_variable_rejected() {
        let e = check("program p\ndo i = 1, 4\n  i = 2\nend do\nend\n").unwrap_err();
        assert!(e.message.contains("DO variable"), "{e}");
    }

    #[test]
    fn real_do_variable_rejected() {
        let e = check("program p\nreal x\ndo x = 1, 4\n  y = x\nend do\nend\n").unwrap_err();
        assert!(e.message.contains("not INTEGER"), "{e}");
    }

    #[test]
    fn parameter_assignment_rejected() {
        let e = check("program p\ninteger n\nparameter (n=4)\nn = 5\nend\n").unwrap_err();
        assert!(e.message.contains("PARAMETER"), "{e}");
    }

    #[test]
    fn zero_step_rejected() {
        let e = check("program p\ndo i = 1, 4, 0\n  y = x\nend do\nend\n").unwrap_err();
        assert!(e.message.contains("zero step"), "{e}");
    }

    #[test]
    fn two_program_units_rejected() {
        let src = "program a\nx=1\nend\n";
        let mut p = crate::parse(src).unwrap();
        let mut second = p.units[0].clone();
        second.name = "B".into();
        p.units.push(second);
        let e = validate_program(&p).unwrap_err();
        assert!(e.message.contains("more than one PROGRAM"), "{e}");
    }

    #[test]
    fn scalar_with_subscripts_rejected() {
        let e = check("program p\nreal x\nx(1) = 2.0\nend\n").unwrap_err();
        assert!(e.message.contains("rank") || e.message.contains("scalar"), "{e}");
    }
}

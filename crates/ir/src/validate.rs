//! Program well-formedness validation — the `p_assert` layer, organized
//! as a *named invariant set*.
//!
//! Polaris ran "extensive error checking throughout the system through the
//! liberal use of assertions" and refused to let a transformation leave
//! the IR "in a state that does not correspond to proper Fortran syntax".
//! This module is the single shared checker behind that discipline: the
//! parser-time entry point ([`validate_program`]) and the pass pipeline's
//! post-stage verifier (`polaris-core`, via [`check_program`]) run the
//! *same* invariants, so a rule added here is enforced at parse time and
//! after every transformation alike.
//!
//! Each rule belongs to a named [`Invariant`]; [`check_program`] returns
//! structured [`InvariantViolation`]s (at most one per invariant per
//! unit, so output stays bounded on badly corrupted IR), and
//! [`validate_program`] is the thin compatibility wrapper that turns the
//! first violation into a [`CompileError`].

use crate::cfg::Cfg;
use crate::error::{CompileError, Result};
use crate::expr::{is_intrinsic, BinOp, Expr, UnOp};
use crate::program::{Program, ProgramUnit, UnitKind};
use crate::stmt::{Stmt, StmtKind};
use crate::symbol::SymKind;
use crate::types::DataType;
use std::collections::BTreeSet;

/// The invariant classes the checker enforces. The set is deliberately
/// small and named: a violation report (and the pipeline's rollback
/// diagnostics) cite the class, so a failure reads as "invariant
/// `loop-id-provenance` violated after `inline`" rather than an opaque
/// assertion message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Invariant {
    /// Unit-list shape: at least one unit, unique unit names, a single
    /// PROGRAM unit, declared dummy arguments, no arguments on PROGRAM.
    UnitStructure,
    /// Statement ids are unique within a unit and below the fresh-id
    /// watermark.
    StmtIdDiscipline,
    /// `LoopId`s are unique per unit — the provenance join key between
    /// compile-time verdicts, lowered plans, and oracle observations.
    LoopIdProvenance,
    /// Symbol-table/use consistency: assignment targets declared and
    /// writable, subscript rank agreement, no subscripted scalars, no
    /// escaped pattern wildcards, referenced arrays declared.
    SymbolUse,
    /// Type agreement: DO variables INTEGER, no LOGICAL/arithmetic
    /// punning in assignments or operators, IF conditions LOGICAL.
    TypeAgreement,
    /// DO-loop form: scalar loop variable, non-zero constant step, no
    /// assignment to an active DO variable.
    LoopForm,
    /// The derived control-flow graph is well-formed: edges in bounds,
    /// the exit block reachable, every statement in at most one block.
    CfgWellFormed,
    /// No dangling calls in multi-unit programs: every CALL target is an
    /// intrinsic or an existing unit (a pass that deletes or renames an
    /// inlined unit must also rewrite its call sites).
    UnitLinkage,
}

/// Every invariant class, in checking order.
pub const INVARIANTS: [Invariant; 8] = [
    Invariant::UnitStructure,
    Invariant::StmtIdDiscipline,
    Invariant::LoopIdProvenance,
    Invariant::SymbolUse,
    Invariant::TypeAgreement,
    Invariant::LoopForm,
    Invariant::CfgWellFormed,
    Invariant::UnitLinkage,
];

impl Invariant {
    /// Stable kebab-case name used in diagnostics and JSON documents.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::UnitStructure => "unit-structure",
            Invariant::StmtIdDiscipline => "stmt-id-discipline",
            Invariant::LoopIdProvenance => "loop-id-provenance",
            Invariant::SymbolUse => "symbol-use",
            Invariant::TypeAgreement => "type-agreement",
            Invariant::LoopForm => "loop-form",
            Invariant::CfgWellFormed => "cfg-well-formed",
            Invariant::UnitLinkage => "unit-linkage",
        }
    }
}

/// One broken invariant, with enough structure for the pipeline to
/// attribute it and for `--verify` to render it as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    pub invariant: Invariant,
    /// The unit the violation was found in, when unit-scoped.
    pub unit: Option<String>,
    /// 1-based source line, when the offending statement carries one.
    pub line: Option<u32>,
    pub message: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant `{}`: {}", self.invariant.name(), self.message)
    }
}

/// Check the whole invariant set over `program`, returning every
/// violation found (bounded to one per invariant per unit). An empty
/// vector means the IR is well-formed.
pub fn check_program(program: &Program) -> Vec<InvariantViolation> {
    let mut out = Violations::default();
    check_unit_structure(program, &mut out);
    for unit in &program.units {
        out.begin_unit();
        check_stmt_ids(unit, &mut out);
        check_loop_ids(unit, &mut out);
        check_body(unit, &mut out);
        check_cfg(unit, &mut out);
    }
    out.begin_unit();
    check_unit_linkage(program, &mut out);
    out.list
}

/// Validate a whole program; the first broken invariant is returned as a
/// [`CompileError`] (the historical parse-time interface).
pub fn validate_program(program: &Program) -> Result<()> {
    match check_program(program).into_iter().next() {
        None => Ok(()),
        Some(v) => {
            let mut err = CompileError::validate(v.to_string());
            if let Some(line) = v.line {
                err = err.with_line(line);
            }
            Err(err)
        }
    }
}

/// Validate a single unit (unit-scoped invariants only).
pub fn validate_unit(unit: &ProgramUnit) -> Result<()> {
    let mut out = Violations::default();
    check_unit_args(unit, &mut out);
    check_stmt_ids(unit, &mut out);
    check_loop_ids(unit, &mut out);
    check_body(unit, &mut out);
    check_cfg(unit, &mut out);
    match out.list.into_iter().next() {
        None => Ok(()),
        Some(v) => {
            let mut err = CompileError::validate(v.to_string());
            if let Some(line) = v.line {
                err = err.with_line(line);
            }
            Err(err)
        }
    }
}

/// Violation accumulator: keeps at most one violation per invariant per
/// unit scope so a badly corrupted program can't produce an unbounded
/// report.
#[derive(Default)]
struct Violations {
    list: Vec<InvariantViolation>,
    seen_in_scope: BTreeSet<Invariant>,
}

impl Violations {
    fn begin_unit(&mut self) {
        self.seen_in_scope.clear();
    }

    fn push(
        &mut self,
        invariant: Invariant,
        unit: Option<&str>,
        line: Option<u32>,
        message: String,
    ) {
        if self.seen_in_scope.insert(invariant) {
            self.list.push(InvariantViolation {
                invariant,
                unit: unit.map(str::to_string),
                line,
                message,
            });
        }
    }

    fn saw(&self, invariant: Invariant) -> bool {
        self.seen_in_scope.contains(&invariant)
    }
}

// ---------------------------------------------------------------------
// unit-structure
// ---------------------------------------------------------------------

fn check_unit_structure(program: &Program, out: &mut Violations) {
    if program.units.is_empty() {
        out.push(Invariant::UnitStructure, None, None, "program has no units".into());
        return;
    }
    let mains = program.units.iter().filter(|u| u.is_main()).count();
    if mains > 1 {
        out.push(Invariant::UnitStructure, None, None, "more than one PROGRAM unit".into());
    }
    let mut names = BTreeSet::new();
    for unit in &program.units {
        if !names.insert(unit.name.clone()) {
            out.push(
                Invariant::UnitStructure,
                Some(&unit.name),
                None,
                format!("duplicate unit `{}`", unit.name),
            );
        }
    }
    for unit in &program.units {
        check_unit_args(unit, out);
    }
}

fn check_unit_args(unit: &ProgramUnit, out: &mut Violations) {
    for arg in &unit.args {
        if unit.symbols.get(arg).is_none() {
            out.push(
                Invariant::UnitStructure,
                Some(&unit.name),
                None,
                format!("unit {}: dummy argument `{arg}` is undeclared", unit.name),
            );
        }
    }
    if matches!(unit.kind, UnitKind::Program) && !unit.args.is_empty() {
        out.push(
            Invariant::UnitStructure,
            Some(&unit.name),
            None,
            "PROGRAM unit cannot take arguments".into(),
        );
    }
}

// ---------------------------------------------------------------------
// stmt-id-discipline / loop-id-provenance
// ---------------------------------------------------------------------

fn check_stmt_ids(unit: &ProgramUnit, out: &mut Violations) {
    let mut ids = BTreeSet::new();
    let mut dup = None;
    unit.body.walk(&mut |s| {
        if !ids.insert(s.id) && dup.is_none() {
            dup = Some(s.id);
        }
    });
    if let Some(id) = dup {
        out.push(
            Invariant::StmtIdDiscipline,
            Some(&unit.name),
            None,
            format!("unit {}: duplicate statement id {id}", unit.name),
        );
        return;
    }
    if let Some(&max) = ids.iter().map(|i| &i.0).max() {
        if max >= unit.stmt_id_watermark() {
            out.push(
                Invariant::StmtIdDiscipline,
                Some(&unit.name),
                None,
                format!(
                    "unit {}: statement id {max} >= fresh-id watermark {} (id discipline violated)",
                    unit.name,
                    unit.stmt_id_watermark()
                ),
            );
        }
    }
}

fn check_loop_ids(unit: &ProgramUnit, out: &mut Violations) {
    // Every pass must either keep a loop's `LoopId` or assign a fresh one
    // when it clones the loop (inlining); a duplicate means run-time
    // observations could be attributed to the wrong compile-time verdict
    // — inside the pipeline this rolls the offending stage back.
    let mut loop_ids = BTreeSet::new();
    let mut dup_loop = None;
    unit.body.walk(&mut |s| {
        if let Some(d) = s.as_do() {
            if !loop_ids.insert(d.loop_id) && dup_loop.is_none() {
                dup_loop = Some((d.loop_id, d.label.clone()));
            }
        }
    });
    if let Some((id, label)) = dup_loop {
        out.push(
            Invariant::LoopIdProvenance,
            Some(&unit.name),
            None,
            format!("unit {}: duplicate loop id {id} (at loop `{label}`)", unit.name),
        );
    }
}

// ---------------------------------------------------------------------
// symbol-use / type-agreement / loop-form (one body traversal)
// ---------------------------------------------------------------------

fn check_body(unit: &ProgramUnit, out: &mut Violations) {
    let mut loop_stack: Vec<String> = Vec::new();
    check_stmts(unit, &unit.body.0, &mut loop_stack, out);
}

fn check_stmts(
    unit: &ProgramUnit,
    stmts: &[Stmt],
    loop_stack: &mut Vec<String>,
    out: &mut Violations,
) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                check_lvalue(unit, s, lhs.name(), lhs.subs(), out);
                check_expr(unit, s, rhs, out);
                for sub in lhs.subs() {
                    check_expr(unit, s, sub, out);
                }
                check_assign_types(unit, s, lhs.name(), rhs, out);
                // F77 forbids assigning to an active DO variable.
                if lhs.subs().is_empty() && loop_stack.iter().any(|v| v == lhs.name()) {
                    out.push(
                        Invariant::LoopForm,
                        Some(&unit.name),
                        Some(s.line),
                        format!(
                            "unit {}: assignment to active DO variable `{}`",
                            unit.name,
                            lhs.name()
                        ),
                    );
                }
            }
            StmtKind::Do(d) => {
                if unit.symbols.type_of(&d.var) != DataType::Integer {
                    out.push(
                        Invariant::TypeAgreement,
                        Some(&unit.name),
                        Some(s.line),
                        format!("unit {}: DO variable `{}` is not INTEGER", unit.name, d.var),
                    );
                }
                if unit.symbols.is_array(&d.var) {
                    out.push(
                        Invariant::LoopForm,
                        Some(&unit.name),
                        Some(s.line),
                        format!("unit {}: DO variable `{}` is an array", unit.name, d.var),
                    );
                }
                check_expr(unit, s, &d.init, out);
                check_expr(unit, s, &d.limit, out);
                if let Some(step) = &d.step {
                    check_expr(unit, s, step, out);
                    if step.simplified().as_int() == Some(0) {
                        out.push(
                            Invariant::LoopForm,
                            Some(&unit.name),
                            Some(s.line),
                            format!("unit {}: DO loop `{}` has zero step", unit.name, d.label),
                        );
                    }
                }
                loop_stack.push(d.var.clone());
                check_stmts(unit, &d.body.0, loop_stack, out);
                loop_stack.pop();
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    check_expr(unit, s, &arm.cond, out);
                    if matches!(
                        expr_type(unit, &arm.cond),
                        Some(DataType::Integer) | Some(DataType::Real)
                    ) {
                        out.push(
                            Invariant::TypeAgreement,
                            Some(&unit.name),
                            Some(s.line),
                            format!("unit {}: IF condition is not LOGICAL", unit.name),
                        );
                    }
                    check_stmts(unit, &arm.body.0, loop_stack, out);
                }
                check_stmts(unit, &else_body.0, loop_stack, out);
            }
            StmtKind::Call { args, .. } => {
                for a in args {
                    check_expr(unit, s, a, out);
                }
            }
            StmtKind::Print { items } => {
                for a in items {
                    check_expr(unit, s, a, out);
                }
            }
            StmtKind::Assert { cond } => check_expr(unit, s, cond, out),
            StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
        }
    }
}

fn check_lvalue(unit: &ProgramUnit, s: &Stmt, name: &str, subs: &[Expr], out: &mut Violations) {
    let v = |msg: String, out: &mut Violations| {
        out.push(Invariant::SymbolUse, Some(&unit.name), Some(s.line), msg);
    };
    match unit.symbols.get(name) {
        Some(sym) => match &sym.kind {
            SymKind::Array(dims) => {
                if subs.is_empty() {
                    v(format!("unit {}: whole-array assignment to `{name}`", unit.name), out);
                } else if subs.len() != dims.len() {
                    v(
                        format!(
                            "unit {}: `{name}` has rank {} but is subscripted with {} indices",
                            unit.name,
                            dims.len(),
                            subs.len()
                        ),
                        out,
                    );
                }
            }
            SymKind::Parameter(_) => {
                v(format!("unit {}: assignment to PARAMETER `{name}`", unit.name), out);
            }
            SymKind::Scalar => {
                if !subs.is_empty() {
                    v(format!("unit {}: scalar `{name}` used with subscripts", unit.name), out);
                }
            }
            SymKind::External => {
                v(format!("unit {}: assignment to external `{name}`", unit.name), out);
            }
        },
        None => {
            v(
                format!(
                    "unit {}: assignment to undeclared symbol `{name}` (implicit declaration \
                     should have happened at parse time)",
                    unit.name
                ),
                out,
            );
        }
    }
}

fn check_expr(unit: &ProgramUnit, s: &Stmt, e: &Expr, out: &mut Violations) {
    e.for_each(&mut |node| {
        match node {
            Expr::Index { array, subs } => {
                match unit.symbols.get(array) {
                    Some(sym) => {
                        if let SymKind::Array(dims) = &sym.kind {
                            if subs.len() != dims.len() {
                                out.push(
                                    Invariant::SymbolUse,
                                    Some(&unit.name),
                                    Some(s.line),
                                    format!(
                                        "unit {}: `{array}` has rank {} but is subscripted with {}",
                                        unit.name,
                                        dims.len(),
                                        subs.len()
                                    ),
                                );
                            }
                        } else {
                            out.push(
                                Invariant::SymbolUse,
                                Some(&unit.name),
                                Some(s.line),
                                format!("unit {}: `{array}` subscripted but not an array", unit.name),
                            );
                        }
                    }
                    None => {
                        out.push(
                            Invariant::SymbolUse,
                            Some(&unit.name),
                            Some(s.line),
                            format!("unit {}: reference to undeclared array `{array}`", unit.name),
                        );
                    }
                }
                // Subscripts must be arithmetic.
                for sub in subs {
                    if expr_type(unit, sub) == Some(DataType::Logical) {
                        out.push(
                            Invariant::TypeAgreement,
                            Some(&unit.name),
                            Some(s.line),
                            format!("unit {}: LOGICAL subscript on `{array}`", unit.name),
                        );
                    }
                }
            }
            Expr::Bin { op, lhs, rhs }
                if op.is_arithmetic()
                    && (expr_type(unit, lhs) == Some(DataType::Logical)
                        || expr_type(unit, rhs) == Some(DataType::Logical)) =>
            {
                out.push(
                    Invariant::TypeAgreement,
                    Some(&unit.name),
                    Some(s.line),
                    format!(
                        "unit {}: LOGICAL operand of arithmetic `{}`",
                        unit.name,
                        op.fortran()
                    ),
                );
            }
            Expr::Wildcard(id) => {
                out.push(
                    Invariant::SymbolUse,
                    Some(&unit.name),
                    Some(s.line),
                    format!("unit {}: wildcard _W{id} escaped into program text", unit.name),
                );
            }
            _ => {}
        }
    });
}

/// Conservative expression typing for the type-agreement invariant.
/// `None` means "unknown — don't judge" (intrinsic calls, strings,
/// mixed/unknown operands), so the check never fires on well-typed
/// programs it cannot fully analyze.
fn expr_type(unit: &ProgramUnit, e: &Expr) -> Option<DataType> {
    match e {
        Expr::Int(_) => Some(DataType::Integer),
        Expr::Real(_) => Some(DataType::Real),
        Expr::Logical(_) => Some(DataType::Logical),
        Expr::Str(_) => None,
        Expr::Var(n) => Some(unit.symbols.type_of(n)),
        Expr::Index { array, .. } => Some(unit.symbols.type_of(array)),
        Expr::Call { .. } => None,
        Expr::Un { op: UnOp::Neg, arg } => expr_type(unit, arg),
        Expr::Un { op: UnOp::Not, .. } => Some(DataType::Logical),
        Expr::Bin { op, lhs, rhs } => {
            if op.is_relational() || matches!(op, BinOp::And | BinOp::Or) {
                Some(DataType::Logical)
            } else {
                match (expr_type(unit, lhs), expr_type(unit, rhs)) {
                    (Some(DataType::Logical), _) | (_, Some(DataType::Logical)) => None,
                    (Some(a), Some(b)) => Some(a.promote(b)),
                    _ => None,
                }
            }
        }
        Expr::Wildcard(_) => None,
    }
}

fn check_assign_types(unit: &ProgramUnit, s: &Stmt, lhs: &str, rhs: &Expr, out: &mut Violations) {
    let lhs_ty = unit.symbols.type_of(lhs);
    let Some(rhs_ty) = expr_type(unit, rhs) else { return };
    // Arithmetic types convert freely (F77 assignment conversion); the
    // pun the invariant rejects is LOGICAL on exactly one side.
    if (lhs_ty == DataType::Logical) != (rhs_ty == DataType::Logical) {
        out.push(
            Invariant::TypeAgreement,
            Some(&unit.name),
            Some(s.line),
            format!(
                "unit {}: type-punned assignment to `{lhs}` ({} := {})",
                unit.name,
                lhs_ty.keyword(),
                rhs_ty.keyword()
            ),
        );
    }
}

// ---------------------------------------------------------------------
// cfg-well-formed
// ---------------------------------------------------------------------

fn check_cfg(unit: &ProgramUnit, out: &mut Violations) {
    // The CFG is derived on demand from the structured AST; building it
    // and checking its shape is a consistency oracle over the statement
    // structure itself. Skip if the body already failed the id
    // discipline (a duplicated subtree would also duplicate block
    // membership and double-report).
    if out.saw(Invariant::StmtIdDiscipline) {
        return;
    }
    let cfg = Cfg::build(&unit.body);
    let n = cfg.blocks.len();
    let mut seen_stmts = BTreeSet::new();
    for block in &cfg.blocks {
        for succ in &block.succs {
            if succ.0 >= n {
                out.push(
                    Invariant::CfgWellFormed,
                    Some(&unit.name),
                    None,
                    format!("unit {}: CFG edge to out-of-range block {}", unit.name, succ.0),
                );
                return;
            }
        }
        for id in &block.stmts {
            if !seen_stmts.insert(*id) {
                out.push(
                    Invariant::CfgWellFormed,
                    Some(&unit.name),
                    None,
                    format!("unit {}: statement id {id} appears in two CFG blocks", unit.name),
                );
                return;
            }
        }
    }
    // Exit must be reachable from entry (structured programs always
    // fall through to the exit block).
    let mut reached = vec![false; n];
    let mut work = vec![cfg.entry];
    while let Some(b) = work.pop() {
        if std::mem::replace(&mut reached[b.0], true) {
            continue;
        }
        work.extend(cfg.blocks[b.0].succs.iter().copied());
    }
    if !reached[cfg.exit.0] {
        out.push(
            Invariant::CfgWellFormed,
            Some(&unit.name),
            None,
            format!("unit {}: CFG exit block unreachable from entry", unit.name),
        );
    }
}

// ---------------------------------------------------------------------
// unit-linkage
// ---------------------------------------------------------------------

fn check_unit_linkage(program: &Program, out: &mut Violations) {
    // Only meaningful on multi-unit programs: a single unit calling an
    // undefined external is a legal F-Mini idiom (the passes treat the
    // call as an opaque kill), but once callee units exist, a CALL that
    // resolves to nothing means a pass dropped or renamed an inlined
    // unit without rewriting its call sites.
    if program.units.len() < 2 {
        return;
    }
    for unit in &program.units {
        let mut dangling: Option<(String, u32)> = None;
        unit.body.walk(&mut |s| {
            if let StmtKind::Call { name, .. } = &s.kind {
                let resolves = is_intrinsic(name)
                    || program.units.iter().any(|u| u.name.eq_ignore_ascii_case(name));
                if !resolves && dangling.is_none() {
                    dangling = Some((name.clone(), s.line));
                }
            }
        });
        if let Some((name, line)) = dangling {
            out.push(
                Invariant::UnitLinkage,
                Some(&unit.name),
                Some(line),
                format!("unit {}: CALL to `{name}` resolves to no unit or intrinsic", unit.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Result<()> {
        let p = crate::parse(src)?;
        validate_program(&p)
    }

    #[test]
    fn valid_program_passes() {
        check("program p\ninteger n\nparameter (n=4)\nreal a(n)\ndo i=1,n\na(i)=i\nend do\nend\n")
            .unwrap();
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = check("program p\nreal a(4,4)\na(1) = 0.0\nend\n").unwrap_err();
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn assignment_to_do_variable_rejected() {
        let e = check("program p\ndo i = 1, 4\n  i = 2\nend do\nend\n").unwrap_err();
        assert!(e.message.contains("DO variable"), "{e}");
    }

    #[test]
    fn real_do_variable_rejected() {
        let e = check("program p\nreal x\ndo x = 1, 4\n  y = x\nend do\nend\n").unwrap_err();
        assert!(e.message.contains("not INTEGER"), "{e}");
    }

    #[test]
    fn parameter_assignment_rejected() {
        let e = check("program p\ninteger n\nparameter (n=4)\nn = 5\nend\n").unwrap_err();
        assert!(e.message.contains("PARAMETER"), "{e}");
    }

    #[test]
    fn zero_step_rejected() {
        let e = check("program p\ndo i = 1, 4, 0\n  y = x\nend do\nend\n").unwrap_err();
        assert!(e.message.contains("zero step"), "{e}");
    }

    #[test]
    fn two_program_units_rejected() {
        let src = "program a\nx=1\nend\n";
        let mut p = crate::parse(src).unwrap();
        let mut second = p.units[0].clone();
        second.name = "B".into();
        p.units.push(second);
        let e = validate_program(&p).unwrap_err();
        assert!(e.message.contains("more than one PROGRAM"), "{e}");
    }

    #[test]
    fn scalar_with_subscripts_rejected() {
        let e = check("program p\nreal x\nx(1) = 2.0\nend\n").unwrap_err();
        assert!(e.message.contains("rank") || e.message.contains("scalar"), "{e}");
    }

    #[test]
    fn violations_carry_invariant_names() {
        let p = crate::parse("program p\ndo i = 1, 4, 0\n  y = x\nend do\nend\n").unwrap();
        let vs = check_program(&p);
        assert!(
            vs.iter().any(|v| v.invariant == Invariant::LoopForm),
            "{vs:?}"
        );
        let e = validate_program(&p).unwrap_err();
        assert!(e.message.contains("loop-form"), "{e}");
    }

    #[test]
    fn type_punned_assignment_rejected() {
        let src = "program p\ninteger k\nk = 1\nend\n";
        let mut p = crate::parse(src).unwrap();
        // Corrupt the symbol table behind the assignment's back.
        p.units[0].symbols.get_mut("K").unwrap().ty = DataType::Logical;
        let vs = check_program(&p);
        assert!(
            vs.iter().any(|v| v.invariant == Invariant::TypeAgreement),
            "{vs:?}"
        );
        assert!(vs[0].message.contains("type-punned"), "{vs:?}");
    }

    #[test]
    fn undeclared_array_reference_rejected() {
        let src = "program p\nreal a(4)\nx = a(1)\nend\n";
        let mut p = crate::parse(src).unwrap();
        p.units[0].symbols.remove("A");
        let vs = check_program(&p);
        assert!(
            vs.iter().any(|v| v.invariant == Invariant::SymbolUse),
            "{vs:?}"
        );
    }

    #[test]
    fn duplicate_loop_id_names_provenance_invariant() {
        let src = "program p\nreal a(4)\ndo i = 1, 4\n  a(i) = 0.0\nend do\n\
                   do j = 1, 4\n  a(j) = 1.0\nend do\nend\n";
        let mut p = crate::parse(src).unwrap();
        let first = p.units[0].body.loops()[0].loop_id;
        let mut n = 0;
        p.units[0].body.walk_mut(&mut |s| {
            if let StmtKind::Do(d) = &mut s.kind {
                n += 1;
                if n == 2 {
                    d.loop_id = first;
                }
            }
        });
        let vs = check_program(&p);
        assert!(
            vs.iter().any(|v| v.invariant == Invariant::LoopIdProvenance),
            "{vs:?}"
        );
    }

    #[test]
    fn dangling_call_in_multi_unit_program_rejected() {
        let src = "program p\ncall fill\nend\nsubroutine fill\nx = 1.0\nend\n";
        let mut p = crate::parse(src).unwrap();
        validate_program(&p).unwrap();
        p.units[0].body.walk_mut(&mut |s| {
            if let StmtKind::Call { name, .. } = &mut s.kind {
                *name = "GONE".into();
            }
        });
        let vs = check_program(&p);
        assert!(
            vs.iter().any(|v| v.invariant == Invariant::UnitLinkage),
            "{vs:?}"
        );
        // A single-unit program calling an undefined external is legal.
        let single = crate::parse("program p\nk = 3\ncall f(k)\nx = k\nend\n").unwrap();
        assert!(check_program(&single).is_empty());
    }

    #[test]
    fn check_program_bounds_violations_per_invariant() {
        // Many broken statements of the same class still yield one
        // violation for that class per unit.
        let src = "program p\nreal a(4,4)\na(1) = 0.0\na(2) = 0.0\na(3) = 0.0\nend\n";
        let p = crate::parse(src).unwrap();
        let n = check_program(&p)
            .iter()
            .filter(|v| v.invariant == Invariant::SymbolUse)
            .count();
        assert_eq!(n, 1);
    }
}

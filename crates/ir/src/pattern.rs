//! Wildcard pattern matching over expressions — the analogue of the
//! Polaris `Wildcard` class and the "Forbol" pattern-matching layer.
//!
//! A *pattern* is an ordinary [`Expr`] that may contain
//! [`Expr::Wildcard`] nodes. Matching a pattern against a ground
//! expression either fails or produces [`Bindings`] from wildcard ids to
//! the matched subtrees; equal ids must bind structurally equal subtrees
//! (non-linear patterns), which is exactly what reduction recognition
//! needs for `A(σ) = A(σ) + β`.

use crate::expr::Expr;
use std::collections::BTreeMap;

/// Wildcard-id → matched subtree.
pub type Bindings = BTreeMap<u32, Expr>;

/// Match `pattern` against `expr`, extending `bindings` on success.
///
/// Returns `true` iff the whole of `expr` matches. On failure the
/// bindings may contain partial entries; callers should treat them as
/// garbage (use [`match_expr`] for a fresh map).
pub fn match_into(pattern: &Expr, expr: &Expr, bindings: &mut Bindings) -> bool {
    match (pattern, expr) {
        (Expr::Wildcard(id), e) => match bindings.get(id) {
            Some(prev) => prev == e,
            None => {
                bindings.insert(*id, e.clone());
                true
            }
        },
        (Expr::Int(a), Expr::Int(b)) => a == b,
        (Expr::Real(a), Expr::Real(b)) => a == b,
        (Expr::Logical(a), Expr::Logical(b)) => a == b,
        (Expr::Str(a), Expr::Str(b)) => a == b,
        (Expr::Var(a), Expr::Var(b)) => a == b,
        (Expr::Index { array: a, subs: sa }, Expr::Index { array: b, subs: sb }) => {
            a == b && sa.len() == sb.len() && zip_all(sa, sb, bindings)
        }
        (Expr::Call { name: a, args: aa }, Expr::Call { name: b, args: ab }) => {
            a == b && aa.len() == ab.len() && zip_all(aa, ab, bindings)
        }
        (Expr::Un { op: oa, arg: pa }, Expr::Un { op: ob, arg: ea }) => {
            oa == ob && match_into(pa, ea, bindings)
        }
        (Expr::Bin { op: oa, lhs: pl, rhs: pr }, Expr::Bin { op: ob, lhs: el, rhs: er }) => {
            oa == ob && match_into(pl, el, bindings) && match_into(pr, er, bindings)
        }
        _ => false,
    }
}

fn zip_all(pats: &[Expr], exprs: &[Expr], bindings: &mut Bindings) -> bool {
    pats.iter().zip(exprs).all(|(p, e)| match_into(p, e, bindings))
}

/// Match at the root; returns the bindings on success.
pub fn match_expr(pattern: &Expr, expr: &Expr) -> Option<Bindings> {
    let mut b = Bindings::new();
    if match_into(pattern, expr, &mut b) {
        Some(b)
    } else {
        None
    }
}

/// Instantiate a pattern: replace each wildcard with its binding.
/// Unbound wildcards are left in place.
pub fn instantiate(pattern: &Expr, bindings: &Bindings) -> Expr {
    pattern.map(&mut |e| match e {
        Expr::Wildcard(id) => bindings.get(&id).cloned().unwrap_or(Expr::Wildcard(id)),
        other => other,
    })
}

/// A rewrite rule `lhs → rhs` in the style of Forbol.
#[derive(Debug, Clone)]
pub struct Rule {
    pub lhs: Expr,
    pub rhs: Expr,
}

impl Rule {
    pub fn new(lhs: Expr, rhs: Expr) -> Rule {
        Rule { lhs, rhs }
    }

    /// Apply the rule at every position of `expr` (bottom-up, one pass).
    /// Returns the rewritten expression and how many sites fired.
    pub fn apply(&self, expr: &Expr) -> (Expr, usize) {
        let mut count = 0usize;
        let out = expr.map(&mut |e| {
            if let Some(b) = match_expr(&self.lhs, &e) {
                count += 1;
                instantiate(&self.rhs, &b)
            } else {
                e
            }
        });
        (out, count)
    }
}

/// Search `expr` for the first subtree matching `pattern` (pre-order).
pub fn find_first(pattern: &Expr, expr: &Expr) -> Option<Bindings> {
    let mut found: Option<Bindings> = None;
    expr.for_each(&mut |e| {
        if found.is_none() {
            if let Some(b) = match_expr(pattern, e) {
                found = Some(b);
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};

    fn w(id: u32) -> Expr {
        Expr::Wildcard(id)
    }

    #[test]
    fn simple_binding() {
        // pattern: _0 + 1   expr: K + 1
        let pat = Expr::add(w(0), Expr::int(1));
        let e = Expr::add(Expr::var("K"), Expr::int(1));
        let b = match_expr(&pat, &e).unwrap();
        assert_eq!(b[&0], Expr::var("K"));
    }

    #[test]
    fn nonlinear_pattern_requires_equal_subtrees() {
        // pattern: _0 = _0 + _1 models a reduction RHS shape _0 + _1
        let pat = Expr::add(w(0), w(0));
        assert!(match_expr(&pat, &Expr::add(Expr::var("X"), Expr::var("X"))).is_some());
        assert!(match_expr(&pat, &Expr::add(Expr::var("X"), Expr::var("Y"))).is_none());
    }

    #[test]
    fn reduction_shape_with_array_subscripts() {
        // A(_0) + _1 matched against A(2*I) + B(I)
        let pat = Expr::add(Expr::index("A", vec![w(0)]), w(1));
        let e = Expr::add(
            Expr::index("A", vec![Expr::mul(Expr::int(2), Expr::var("I"))]),
            Expr::index("B", vec![Expr::var("I")]),
        );
        let b = match_expr(&pat, &e).unwrap();
        assert_eq!(b[&0], Expr::mul(Expr::int(2), Expr::var("I")));
    }

    #[test]
    fn mismatched_operator_fails() {
        let pat = Expr::add(w(0), w(1));
        assert!(match_expr(&pat, &Expr::sub(Expr::var("A"), Expr::var("B"))).is_none());
    }

    #[test]
    fn instantiate_replaces_bound_only() {
        let mut b = Bindings::new();
        b.insert(0, Expr::var("I"));
        let pat = Expr::add(w(0), w(1));
        let out = instantiate(&pat, &b);
        assert_eq!(out, Expr::add(Expr::var("I"), Expr::Wildcard(1)));
    }

    #[test]
    fn rule_rewrites_everywhere() {
        // x*1 -> x  via rule _0 * 1 -> _0
        let rule = Rule::new(Expr::mul(w(0), Expr::int(1)), w(0));
        let e = Expr::add(
            Expr::mul(Expr::var("A"), Expr::int(1)),
            Expr::mul(Expr::var("B"), Expr::int(1)),
        );
        let (out, n) = rule.apply(&e);
        assert_eq!(n, 2);
        assert_eq!(out, Expr::add(Expr::var("A"), Expr::var("B")));
    }

    #[test]
    fn find_first_searches_subtrees() {
        let pat = Expr::bin(BinOp::Mul, w(0), Expr::var("N"));
        let e = Expr::add(Expr::int(1), Expr::mul(Expr::var("I"), Expr::var("N")));
        let b = find_first(&pat, &e).unwrap();
        assert_eq!(b[&0], Expr::var("I"));
    }
}

//! Hand-written lexer for F-Mini.
//!
//! Free-form input; one statement per logical line; `&` at end of line
//! continues the statement on the next line; `!` starts a comment except
//! that `!$` introduces a directive recognized by the parser. Classic
//! fixed-form comment lines (`C`/`c`/`*` in column 1) are also accepted so
//! paper-style kernels paste in cleanly, as are `c$`/`C$` directive lines.

use crate::error::{CompileError, Result};
use crate::token::{Tok, Token};

/// Tokenize a full source file.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut toks = Vec::new();
    let mut pending_continuation = false;
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw_line;

        // Full-line comments and directives.
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        // `*` in column 1 is a fixed-form comment. `C` in column 1 is NOT
        // treated as one (unlike strict F77 fixed form): F-Mini is
        // free-form, and `c = t` must parse as an assignment. Use `!` or
        // `*` comments instead.
        let first = trimmed.chars().next().unwrap();
        let is_fixed_comment = first == '*'
            && line.starts_with(first)
            && !trimmed
                .chars()
                .nth(1)
                .map(|c| c.is_ascii_alphanumeric() || c == '_')
                .unwrap_or(false);
        let directive_payload = if let Some(rest) = trimmed.strip_prefix("!$") {
            Some(rest)
        } else { trimmed.strip_prefix("c$").or_else(|| trimmed.strip_prefix("C$")) };
        if let Some(payload) = directive_payload {
            let col = (line.len() - trimmed.len() + 1) as u32;
            toks.push(Token {
                kind: Tok::Directive(payload.trim().to_ascii_uppercase()),
                line: line_no,
                col,
            });
            toks.push(Token { kind: Tok::Newline, line: line_no, col: line_len_col(line) });
            continue;
        }
        if trimmed.starts_with('!') || is_fixed_comment {
            continue;
        }

        // Tokenize the line content.
        let had_tokens_before = !toks.is_empty();
        let mut line_toks = lex_line(line, line_no)?;
        if line_toks.is_empty() {
            continue;
        }
        // Continuation handling: if the *previous* line ended with `&`, we
        // suppressed its Newline; nothing more to do. If the current line
        // ends with `&`, drop the marker and do not emit a Newline.
        let _ = (had_tokens_before, pending_continuation);
        let continues = matches!(line_toks.last().map(|t| &t.kind), Some(Tok::Ident(s)) if s == "&");
        if continues {
            line_toks.pop();
            pending_continuation = true;
            toks.extend(line_toks);
        } else {
            pending_continuation = false;
            toks.extend(line_toks);
            toks.push(Token { kind: Tok::Newline, line: line_no, col: line_len_col(line) });
        }
    }
    let last_line = source.lines().count() as u32;
    toks.push(Token { kind: Tok::Eof, line: last_line.max(1), col: 1 });
    Ok(toks)
}

/// Column just past the end of `line` (where its Newline token sits).
fn line_len_col(line: &str) -> u32 {
    line.chars().count() as u32 + 1
}

fn lex_line(line: &str, line_no: u32) -> Result<Vec<Token>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let n = bytes.len();
    let mut i = 0usize;
    let push = |toks: &mut Vec<Token>, kind: Tok, col: usize| {
        toks.push(Token { kind, line: line_no, col: (col + 1) as u32 })
    };
    while i < n {
        let c = bytes[i];
        let start = i;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '!' => break, // trailing comment
            '&' => {
                // continuation marker; represent as a pseudo-identifier the
                // caller strips when it is the last token.
                push(&mut toks, Tok::Ident("&".into()), start);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                let mut closed = false;
                while i < n {
                    if bytes[i] == '\'' {
                        if i + 1 < n && bytes[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            closed = true;
                            break;
                        }
                    } else {
                        s.push(bytes[i]);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(CompileError::lex(line_no, "unterminated character literal")
                        .at_col((start + 1) as u32));
                }
                push(&mut toks, Tok::Str(s), start);
            }
            '+' => {
                push(&mut toks, Tok::Plus, start);
                i += 1;
            }
            '-' => {
                push(&mut toks, Tok::Minus, start);
                i += 1;
            }
            '*' => {
                if i + 1 < n && bytes[i + 1] == '*' {
                    push(&mut toks, Tok::Pow, start);
                    i += 2;
                } else {
                    push(&mut toks, Tok::Star, start);
                    i += 1;
                }
            }
            '/' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push(&mut toks, Tok::Ne, start);
                    i += 2;
                } else {
                    push(&mut toks, Tok::Slash, start);
                    i += 1;
                }
            }
            '(' => {
                push(&mut toks, Tok::LParen, start);
                i += 1;
            }
            ')' => {
                push(&mut toks, Tok::RParen, start);
                i += 1;
            }
            ',' => {
                push(&mut toks, Tok::Comma, start);
                i += 1;
            }
            ':' => {
                push(&mut toks, Tok::Colon, start);
                i += 1;
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push(&mut toks, Tok::EqEq, start);
                    i += 2;
                } else {
                    push(&mut toks, Tok::Assign, start);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push(&mut toks, Tok::Le, start);
                    i += 2;
                } else {
                    push(&mut toks, Tok::Lt, start);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push(&mut toks, Tok::Ge, start);
                    i += 2;
                } else {
                    push(&mut toks, Tok::Gt, start);
                    i += 1;
                }
            }
            '.' => {
                // Either a dotted operator (.LT., .AND., .TRUE. …) or a
                // real literal like `.5`.
                if i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    let (tok, used) = lex_number(&bytes[i..], line_no, start)?;
                    push(&mut toks, tok, start);
                    i += used;
                } else {
                    let mut j = i + 1;
                    let mut word = String::new();
                    while j < n && bytes[j].is_ascii_alphabetic() {
                        word.push(bytes[j].to_ascii_uppercase());
                        j += 1;
                    }
                    if j >= n || bytes[j] != '.' {
                        return Err(CompileError::lex(
                            line_no,
                            format!("malformed dotted operator `.{word}`"),
                        )
                        .at_col((start + 1) as u32));
                    }
                    let kind = match word.as_str() {
                        "LT" => Tok::Lt,
                        "LE" => Tok::Le,
                        "GT" => Tok::Gt,
                        "GE" => Tok::Ge,
                        "EQ" => Tok::EqEq,
                        "NE" => Tok::Ne,
                        "AND" => Tok::And,
                        "OR" => Tok::Or,
                        "NOT" => Tok::Not,
                        "TRUE" => Tok::True,
                        "FALSE" => Tok::False,
                        _ => {
                            return Err(CompileError::lex(
                                line_no,
                                format!("unknown dotted operator `.{word}.`"),
                            )
                            .at_col((start + 1) as u32))
                        }
                    };
                    push(&mut toks, kind, start);
                    i = j + 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, used) = lex_number(&bytes[i..], line_no, start)?;
                push(&mut toks, tok, start);
                i += used;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    s.push(bytes[i].to_ascii_uppercase());
                    i += 1;
                }
                push(&mut toks, Tok::Ident(s), start);
            }
            other => {
                return Err(CompileError::lex(line_no, format!("unexpected character `{other}`"))
                    .at_col((start + 1) as u32))
            }
        }
    }
    Ok(toks)
}

/// Lex an integer or real literal starting at `chars[0]`.
///
/// A number is *real* if it contains `.`, `E`/`D` exponent, or both.
/// Returns the token and the number of characters consumed.
fn lex_number(chars: &[char], line_no: u32, col: usize) -> Result<(Tok, usize)> {
    let n = chars.len();
    let mut i = 0usize;
    let mut text = String::new();
    let mut is_real = false;
    while i < n && chars[i].is_ascii_digit() {
        text.push(chars[i]);
        i += 1;
    }
    if i < n && chars[i] == '.' {
        // Don't swallow `1.AND.` — a dot followed by a letter then
        // eventually another dot is a dotted operator boundary.
        let next = chars.get(i + 1);
        let dotted_op = matches!(next, Some(c) if c.is_ascii_alphabetic());
        if !dotted_op {
            is_real = true;
            text.push('.');
            i += 1;
            while i < n && chars[i].is_ascii_digit() {
                text.push(chars[i]);
                i += 1;
            }
        }
    }
    if i < n && matches!(chars[i], 'e' | 'E' | 'd' | 'D') {
        let mut j = i + 1;
        if j < n && (chars[j] == '+' || chars[j] == '-') {
            j += 1;
        }
        if j < n && chars[j].is_ascii_digit() {
            is_real = true;
            text.push('E');
            i += 1;
            if chars[i] == '+' || chars[i] == '-' {
                text.push(chars[i]);
                i += 1;
            }
            while i < n && chars[i].is_ascii_digit() {
                text.push(chars[i]);
                i += 1;
            }
        }
    }
    if is_real {
        let v: f64 = text
            .parse()
            .map_err(|_| CompileError::lex(line_no, format!("bad real literal `{text}`")).at_col((col + 1) as u32))?;
        Ok((Tok::Real(v), i))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| CompileError::lex(line_no, format!("bad integer literal `{text}`")).at_col((col + 1) as u32))?;
        Ok((Tok::Int(v), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        let k = kinds("x = a + 1");
        assert_eq!(
            k,
            vec![
                Tok::Ident("X".into()),
                Tok::Assign,
                Tok::Ident("A".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn dotted_and_symbolic_relations_agree() {
        assert_eq!(kinds("a .lt. b"), kinds("a < b"));
        assert_eq!(kinds("a .ge. b"), kinds("a >= b"));
        assert_eq!(kinds("a .ne. b"), kinds("a /= b"));
    }

    #[test]
    fn real_literals() {
        assert_eq!(kinds("x = 1.5")[2], Tok::Real(1.5));
        assert_eq!(kinds("x = 1E3")[2], Tok::Real(1000.0));
        assert_eq!(kinds("x = 2.5D0")[2], Tok::Real(2.5));
        assert_eq!(kinds("x = .25")[2], Tok::Real(0.25));
        assert_eq!(kinds("x = 1.")[2], Tok::Real(1.0));
    }

    #[test]
    fn integer_dot_operator_not_confused_with_real() {
        // `1.AND.` must lex as Int(1), And — not Real(1.0), garbage.
        let k = kinds("if (1.and.j) x = 1");
        assert!(k.contains(&Tok::And));
        assert!(k.contains(&Tok::Int(1)));
    }

    #[test]
    fn pow_vs_star() {
        let k = kinds("y = x**2 * z");
        assert!(k.contains(&Tok::Pow));
        assert!(k.contains(&Tok::Star));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("! a comment\n* starred\n  x = 1 ! trailing\n");
        assert_eq!(k.iter().filter(|t| matches!(t, Tok::Ident(_))).count(), 1);
    }

    #[test]
    fn c_at_column_one_is_an_assignment_not_a_comment() {
        let k = kinds("c = t");
        assert_eq!(k[0], Tok::Ident("C".into()));
        assert_eq!(k[1], Tok::Assign);
    }

    #[test]
    fn directives_survive() {
        let k = kinds("!$assert (n > 0)\nx = 1");
        assert!(matches!(&k[0], Tok::Directive(d) if d.starts_with("ASSERT")));
    }

    #[test]
    fn continuation_joins_lines() {
        let k = kinds("x = a + &\n    b");
        // exactly one Newline (the logical end), tokens joined
        let newlines = k.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
        assert!(k.contains(&Tok::Ident("B".into())));
    }

    #[test]
    fn string_literal_with_escaped_quote() {
        let k = kinds("print *, 'it''s fine'");
        assert!(k.contains(&Tok::Str("it's fine".into())));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("print *, 'oops").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = lex("x = 1\ny = @").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn identifier_starting_with_c_is_not_a_comment() {
        // `count = 1` begins with `c` but must not be treated as a comment.
        let k = kinds("count = 1");
        assert_eq!(k[0], Tok::Ident("COUNT".into()));
    }
}

//! Expressions: the recursive tree at the heart of the IR.
//!
//! Mirrors the Polaris `Expression` class hierarchy: a small closed set of
//! node kinds with rich member functions — type/rank queries, structural
//! equality, substitution, traversal, constant folding — plus the
//! `Wildcard` node used by the pattern-matching layer (see
//! [`crate::pattern`], the analogue of Polaris' "Forbol").

use crate::symbol::SymbolTable;
use crate::types::DataType;
use std::collections::BTreeSet;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `.NOT. e`.
    Not,
}

/// Binary operators, both arithmetic and logical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Exponentiation `**`.
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// True for `< <= > >= == /=`.
    pub fn is_relational(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// True for `+ - * / **`.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow)
    }

    /// The Fortran spelling used by the unparser.
    pub fn fortran(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
            BinOp::Lt => ".LT.",
            BinOp::Le => ".LE.",
            BinOp::Gt => ".GT.",
            BinOp::Ge => ".GE.",
            BinOp::Eq => ".EQ.",
            BinOp::Ne => ".NE.",
            BinOp::And => ".AND.",
            BinOp::Or => ".OR.",
        }
    }

    /// The relational operator with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swap(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    /// Logical negation of a relational operator.
    pub fn negate(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            _ => return None,
        })
    }
}

/// Reduction operators recognized by the idiom-recognition pass (§3.2).
///
/// `+` and `*` cover the paper's additive/multiplicative recurrences; `MAX`
/// and `MIN` cover the intrinsic-call form (`X = MAX(X, e)`) which occurs
/// in time-step computations (e.g. HYDRO2D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    Sum,
    Product,
    Max,
    Min,
}

impl RedOp {
    pub fn fortran(self) -> &'static str {
        match self {
            RedOp::Sum => "+",
            RedOp::Product => "*",
            RedOp::Max => "MAX",
            RedOp::Min => "MIN",
        }
    }
}

/// An expression tree node.
///
/// Names are stored upper-cased (Fortran is case-insensitive); the parser
/// normalizes. Structural equality is `PartialEq`; pattern matching with
/// wildcards lives in [`crate::pattern`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `.TRUE.` / `.FALSE.`.
    Logical(bool),
    /// Character literal (only meaningful inside `PRINT`).
    Str(String),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference `A(i, j, ...)`.
    Index { array: String, subs: Vec<Expr> },
    /// Function or intrinsic call `F(args...)`.
    Call { name: String, args: Vec<Expr> },
    /// Unary operation.
    Un { op: UnOp, arg: Box<Expr> },
    /// Binary operation.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Pattern-matching wildcard (never appears in a program; see
    /// [`crate::pattern`]). The id distinguishes multiple wildcards within
    /// one pattern; equal ids must bind structurally equal subtrees.
    Wildcard(u32),
}

impl Expr {
    // ----- constructors -------------------------------------------------

    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into().to_ascii_uppercase())
    }

    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    pub fn real(v: f64) -> Expr {
        Expr::Real(v)
    }

    pub fn index(array: impl Into<String>, subs: Vec<Expr>) -> Expr {
        Expr::Index { array: array.into().to_ascii_uppercase(), subs }
    }

    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { name: name.into().to_ascii_uppercase(), args }
    }

    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    pub fn un(op: UnOp, arg: Expr) -> Expr {
        Expr::Un { op, arg: Box::new(arg) }
    }

    // Static builder shorthands, deliberately named after the operators
    // they build (they take two operands, not `self`, so the std ops
    // traits do not apply).
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, lhs, rhs)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn neg(arg: Expr) -> Expr {
        Expr::un(UnOp::Neg, arg)
    }

    // ----- queries ------------------------------------------------------

    /// True if the tree contains no `Wildcard` node (i.e. it is a proper
    /// program expression rather than a pattern).
    pub fn is_ground(&self) -> bool {
        let mut ground = true;
        self.for_each(&mut |e| {
            if matches!(e, Expr::Wildcard(_)) {
                ground = false;
            }
        });
        ground
    }

    /// True if this is an integer or real literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Str(_))
    }

    /// Returns the integer value if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Un { op: UnOp::Neg, arg } => arg.as_int().map(|v| -v),
            _ => None,
        }
    }

    /// Does the expression reference variable or array `name` anywhere
    /// (as a scalar, an array base, or a call target)?
    pub fn references(&self, name: &str) -> bool {
        let mut found = false;
        self.for_each(&mut |e| match e {
            Expr::Var(n) | Expr::Index { array: n, .. } | Expr::Call { name: n, .. }
                if n == name => {
                    found = true;
                }
            _ => {}
        });
        found
    }

    /// Does the expression reference scalar variable `name`?
    pub fn references_var(&self, name: &str) -> bool {
        let mut found = false;
        self.for_each(&mut |e| {
            if let Expr::Var(n) = e {
                if n == name {
                    found = true;
                }
            }
        });
        found
    }

    /// All scalar variable names referenced, in sorted order.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.for_each(&mut |e| {
            if let Expr::Var(n) = e {
                set.insert(n.clone());
            }
        });
        set
    }

    /// All array names indexed anywhere in the expression.
    pub fn arrays(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.for_each(&mut |e| {
            if let Expr::Index { array, .. } = e {
                set.insert(array.clone());
            }
        });
        set
    }

    /// Number of nodes in the tree (used for cost heuristics and as a
    /// simple complexity measure in tests).
    pub fn size(&self) -> usize {
        let mut n = 0usize;
        self.for_each(&mut |_| n += 1);
        n
    }

    /// The static type of the expression under `symbols`, following
    /// Fortran promotion. Returns `None` for wildcards/strings.
    pub fn data_type(&self, symbols: &SymbolTable) -> Option<DataType> {
        match self {
            Expr::Int(_) => Some(DataType::Integer),
            Expr::Real(_) => Some(DataType::Real),
            Expr::Logical(_) => Some(DataType::Logical),
            Expr::Str(_) => None,
            Expr::Var(n) | Expr::Index { array: n, .. } => Some(symbols.type_of(n)),
            Expr::Call { name, args } => {
                if let Some(ty) = intrinsic_result_type(name, args, symbols) {
                    Some(ty)
                } else {
                    Some(symbols.type_of(name))
                }
            }
            Expr::Un { op: UnOp::Neg, arg } => arg.data_type(symbols),
            Expr::Un { op: UnOp::Not, .. } => Some(DataType::Logical),
            Expr::Bin { op, lhs, rhs } => {
                if op.is_relational() || matches!(op, BinOp::And | BinOp::Or) {
                    Some(DataType::Logical)
                } else {
                    let l = lhs.data_type(symbols)?;
                    let r = rhs.data_type(symbols)?;
                    Some(l.promote(r))
                }
            }
            Expr::Wildcard(_) => None,
        }
    }

    // ----- traversal ----------------------------------------------------

    /// Pre-order traversal over every node, including `self`.
    pub fn for_each(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Index { subs, .. } => subs.iter().for_each(|s| s.for_each(f)),
            Expr::Call { args, .. } => args.iter().for_each(|a| a.for_each(f)),
            Expr::Un { arg, .. } => arg.for_each(f),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.for_each(f);
                rhs.for_each(f);
            }
            _ => {}
        }
    }

    /// Bottom-up rewriting: children are rewritten first, then `f` is
    /// applied to the rebuilt node. This is the workhorse behind
    /// substitution and simplification.
    pub fn map(&self, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Index { array, subs } => Expr::Index {
                array: array.clone(),
                subs: subs.iter().map(|s| s.map(f)).collect(),
            },
            Expr::Call { name, args } => Expr::Call {
                name: name.clone(),
                args: args.iter().map(|a| a.map(f)).collect(),
            },
            Expr::Un { op, arg } => Expr::Un { op: *op, arg: Box::new(arg.map(f)) },
            Expr::Bin { op, lhs, rhs } => Expr::Bin {
                op: *op,
                lhs: Box::new(lhs.map(f)),
                rhs: Box::new(rhs.map(f)),
            },
            other => other.clone(),
        };
        f(rebuilt)
    }

    /// Replace every occurrence of scalar variable `name` with `value`.
    pub fn substitute_var(&self, name: &str, value: &Expr) -> Expr {
        self.map(&mut |e| match &e {
            Expr::Var(n) if n == name => value.clone(),
            _ => e,
        })
    }

    /// Rename a scalar variable, an array base name and a call target in
    /// one sweep (used by the inliner's site-independent renaming).
    pub fn rename_symbol(&self, from: &str, to: &str) -> Expr {
        self.map(&mut |e| match e {
            Expr::Var(ref n) if n == from => Expr::Var(to.to_string()),
            Expr::Index { ref array, ref subs } if array == from => {
                Expr::Index { array: to.to_string(), subs: subs.clone() }
            }
            Expr::Call { ref name, ref args } if name == from => {
                Expr::Call { name: to.to_string(), args: args.clone() }
            }
            other => other,
        })
    }

    // ----- simplification -----------------------------------------------

    /// Light algebraic simplification: constant folding plus the identity
    /// rules `0+x`, `x*1`, `x*0`, `x-0`, `x**1`, double negation. Deep
    /// canonical simplification lives in `polaris-symbolic`; this is the
    /// "structural cleanup" Polaris performed inside the IR layer.
    pub fn simplified(&self) -> Expr {
        self.map(&mut simplify_node)
    }
}

fn simplify_node(e: Expr) -> Expr {
    match e {
        Expr::Un { op: UnOp::Neg, ref arg } => match arg.as_ref() {
            Expr::Int(v) => Expr::Int(-v),
            Expr::Real(v) => Expr::Real(-v),
            Expr::Un { op: UnOp::Neg, arg: inner } => inner.as_ref().clone(),
            _ => e,
        },
        Expr::Un { op: UnOp::Not, ref arg } => match arg.as_ref() {
            Expr::Logical(b) => Expr::Logical(!b),
            _ => e,
        },
        Expr::Bin { op, ref lhs, ref rhs } => simplify_bin(op, lhs, rhs).unwrap_or(e),
        other => other,
    }
}

fn simplify_bin(op: BinOp, lhs: &Expr, rhs: &Expr) -> Option<Expr> {
    use BinOp::*;
    // Integer constant folding.
    if let (Expr::Int(a), Expr::Int(b)) = (lhs, rhs) {
        let (a, b) = (*a, *b);
        let v = match op {
            Add => a.checked_add(b),
            Sub => a.checked_sub(b),
            Mul => a.checked_mul(b),
            Div if b != 0 => Some(a.wrapping_div(b)),
            Pow if (0..=62).contains(&b) => a.checked_pow(b as u32),
            Lt => return Some(Expr::Logical(a < b)),
            Le => return Some(Expr::Logical(a <= b)),
            Gt => return Some(Expr::Logical(a > b)),
            Ge => return Some(Expr::Logical(a >= b)),
            Eq => return Some(Expr::Logical(a == b)),
            Ne => return Some(Expr::Logical(a != b)),
            _ => None,
        };
        if let Some(v) = v {
            return Some(Expr::Int(v));
        }
    }
    // Real constant folding (only for exact operations; comparisons are
    // folded since literal comparison is deterministic).
    if let (Expr::Real(a), Expr::Real(b)) = (lhs, rhs) {
        let (a, b) = (*a, *b);
        return Some(match op {
            Add => Expr::Real(a + b),
            Sub => Expr::Real(a - b),
            Mul => Expr::Real(a * b),
            Div if b != 0.0 => Expr::Real(a / b),
            Lt => Expr::Logical(a < b),
            Le => Expr::Logical(a <= b),
            Gt => Expr::Logical(a > b),
            Ge => Expr::Logical(a >= b),
            Eq => Expr::Logical(a == b),
            Ne => Expr::Logical(a != b),
            _ => return None,
        });
    }
    // Identities.
    match (op, lhs, rhs) {
        (Add, Expr::Int(0), x) | (Add, x, Expr::Int(0)) => Some(x.clone()),
        (Sub, x, Expr::Int(0)) => Some(x.clone()),
        (Mul, Expr::Int(1), x) | (Mul, x, Expr::Int(1)) => Some(x.clone()),
        (Mul, Expr::Int(0), _) | (Mul, _, Expr::Int(0)) => Some(Expr::Int(0)),
        (Div, x, Expr::Int(1)) => Some(x.clone()),
        (Pow, x, Expr::Int(1)) => Some(x.clone()),
        (Pow, _, Expr::Int(0)) => Some(Expr::Int(1)),
        (And, Expr::Logical(true), x) | (And, x, Expr::Logical(true)) => Some(x.clone()),
        (And, Expr::Logical(false), _) | (And, _, Expr::Logical(false)) => {
            Some(Expr::Logical(false))
        }
        (Or, Expr::Logical(false), x) | (Or, x, Expr::Logical(false)) => Some(x.clone()),
        (Or, Expr::Logical(true), _) | (Or, _, Expr::Logical(true)) => Some(Expr::Logical(true)),
        _ => None,
    }
}

/// Result type of a known intrinsic, or `None` if `name` is not intrinsic.
pub fn intrinsic_result_type(
    name: &str,
    args: &[Expr],
    symbols: &SymbolTable,
) -> Option<DataType> {
    let arg_ty = || -> DataType {
        args.iter()
            .filter_map(|a| a.data_type(symbols))
            .fold(DataType::Integer, |acc, t| acc.promote(t))
    };
    Some(match name {
        "MOD" | "MAX" | "MIN" | "ABS" | "SIGN" => arg_ty(),
        "MAX0" | "MIN0" | "INT" | "NINT" | "IABS" => DataType::Integer,
        "SQRT" | "SIN" | "COS" | "TAN" | "EXP" | "LOG" | "ATAN" | "REAL" | "DBLE" | "FLOAT"
        | "AMAX1" | "AMIN1" | "DMAX1" | "DMIN1" => DataType::Real,
        _ => return None,
    })
}

/// True if `name` is a recognized F-Mini intrinsic.
pub fn is_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "MOD"
            | "MAX"
            | "MIN"
            | "MAX0"
            | "MIN0"
            | "AMAX1"
            | "AMIN1"
            | "DMAX1"
            | "DMIN1"
            | "ABS"
            | "IABS"
            | "SIGN"
            | "SQRT"
            | "SIN"
            | "COS"
            | "TAN"
            | "EXP"
            | "LOG"
            | "ATAN"
            | "INT"
            | "NINT"
            | "REAL"
            | "DBLE"
            | "FLOAT"
    )
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar assignment target.
    Var(String),
    /// Array element assignment target.
    Index { array: String, subs: Vec<Expr> },
}

impl LValue {
    /// The variable or array name being assigned.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Index { array, .. } => array,
        }
    }

    /// The subscripts, empty for a scalar target.
    pub fn subs(&self) -> &[Expr] {
        match self {
            LValue::Var(_) => &[],
            LValue::Index { subs, .. } => subs,
        }
    }

    /// View the target as an [`Expr`] (useful for uniform analysis of
    /// reads and writes).
    pub fn as_expr(&self) -> Expr {
        match self {
            LValue::Var(n) => Expr::Var(n.clone()),
            LValue::Index { array, subs } => {
                Expr::Index { array: array.clone(), subs: subs.clone() }
            }
        }
    }

    /// Apply an expression rewrite to every subscript.
    pub fn map_subs(&self, f: &mut dyn FnMut(Expr) -> Expr) -> LValue {
        match self {
            LValue::Var(n) => LValue::Var(n.clone()),
            LValue::Index { array, subs } => LValue::Index {
                array: array.clone(),
                subs: subs.iter().map(|s| s.map(f)).collect(),
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::format_expr(self))
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::format_expr(&self.as_expr()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Expr {
        Expr::var(s)
    }

    #[test]
    fn structural_equality() {
        let a = Expr::add(n("I"), Expr::int(1));
        let b = Expr::add(n("I"), Expr::int(1));
        let c = Expr::add(Expr::int(1), n("I"));
        assert_eq!(a, b);
        assert_ne!(a, c, "structural equality is not commutative-aware");
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        // K + A(K) + F(K)  with K := I+1
        let e = Expr::add(
            Expr::add(n("K"), Expr::index("A", vec![n("K")])),
            Expr::call("F", vec![n("K")]),
        );
        let s = e.substitute_var("K", &Expr::add(n("I"), Expr::int(1)));
        assert!(!s.references_var("K"));
        assert!(s.references_var("I"));
        assert_eq!(s.variables().len(), 1);
    }

    #[test]
    fn rename_symbol_hits_arrays_and_calls() {
        let e = Expr::add(Expr::index("A", vec![n("I")]), Expr::call("A", vec![n("J")]));
        let r = e.rename_symbol("A", "A_1");
        assert!(!r.references("A"));
        assert!(r.references("A_1"));
    }

    #[test]
    fn simplify_folds_constants_and_identities() {
        let e = Expr::add(Expr::mul(Expr::int(0), n("X")), Expr::mul(n("Y"), Expr::int(1)));
        assert_eq!(e.simplified(), n("Y"));
        let e = Expr::bin(BinOp::Pow, Expr::int(2), Expr::int(10));
        assert_eq!(e.simplified(), Expr::Int(1024));
        let e = Expr::neg(Expr::neg(n("Z")));
        assert_eq!(e.simplified(), n("Z"));
        let e = Expr::bin(BinOp::Lt, Expr::int(3), Expr::int(4));
        assert_eq!(e.simplified(), Expr::Logical(true));
    }

    #[test]
    fn simplify_does_not_fold_overflow() {
        let e = Expr::mul(Expr::int(i64::MAX), Expr::int(2));
        // must not panic, must stay a Mul node
        assert!(matches!(e.simplified(), Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn variables_and_arrays_are_separated() {
        let e = Expr::add(Expr::index("A", vec![n("I")]), n("J"));
        assert_eq!(e.variables().into_iter().collect::<Vec<_>>(), vec!["I", "J"]);
        assert_eq!(e.arrays().into_iter().collect::<Vec<_>>(), vec!["A"]);
    }

    #[test]
    fn as_int_handles_negation() {
        assert_eq!(Expr::neg(Expr::int(5)).as_int(), Some(-5));
        assert_eq!(n("I").as_int(), None);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(n("I").size(), 1);
        assert_eq!(Expr::add(n("I"), Expr::int(1)).size(), 3);
    }

    #[test]
    fn ground_detects_wildcards() {
        assert!(n("I").is_ground());
        assert!(!Expr::add(n("I"), Expr::Wildcard(0)).is_ground());
    }

    #[test]
    fn lvalue_roundtrip() {
        let lv = LValue::Index { array: "A".into(), subs: vec![n("I")] };
        assert_eq!(lv.name(), "A");
        assert_eq!(lv.subs().len(), 1);
        assert_eq!(lv.as_expr(), Expr::index("A", vec![n("I")]));
    }
}

//! Access collection: the memory-reference sets Polaris attached to every
//! statement ("sets of memory references" in the base `Statement` class).
//!
//! Passes ask for the reads and writes performed by a loop iteration,
//! together with the *context* of each access: the stack of loops
//! enclosing it (relative to the collection root) and whether it executes
//! conditionally. This is the raw material for dependence testing (§3.3)
//! and privatization region analysis (§3.4).

use crate::expr::{Expr, RedOp};
use crate::stmt::{DoLoop, Stmt, StmtId, StmtKind, StmtList};

/// Description of one loop enclosing an access (innermost last).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopCtx {
    pub var: String,
    pub init: Expr,
    pub limit: Expr,
    pub step: Expr,
    pub label: String,
}

impl LoopCtx {
    pub fn of(d: &DoLoop) -> LoopCtx {
        LoopCtx {
            var: d.var.clone(),
            init: d.init.clone(),
            limit: d.limit.clone(),
            step: d.step_expr(),
            label: d.label.clone(),
        }
    }
}

/// One memory access to a scalar or an array element.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Variable or array name.
    pub name: String,
    /// Subscripts; empty for scalars.
    pub subs: Vec<Expr>,
    pub is_write: bool,
    /// Statement performing the access.
    pub stmt: StmtId,
    /// Loops enclosing the access *inside* the collection root,
    /// outermost first.
    pub ctx: Vec<LoopCtx>,
    /// True if the access is guarded by an IF inside the root.
    pub conditional: bool,
    /// Set when the access belongs to a validated reduction statement
    /// (such accesses are exempt from dependence testing, §3.2).
    pub reduction: Option<RedOp>,
    /// Position index in textual execution order (pre-order).
    pub order: usize,
    /// For a write produced by an assignment statement: the assigned RHS
    /// (lets demand-driven analyses resolve scalar values, §3.4).
    pub def_rhs: Option<Expr>,
}

impl Access {
    pub fn is_scalar(&self) -> bool {
        self.subs.is_empty()
    }
}

/// Collector state.
struct Collector {
    out: Vec<Access>,
    ctx: Vec<LoopCtx>,
    cond_depth: usize,
    order: usize,
}

impl Collector {
    fn push(
        &mut self,
        name: &str,
        subs: &[Expr],
        is_write: bool,
        stmt: StmtId,
        reduction: Option<RedOp>,
    ) {
        self.push_full(name, subs, is_write, stmt, reduction, None);
    }

    fn push_full(
        &mut self,
        name: &str,
        subs: &[Expr],
        is_write: bool,
        stmt: StmtId,
        reduction: Option<RedOp>,
        def_rhs: Option<Expr>,
    ) {
        self.out.push(Access {
            name: name.to_string(),
            subs: subs.to_vec(),
            is_write,
            stmt,
            ctx: self.ctx.clone(),
            conditional: self.cond_depth > 0,
            reduction,
            order: self.order,
            def_rhs,
        });
        self.order += 1;
    }

    /// Record all reads inside an expression (array subscripts included).
    fn reads_in_expr(&mut self, e: &Expr, stmt: StmtId, reduction: Option<RedOp>) {
        match e {
            Expr::Var(n) => self.push(n, &[], false, stmt, reduction),
            Expr::Index { array, subs } => {
                self.push(array, subs, false, stmt, reduction);
                for s in subs {
                    self.reads_in_expr(s, stmt, None);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.reads_in_expr(a, stmt, reduction);
                }
            }
            Expr::Un { arg, .. } => self.reads_in_expr(arg, stmt, reduction),
            Expr::Bin { lhs, rhs, .. } => {
                self.reads_in_expr(lhs, stmt, reduction);
                self.reads_in_expr(rhs, stmt, reduction);
            }
            _ => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Assign { lhs, rhs, reduction } => {
                // Subscripts of the LHS are reads; the element is a write.
                for sub in lhs.subs() {
                    self.reads_in_expr(sub, s.id, None);
                }
                self.reads_in_expr(rhs, s.id, *reduction);
                self.push_full(lhs.name(), lhs.subs(), true, s.id, *reduction, Some(rhs.clone()));
            }
            StmtKind::Do(d) => {
                self.reads_in_expr(&d.init, s.id, None);
                self.reads_in_expr(&d.limit, s.id, None);
                if let Some(step) = &d.step {
                    self.reads_in_expr(step, s.id, None);
                }
                // The loop variable is written by the loop itself.
                self.push(&d.var, &[], true, s.id, None);
                self.ctx.push(LoopCtx::of(d));
                for inner in &d.body {
                    self.stmt(inner);
                }
                self.ctx.pop();
            }
            StmtKind::IfBlock { arms, else_body } => {
                for arm in arms {
                    self.reads_in_expr(&arm.cond, s.id, None);
                }
                self.cond_depth += 1;
                for arm in arms {
                    for inner in &arm.body {
                        self.stmt(inner);
                    }
                }
                for inner in else_body {
                    self.stmt(inner);
                }
                self.cond_depth -= 1;
            }
            StmtKind::Call { args, .. } => {
                // Conservatively, every argument is both read and written.
                for a in args {
                    self.reads_in_expr(a, s.id, None);
                    match a {
                        Expr::Var(n) => self.push(n, &[], true, s.id, None),
                        Expr::Index { array, subs } => self.push(array, subs, true, s.id, None),
                        _ => {}
                    }
                }
            }
            StmtKind::Print { items } => {
                for item in items {
                    self.reads_in_expr(item, s.id, None);
                }
            }
            StmtKind::Assert { .. }
            | StmtKind::Return
            | StmtKind::Stop
            | StmtKind::Continue => {}
        }
    }
}

/// Collect the accesses performed by one execution of `list`.
pub fn collect_accesses(list: &StmtList) -> Vec<Access> {
    let mut c = Collector { out: Vec::new(), ctx: Vec::new(), cond_depth: 0, order: 0 };
    for s in list {
        c.stmt(s);
    }
    c.out
}

/// Collect the accesses performed by one *iteration* of `d` (the loop's
/// own index reads/writes and bound evaluations are excluded; contexts
/// are relative to the loop body).
pub fn collect_iteration_accesses(d: &DoLoop) -> Vec<Access> {
    collect_accesses(&d.body)
}

/// Does the statement list contain any statement kind that forces a loop
/// to stay serial (I/O, RETURN/STOP, calls to non-intrinsics)?
pub fn find_serializing_stmt(list: &StmtList) -> Option<&'static str> {
    let mut reason = None;
    list.walk(&mut |s| {
        if reason.is_some() {
            return;
        }
        reason = match &s.kind {
            StmtKind::Call { .. } => Some("contains CALL to external subroutine"),
            StmtKind::Print { .. } => Some("contains I/O"),
            StmtKind::Return => Some("contains RETURN"),
            StmtKind::Stop => Some("contains STOP"),
            _ => None,
        };
    });
    reason
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_of(src: &str) -> StmtList {
        let full = format!("program t\n{src}\nend\n");
        crate::parse(&full).unwrap().units.remove(0).body
    }

    #[test]
    fn assignment_yields_reads_then_write() {
        let b = body_of("real a(10)\na(i) = a(i-1) + x");
        let acc = collect_accesses(&b);
        let writes: Vec<_> = acc.iter().filter(|a| a.is_write).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].name, "A");
        // reads: i (lhs sub), a(i-1), i (in sub), x
        let reads: Vec<_> = acc.iter().filter(|a| !a.is_write).map(|a| a.name.clone()).collect();
        assert!(reads.contains(&"X".to_string()));
        assert!(reads.contains(&"I".to_string()));
        // write is last in textual order
        assert!(acc.iter().position(|a| a.is_write).unwrap() == acc.len() - 1);
    }

    #[test]
    fn loop_context_is_recorded() {
        let b = body_of("real a(10,10)\ndo i = 1, 10\n  do j = 1, 10\n    a(i,j) = 0.0\n  end do\nend do");
        let acc = collect_accesses(&b);
        let w = acc.iter().find(|a| a.name == "A" && a.is_write).unwrap();
        let vars: Vec<_> = w.ctx.iter().map(|c| c.var.clone()).collect();
        assert_eq!(vars, vec!["I", "J"]);
    }

    #[test]
    fn conditional_flag() {
        let b = body_of("if (x > 0) y = 1.0\nz = 2.0");
        let acc = collect_accesses(&b);
        let y = acc.iter().find(|a| a.name == "Y").unwrap();
        let z = acc.iter().find(|a| a.name == "Z" && a.is_write).unwrap();
        assert!(y.conditional);
        assert!(!z.conditional);
    }

    #[test]
    fn iteration_accesses_exclude_loop_header() {
        let b = body_of("real a(10)\ndo i = 1, n\n  a(i) = 1.0\nend do");
        let d = b.loops()[0].clone();
        let acc = collect_iteration_accesses(&d);
        assert!(acc.iter().all(|a| a.name != "N"));
        // but I is read as a subscript
        assert!(acc.iter().any(|a| a.name == "I" && !a.is_write));
    }

    #[test]
    fn call_args_are_read_write() {
        let b = body_of("real v(5)\ncall sub(v, k)");
        let acc = collect_accesses(&b);
        assert!(acc.iter().any(|a| a.name == "V" && a.is_write));
        assert!(acc.iter().any(|a| a.name == "K" && a.is_write));
        assert!(acc.iter().any(|a| a.name == "K" && !a.is_write));
    }

    #[test]
    fn serializing_statements_detected() {
        assert_eq!(find_serializing_stmt(&body_of("print *, x")), Some("contains I/O"));
        assert_eq!(
            find_serializing_stmt(&body_of("call s(x)")),
            Some("contains CALL to external subroutine")
        );
        assert!(find_serializing_stmt(&body_of("x = 1")).is_none());
        // nested inside an IF still found
        assert!(find_serializing_stmt(&body_of("if (x>0) then\nstop\nend if")).is_some());
    }
}

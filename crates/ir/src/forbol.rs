//! A rewrite-rule engine over the Wildcard pattern matcher — the
//! analogue of **Forbol**, the "higher-level tool for pattern matching
//! and replacement" the paper says was built on the Polaris `Wildcard`
//! class (Weatherford's CSRD report 1350).
//!
//! A [`RuleSet`] is an ordered collection of `lhs → rhs` rules with
//! optional *guards* (predicates over the bindings). [`RuleSet::normalize`]
//! applies the rules bottom-up to a fixpoint with a rewrite budget. The
//! engine ships with [`algebra_rules`], a set of algebraic cleanups used
//! to keep transformed programs readable (the same service Polaris'
//! structural simplifier performed on substituted closed forms).

use crate::expr::Expr;
use crate::pattern::{instantiate, match_expr, Bindings};

/// A guard decides whether a matched rule may fire.
pub type Guard = fn(&Bindings) -> bool;

/// One rewrite rule: `lhs → rhs` with an optional guard.
pub struct RewriteRule {
    pub name: &'static str,
    pub lhs: Expr,
    pub rhs: Expr,
    pub guard: Option<Guard>,
}

impl RewriteRule {
    pub fn new(name: &'static str, lhs: Expr, rhs: Expr) -> RewriteRule {
        RewriteRule { name, lhs, rhs, guard: None }
    }

    pub fn guarded(name: &'static str, lhs: Expr, rhs: Expr, guard: Guard) -> RewriteRule {
        RewriteRule { name, lhs, rhs, guard: Some(guard) }
    }

    /// Try to rewrite `e` at the root.
    pub fn try_rewrite(&self, e: &Expr) -> Option<Expr> {
        let bindings = match_expr(&self.lhs, e)?;
        if let Some(g) = self.guard {
            if !g(&bindings) {
                return None;
            }
        }
        Some(instantiate(&self.rhs, &bindings))
    }
}

/// An ordered rule collection applied to a fixpoint.
pub struct RuleSet {
    pub rules: Vec<RewriteRule>,
}

impl RuleSet {
    pub fn new(rules: Vec<RewriteRule>) -> RuleSet {
        RuleSet { rules }
    }

    /// Rewrite `e` bottom-up, repeating until no rule fires or the
    /// budget is exhausted. Returns the normal form and the number of
    /// rewrites performed.
    pub fn normalize(&self, e: &Expr, budget: usize) -> (Expr, usize) {
        let mut cur = e.clone();
        let mut fired_total = 0usize;
        for _ in 0..budget {
            let mut fired = 0usize;
            cur = cur.map(&mut |node| {
                for rule in &self.rules {
                    if let Some(out) = rule.try_rewrite(&node) {
                        fired += 1;
                        return out;
                    }
                }
                node
            });
            fired_total += fired;
            if fired == 0 {
                break;
            }
        }
        (cur, fired_total)
    }
}

fn w(id: u32) -> Expr {
    Expr::Wildcard(id)
}

/// Algebraic cleanup rules beyond the built-in constant folder:
/// cancellation, factoring of common unit offsets, and double-negation
/// through subtraction. Conservative: every rule is an identity over the
/// rationals and over Fortran integer arithmetic.
pub fn algebra_rules() -> RuleSet {
    RuleSet::new(vec![
        // x - x -> 0
        RewriteRule::new("sub-self", Expr::sub(w(0), w(0)), Expr::Int(0)),
        // x + (-y) -> x - y
        RewriteRule::new(
            "add-neg",
            Expr::add(w(0), Expr::neg(w(1))),
            Expr::sub(w(0), w(1)),
        ),
        // x - (-y) -> x + y
        RewriteRule::new(
            "sub-neg",
            Expr::sub(w(0), Expr::neg(w(1))),
            Expr::add(w(0), w(1)),
        ),
        // (x + c) - c -> x   (same wildcard twice: non-linear pattern)
        RewriteRule::new(
            "peel-offset",
            Expr::sub(Expr::add(w(0), w(1)), w(1)),
            w(0),
        ),
        // c*x + d*x -> handled only for identical subtrees: x*y + x*z -> x*(y+z)
        RewriteRule::new(
            "factor-left",
            Expr::add(Expr::mul(w(0), w(1)), Expr::mul(w(0), w(2))),
            Expr::mul(w(0), Expr::add(w(1), w(2))),
        ),
        // x*1 and 1*x are folded by the IR simplifier; mirror for -1:
        RewriteRule::new("mul-neg-one", Expr::mul(w(0), Expr::Int(-1)), Expr::neg(w(0))),
        RewriteRule::new("neg-one-mul", Expr::mul(Expr::Int(-1), w(0)), Expr::neg(w(0))),
        // (x/c)*c -> x is NOT an integer identity (truncation); guard a
        // safe special case c = 1 handled by the folder; exclude here.
        // MAX(x, x) -> x, MIN(x, x) -> x
        RewriteRule::new("max-self", Expr::call("MAX", vec![w(0), w(0)]), w(0)),
        RewriteRule::new("min-self", Expr::call("MIN", vec![w(0), w(0)]), w(0)),
        // ABS(ABS(x)) -> ABS(x)
        RewriteRule::new(
            "abs-abs",
            Expr::call("ABS", vec![Expr::call("ABS", vec![w(0)])]),
            Expr::call("ABS", vec![w(0)]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn sub_self_cancels() {
        let rules = algebra_rules();
        let e = Expr::sub(Expr::add(v("I"), v("J")), Expr::add(v("I"), v("J")));
        let (out, fired) = rules.normalize(&e, 8);
        assert_eq!(out, Expr::Int(0));
        assert_eq!(fired, 1);
    }

    #[test]
    fn peel_offset_nonlinear_match() {
        let rules = algebra_rules();
        // (K + N*2) - N*2 -> K
        let off = Expr::mul(v("N"), Expr::int(2));
        let e = Expr::sub(Expr::add(v("K"), off.clone()), off);
        let (out, _) = rules.normalize(&e, 8);
        assert_eq!(out, v("K"));
    }

    #[test]
    fn factoring_combines_terms() {
        let rules = algebra_rules();
        // I*N + I*M -> I*(N+M)
        let e = Expr::add(Expr::mul(v("I"), v("N")), Expr::mul(v("I"), v("M")));
        let (out, _) = rules.normalize(&e, 8);
        assert_eq!(out, Expr::mul(v("I"), Expr::add(v("N"), v("M"))));
    }

    #[test]
    fn chains_to_fixpoint() {
        let rules = algebra_rules();
        // (X - (-Y)) - Y  ->  (X + Y) - Y  ->  X
        let e = Expr::sub(Expr::sub(v("X"), Expr::neg(v("Y"))), v("Y"));
        let (out, fired) = rules.normalize(&e, 8);
        assert_eq!(out, v("X"));
        assert_eq!(fired, 2);
    }

    #[test]
    fn guarded_rule_respects_guard() {
        fn only_vars(b: &Bindings) -> bool {
            matches!(b.get(&0), Some(Expr::Var(_)))
        }
        let rule = RewriteRule::guarded(
            "demo",
            Expr::mul(w(0), Expr::Int(0)),
            Expr::Int(0),
            only_vars,
        );
        assert!(rule.try_rewrite(&Expr::mul(v("A"), Expr::Int(0))).is_some());
        assert!(rule
            .try_rewrite(&Expr::mul(Expr::index("B", vec![v("I")]), Expr::Int(0)))
            .is_none());
    }

    #[test]
    fn budget_bounds_runaway_rulesets() {
        // a deliberately looping rule x + y -> y + x
        let looping = RuleSet::new(vec![RewriteRule::new(
            "swap",
            Expr::add(w(0), w(1)),
            Expr::add(w(1), w(0)),
        )]);
        let e = Expr::add(v("A"), v("B"));
        let (_, fired) = looping.normalize(&e, 5);
        assert_eq!(fired, 5, "budget must cap the loop");
    }

    #[test]
    fn max_min_abs_idempotence() {
        let rules = algebra_rules();
        let e = Expr::call("MAX", vec![v("T"), v("T")]);
        assert_eq!(rules.normalize(&e, 4).0, v("T"));
        let e = Expr::call("ABS", vec![Expr::call("ABS", vec![v("Q")])]);
        assert_eq!(rules.normalize(&e, 4).0, Expr::call("ABS", vec![v("Q")]));
    }

    #[test]
    fn rules_are_semantics_preserving_on_samples() {
        // numeric spot-check: evaluate before/after over a grid
        let rules = algebra_rules();
        let exprs = [
            Expr::sub(Expr::add(v("I"), v("J")), v("J")),
            Expr::add(Expr::mul(v("I"), v("J")), Expr::mul(v("I"), Expr::int(3))),
            Expr::sub(v("I"), Expr::neg(v("J"))),
            Expr::mul(v("I"), Expr::Int(-1)),
        ];
        for e in exprs {
            let (out, _) = rules.normalize(&e, 8);
            for i in -3i64..4 {
                for j in -3i64..4 {
                    let eval = |ex: &Expr| -> i64 { eval_int(ex, i, j) };
                    assert_eq!(eval(&e), eval(&out), "{e} vs {out} at i={i}, j={j}");
                }
            }
        }
    }

    fn eval_int(e: &Expr, i: i64, j: i64) -> i64 {
        match e {
            Expr::Int(v) => *v,
            Expr::Var(n) if n == "I" => i,
            Expr::Var(n) if n == "J" => j,
            Expr::Un { op: crate::expr::UnOp::Neg, arg } => -eval_int(arg, i, j),
            Expr::Bin { op, lhs, rhs } => {
                let (a, b) = (eval_int(lhs, i, j), eval_int(rhs, i, j));
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    _ => panic!("unsupported in test"),
                }
            }
            Expr::Call { name, args } if name == "MAX" => {
                args.iter().map(|a| eval_int(a, i, j)).max().unwrap()
            }
            Expr::Call { name, args } if name == "ABS" => eval_int(&args[0], i, j).abs(),
            other => panic!("unsupported in test: {other:?}"),
        }
    }
}

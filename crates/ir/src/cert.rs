//! Machine-checkable legality certificates for loop-nest
//! transformations.
//!
//! The `nestdeps` analysis in `polaris-core` summarizes a loop nest as a
//! matrix of direction/distance vectors and judges candidate
//! transformations (interchange, rectangular tiling, adjacent-loop
//! fusion) against it. Every transformation the pipeline *applies* is
//! justified by a [`LegalityCert`] carrying the evidence the prover used:
//! the nest identification (loop ids + variables, in original order), the
//! dependence-vector matrix, and the judged transformation. The cert is
//! deliberately plain data living in the IR crate so that `polaris-verify`
//! can re-derive it from the transformed program *without* trusting the
//! pass that emitted it (the `idxprop` refusal pattern): a cert the
//! re-prover cannot reproduce is rejected, never believed.

use crate::stmt::LoopId;

/// One direction entry of a dependence vector, per nest loop
/// (outermost first). `Star` is the symbolic-fallback "any direction"
/// entry used when a pair falls outside the affine fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NestDir {
    /// `<` — source iteration strictly earlier in this loop.
    Lt,
    /// `=` — same iteration of this loop.
    Eq,
    /// `>` — source iteration strictly later (never stored in
    /// canonical vectors; appears only inside evidence rows).
    Gt,
    /// `*` — unknown / any direction (conservative fallback).
    Star,
}

impl NestDir {
    pub fn glyph(self) -> char {
        match self {
            NestDir::Lt => '<',
            NestDir::Eq => '=',
            NestDir::Gt => '>',
            NestDir::Star => '*',
        }
    }
}

/// One row of the nest's dependence matrix: a direction vector over the
/// nest loops with optional constant distances and the relaxability tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepVector {
    /// The array (or scalar) both endpoints touch.
    pub array: String,
    /// Direction per nest loop, outermost first.
    pub dirs: Vec<NestDir>,
    /// Constant dependence distance per loop where known (`None` when
    /// symbolic or direction-only).
    pub distance: Vec<Option<i64>>,
    /// Reduction dependence, relaxable under reordering (the Polly
    /// reductions model): both endpoints belong to validated reduction
    /// statements updating the same location with the same operator.
    pub relaxable: bool,
}

impl DepVector {
    /// Render like `A: (<, =) d=(1, 0)`.
    pub fn render(&self) -> String {
        let dirs: Vec<String> = self.dirs.iter().map(|d| d.glyph().to_string()).collect();
        let mut s = format!("{}: ({})", self.array, dirs.join(", "));
        if self.distance.iter().any(|d| d.is_some()) {
            let ds: Vec<String> = self
                .distance
                .iter()
                .map(|d| d.map(|v| v.to_string()).unwrap_or_else(|| "?".into()))
                .collect();
            s.push_str(&format!(" d=({})", ds.join(", ")));
        }
        if self.relaxable {
            s.push_str(" [relaxable]");
        }
        s
    }
}

/// The transformation a certificate claims legal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertKind {
    /// Permute the nest loops: `perm[k]` is the index (in the original
    /// order, outermost first) of the loop now at position `k`.
    Interchange { perm: Vec<usize> },
    /// Rectangular tiling of the innermost band: the band loops (by
    /// original position) and the tile size applied to each.
    Tile { band: Vec<usize>, sizes: Vec<i64> },
    /// Fuse the adjacent following loop into this one. `boundary` is the
    /// statement id of the first statement spliced from the second loop
    /// — the re-prover splits the fused body there.
    Fuse { fused_loop: LoopId, boundary: u32 },
}

impl CertKind {
    pub fn stage(&self) -> &'static str {
        match self {
            CertKind::Interchange { .. } => "interchange",
            CertKind::Tile { .. } => "tile",
            CertKind::Fuse { .. } => "fuse",
        }
    }

    /// Short human-readable description for `--diag` and reports.
    pub fn describe(&self) -> String {
        match self {
            CertKind::Interchange { perm } => {
                let p: Vec<String> = perm.iter().map(|i| i.to_string()).collect();
                format!("interchange perm=({})", p.join(","))
            }
            CertKind::Tile { band, sizes } => {
                let b: Vec<String> = band.iter().map(|i| i.to_string()).collect();
                let s: Vec<String> = sizes.iter().map(|i| i.to_string()).collect();
                format!("tile band=({}) sizes=({})", b.join(","), s.join(","))
            }
            CertKind::Fuse { fused_loop, boundary } => {
                format!("fuse {fused_loop} at stmt {boundary}")
            }
        }
    }
}

/// A machine-checkable claim that one applied nest transformation is
/// legal, with the dependence evidence the prover judged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalityCert {
    /// Unit the nest lives in.
    pub unit: String,
    /// The nest's outermost loop (after transformation, the anchor the
    /// re-prover locates the nest by).
    pub loop_id: LoopId,
    /// Label of the anchor loop, for humans.
    pub label: String,
    /// Nest loop variables in **original** (pre-transformation) order,
    /// outermost first.
    pub loop_vars: Vec<String>,
    /// The dependence matrix over `loop_vars` the prover judged
    /// (canonical lexicographically-non-negative rows).
    pub vectors: Vec<DepVector>,
    /// The judged transformation.
    pub kind: CertKind,
}

impl LegalityCert {
    pub fn stage(&self) -> &'static str {
        self.kind.stage()
    }
}

/// Verdict of the independent cert re-prover in `polaris-verify`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertCheck {
    /// Stage the cert attributes itself to (`interchange`/`tile`/`fuse`).
    pub stage: &'static str,
    pub unit: String,
    pub label: String,
    /// `true` — independently re-derived from the transformed IR.
    pub accepted: bool,
    /// Why the cert was rejected (empty when accepted).
    pub reason: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_vector_renders_compactly() {
        let v = DepVector {
            array: "A".into(),
            dirs: vec![NestDir::Lt, NestDir::Eq],
            distance: vec![Some(1), Some(0)],
            relaxable: false,
        };
        assert_eq!(v.render(), "A: (<, =) d=(1, 0)");
        let star = DepVector {
            array: "S".into(),
            dirs: vec![NestDir::Star],
            distance: vec![None],
            relaxable: true,
        };
        assert_eq!(star.render(), "S: (*) [relaxable]");
    }

    #[test]
    fn cert_kind_names_its_stage() {
        assert_eq!(CertKind::Interchange { perm: vec![1, 0] }.stage(), "interchange");
        assert_eq!(CertKind::Tile { band: vec![0, 1], sizes: vec![8, 8] }.stage(), "tile");
        assert_eq!(
            CertKind::Fuse { fused_loop: LoopId(4), boundary: 9 }.stage(),
            "fuse"
        );
        assert!(CertKind::Interchange { perm: vec![2, 0, 1] }
            .describe()
            .contains("perm=(2,0,1)"));
    }
}

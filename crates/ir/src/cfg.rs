//! Control-flow graph over the structured AST.
//!
//! Polaris guaranteed "that the control flow graph is consistent through
//! automatic updates as a transformation proceeds". With a structured AST
//! the CFG cannot drift from the statements: it is *derived* on demand
//! from the nesting structure, which provides the same guarantee by
//! construction. The graph is used by the GSA-flavoured reaching-
//! definition queries and is exercised heavily in tests as a consistency
//! oracle.

use crate::stmt::{StmtId, StmtKind, StmtList};
use std::collections::BTreeMap;

/// Basic-block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// A basic block: straight-line statements plus flow edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<StmtId>,
    pub succs: Vec<BlockId>,
    pub preds: Vec<BlockId>,
    /// For loop-header blocks, the id of the `DO` statement.
    pub loop_header: Option<StmtId>,
}

/// The control-flow graph of one statement list (usually a unit body).
#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    pub entry: BlockId,
    pub exit: BlockId,
}

impl Cfg {
    /// Build the CFG for `list`.
    pub fn build(list: &StmtList) -> Cfg {
        let mut b = Builder { blocks: vec![Block::default(), Block::default()] };
        let entry = BlockId(0);
        let exit = BlockId(1);
        let last = b.lower_list(list, entry);
        b.edge(last, exit);
        let mut cfg = Cfg { blocks: b.blocks, entry, exit };
        cfg.compute_preds();
        cfg
    }

    fn compute_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
        }
        let edges: Vec<(BlockId, BlockId)> = self
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.succs.iter().map(move |s| (BlockId(i), *s)))
            .collect();
        for (from, to) in edges {
            self.blocks[to.0].preds.push(from);
        }
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Immediate dominators (entry maps to itself). Cooper–Harvey–Kennedy
    /// iterative algorithm on a reverse-postorder traversal.
    pub fn dominators(&self) -> BTreeMap<BlockId, BlockId> {
        let rpo = self.reverse_postorder();
        let order_index: BTreeMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let mut idom: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        idom.insert(self.entry, self.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &self.blocks[b.0].preds {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &order_index),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        idom
    }

    /// Blocks in reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        self.dfs(self.entry, &mut visited, &mut post);
        post.reverse();
        post
    }

    fn dfs(&self, b: BlockId, visited: &mut Vec<bool>, post: &mut Vec<BlockId>) {
        if visited[b.0] {
            return;
        }
        visited[b.0] = true;
        for &s in &self.blocks[b.0].succs {
            self.dfs(s, visited, post);
        }
        post.push(b);
    }

    /// Does `a` dominate `b`?
    pub fn dominates(&self, a: BlockId, b: BlockId, idom: &BTreeMap<BlockId, BlockId>) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Block containing statement `id`, if any.
    pub fn block_of(&self, id: StmtId) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.stmts.contains(&id))
            .map(BlockId)
    }

    /// Consistency check: every edge endpoint exists, preds mirror succs.
    /// This is the CFG analogue of `p_assert`; tests run it after every
    /// transformation.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            for s in &b.succs {
                if s.0 >= self.blocks.len() {
                    return Err(format!("block {i} has dangling successor {}", s.0));
                }
                if !self.blocks[s.0].preds.contains(&BlockId(i)) {
                    return Err(format!("edge {i}->{} missing reverse pred", s.0));
                }
            }
            for p in &b.preds {
                if !self.blocks[p.0].succs.contains(&BlockId(i)) {
                    return Err(format!("pred edge {}->{i} missing forward succ", p.0));
                }
            }
        }
        Ok(())
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &BTreeMap<BlockId, BlockId>,
    order: &BTreeMap<BlockId, usize>,
) -> BlockId {
    // Walk both up the dominator tree until they meet. Nodes later in RPO
    // are "deeper".
    while a != b {
        while order.get(&a) > order.get(&b) {
            a = idom[&a];
        }
        while order.get(&b) > order.get(&a) {
            b = idom[&b];
        }
    }
    a
}

struct Builder {
    blocks: Vec<Block>,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() - 1)
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from.0].succs.contains(&to) {
            self.blocks[from.0].succs.push(to);
        }
    }

    /// Lower `list` starting in block `cur`; returns the block control
    /// falls out of.
    fn lower_list(&mut self, list: &StmtList, mut cur: BlockId) -> BlockId {
        for stmt in list {
            match &stmt.kind {
                StmtKind::Do(d) => {
                    let header = self.new_block();
                    self.blocks[header.0].stmts.push(stmt.id);
                    self.blocks[header.0].loop_header = Some(stmt.id);
                    self.edge(cur, header);
                    let body_entry = self.new_block();
                    self.edge(header, body_entry);
                    let body_exit = self.lower_list(&d.body, body_entry);
                    // back edge and fall-through
                    self.edge(body_exit, header);
                    let after = self.new_block();
                    self.edge(header, after);
                    cur = after;
                }
                StmtKind::IfBlock { arms, else_body } => {
                    // The branch decision lives in the current block.
                    self.blocks[cur.0].stmts.push(stmt.id);
                    let join = self.new_block();
                    let mut decision = cur;
                    for arm in arms {
                        let arm_entry = self.new_block();
                        self.edge(decision, arm_entry);
                        let arm_exit = self.lower_list(&arm.body, arm_entry);
                        self.edge(arm_exit, join);
                        // The "condition false" path flows to the next
                        // decision point.
                        let next_decision = self.new_block();
                        self.edge(decision, next_decision);
                        decision = next_decision;
                    }
                    if else_body.is_empty() {
                        self.edge(decision, join);
                    } else {
                        let else_exit = self.lower_list(else_body, decision);
                        self.edge(else_exit, join);
                    }
                    cur = join;
                }
                _ => {
                    self.blocks[cur.0].stmts.push(stmt.id);
                }
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(body: &str) -> (Cfg, StmtList) {
        let src = format!("program t\n{body}\nend\n");
        let unit = crate::parse(&src).unwrap().units.remove(0);
        (Cfg::build(&unit.body), unit.body)
    }

    #[test]
    fn straight_line_is_two_plus_entry_blocks() {
        let (cfg, _) = cfg_of("x = 1\ny = 2");
        cfg.check_consistency().unwrap();
        // entry block holds both statements and flows to exit
        assert_eq!(cfg.blocks[cfg.entry.0].stmts.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry.0].succs, vec![cfg.exit]);
    }

    #[test]
    fn loop_creates_back_edge() {
        let (cfg, _) = cfg_of("do i = 1, 10\n  x = i\nend do");
        cfg.check_consistency().unwrap();
        // find the header: block with loop_header set
        let header = cfg
            .blocks
            .iter()
            .position(|b| b.loop_header.is_some())
            .map(BlockId)
            .unwrap();
        // header must have 2 successors (body, after) and an incoming
        // back edge from the body.
        assert_eq!(cfg.blocks[header.0].succs.len(), 2);
        assert!(cfg.blocks[header.0].preds.len() >= 2);
    }

    #[test]
    fn if_creates_diamond() {
        let (cfg, _) = cfg_of("if (x > 0) then\n  y = 1\nelse\n  y = 2\nend if\nz = 3");
        cfg.check_consistency().unwrap();
        let rpo = cfg.reverse_postorder();
        assert!(rpo.len() >= 4);
        let idom = cfg.dominators();
        // entry dominates everything reachable
        for b in rpo {
            assert!(cfg.dominates(cfg.entry, b, &idom));
        }
    }

    #[test]
    fn dominators_of_nested_loop() {
        let (cfg, _) = cfg_of("do i = 1, 4\n  do j = 1, 4\n    x = 1\n  end do\nend do");
        cfg.check_consistency().unwrap();
        let idom = cfg.dominators();
        let headers: Vec<BlockId> = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.loop_header.is_some())
            .map(|(i, _)| BlockId(i))
            .collect();
        assert_eq!(headers.len(), 2);
        // outer header dominates inner header
        assert!(cfg.dominates(headers[0], headers[1], &idom));
        assert!(!cfg.dominates(headers[1], headers[0], &idom));
    }

    #[test]
    fn block_of_finds_statements() {
        let (cfg, body) = cfg_of("x = 1\ndo i = 1, 2\n  y = 2\nend do");
        let mut ids = Vec::new();
        body.walk(&mut |s| ids.push(s.id));
        for id in ids {
            assert!(cfg.block_of(id).is_some(), "{id} not placed in any block");
        }
    }
}

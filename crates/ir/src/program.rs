//! Programs and program units.

use crate::stmt::{StmtId, StmtList};
use crate::symbol::SymbolTable;
use crate::types::DataType;

/// Kind of a program unit.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitKind {
    /// The main `PROGRAM`.
    Program,
    /// A `SUBROUTINE`.
    Subroutine,
    /// A `FUNCTION` with its result type.
    Function(DataType),
}

/// A `COMMON /name/ a, b, c` block declaration inside a unit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonBlock {
    pub name: String,
    pub vars: Vec<String>,
}

/// One Fortran program unit: name, dummy arguments, symbol table, body.
///
/// Mirrors the Polaris `ProgramUnit` — "a container for the various data
/// structure elements that make up a Fortran program unit including
/// statements, a symbol table, common blocks".
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramUnit {
    pub name: String,
    pub kind: UnitKind,
    /// Dummy argument names, in order.
    pub args: Vec<String>,
    pub symbols: SymbolTable,
    pub commons: Vec<CommonBlock>,
    pub body: StmtList,
    /// Next fresh statement id (monotone; parser sets past the maximum).
    next_stmt_id: u32,
}

impl ProgramUnit {
    pub fn new(name: impl Into<String>, kind: UnitKind) -> ProgramUnit {
        ProgramUnit {
            name: name.into().to_ascii_uppercase(),
            kind,
            args: Vec::new(),
            symbols: SymbolTable::new(),
            commons: Vec::new(),
            body: StmtList::new(),
            next_stmt_id: 0,
        }
    }

    /// Allocate a fresh statement id for a synthesized statement.
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt_id);
        self.next_stmt_id += 1;
        id
    }

    /// Inform the unit that ids up to `max` are in use (parser / merge).
    pub fn reserve_stmt_ids(&mut self, max_used: u32) {
        self.next_stmt_id = self.next_stmt_id.max(max_used + 1);
    }

    /// Highest id handed out so far plus one.
    pub fn stmt_id_watermark(&self) -> u32 {
        self.next_stmt_id
    }

    pub fn is_main(&self) -> bool {
        matches!(self.kind, UnitKind::Program)
    }
}

/// A whole program: an ordered collection of program units.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub units: Vec<ProgramUnit>,
}

impl Program {
    pub fn new() -> Program {
        Program::default()
    }

    /// The main program unit, if present.
    pub fn main(&self) -> Option<&ProgramUnit> {
        self.units.iter().find(|u| u.is_main())
    }

    pub fn main_mut(&mut self) -> Option<&mut ProgramUnit> {
        self.units.iter_mut().find(|u| u.is_main())
    }

    /// Look a unit up by (case-insensitive) name.
    pub fn unit(&self, name: &str) -> Option<&ProgramUnit> {
        let name = name.to_ascii_uppercase();
        self.units.iter().find(|u| u.name == name)
    }

    pub fn unit_mut(&mut self, name: &str) -> Option<&mut ProgramUnit> {
        let name = name.to_ascii_uppercase();
        self.units.iter_mut().find(|u| u.name == name)
    }

    /// Add a unit (the Polaris `Program::add` member function). Replaces
    /// any existing unit of the same name.
    pub fn add_unit(&mut self, unit: ProgramUnit) {
        self.units.retain(|u| u.name != unit.name);
        self.units.push(unit);
    }

    /// Merge another program's units into this one (Polaris supported
    /// "merging Programs" for multi-file compilation).
    pub fn merge(&mut self, other: Program) {
        for u in other.units {
            self.add_unit(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_monotone_and_respect_reserve() {
        let mut u = ProgramUnit::new("main", UnitKind::Program);
        let a = u.fresh_stmt_id();
        u.reserve_stmt_ids(100);
        let b = u.fresh_stmt_id();
        assert!(b.0 > a.0);
        assert_eq!(b.0, 101);
    }

    #[test]
    fn add_unit_replaces_same_name() {
        let mut p = Program::new();
        p.add_unit(ProgramUnit::new("SUB", UnitKind::Subroutine));
        p.add_unit(ProgramUnit::new("sub", UnitKind::Subroutine));
        assert_eq!(p.units.len(), 1);
    }

    #[test]
    fn merge_combines_units() {
        let mut a = Program::new();
        a.add_unit(ProgramUnit::new("MAIN", UnitKind::Program));
        let mut b = Program::new();
        b.add_unit(ProgramUnit::new("HELPER", UnitKind::Subroutine));
        a.merge(b);
        assert_eq!(a.units.len(), 2);
        assert!(a.main().is_some());
        assert!(a.unit("helper").is_some());
    }
}

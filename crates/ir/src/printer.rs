//! Unparser: regenerate F-Mini source from the IR.
//!
//! Polaris was a source-to-source restructurer; its final product was
//! annotated Fortran for the target machine's compiler (Cray T3D, SGI
//! Challenge). This module plays that role: it prints declarations and
//! executable statements, and renders [`crate::stmt::ParallelInfo`] as
//! `!$POLARIS DOALL ...` directives that [`crate::parser`] can read back
//! (round-trip tested).

use crate::expr::{BinOp, Expr, LValue, UnOp};
use crate::program::{Program, ProgramUnit, UnitKind};
use crate::stmt::{DoLoop, Stmt, StmtKind, StmtList};
use crate::symbol::SymKind;
use std::fmt::Write as _;

/// Pretty-print a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, unit) in program.units.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_unit(unit, &mut out);
    }
    out
}

/// Pretty-print a single program unit.
pub fn print_unit(unit: &ProgramUnit, out: &mut String) {
    match &unit.kind {
        UnitKind::Program => {
            let _ = writeln!(out, "      PROGRAM {}", unit.name);
        }
        UnitKind::Subroutine => {
            let _ = writeln!(out, "      SUBROUTINE {}({})", unit.name, unit.args.join(", "));
        }
        UnitKind::Function(ty) => {
            let _ = writeln!(
                out,
                "      {} FUNCTION {}({})",
                ty.keyword(),
                unit.name,
                unit.args.join(", ")
            );
        }
    }
    print_declarations(unit, out);
    print_stmts(&unit.body, out, 1);
    let _ = writeln!(out, "      END");
}

fn print_declarations(unit: &ProgramUnit, out: &mut String) {
    // Parameters must print after type declarations of the same names;
    // group as: type decls (scalars+arrays), PARAMETER, COMMON.
    let mut params = Vec::new();
    for sym in unit.symbols.iter() {
        match &sym.kind {
            SymKind::Scalar => {
                // Skip implicitly-typed scalars to keep output compact —
                // they re-enter the table identically on re-parse.
                if sym.ty != crate::types::DataType::implicit_for(&sym.name) || sym.is_arg {
                    let _ = writeln!(out, "      {} {}", sym.ty.keyword(), sym.name);
                }
            }
            SymKind::Array(dims) => {
                let dims: Vec<String> = dims
                    .iter()
                    .map(|d| {
                        if d.lo == Expr::Int(1) {
                            format_expr(&d.hi)
                        } else {
                            format!("{}:{}", format_expr(&d.lo), format_expr(&d.hi))
                        }
                    })
                    .collect();
                let _ =
                    writeln!(out, "      {} {}({})", sym.ty.keyword(), sym.name, dims.join(", "));
            }
            SymKind::Parameter(value) => {
                let _ = writeln!(out, "      {} {}", sym.ty.keyword(), sym.name);
                params.push(format!("{} = {}", sym.name, format_expr(value)));
            }
            SymKind::External => {}
        }
    }
    for p in params {
        let _ = writeln!(out, "      PARAMETER ({p})");
    }
    for c in &unit.commons {
        let _ = writeln!(out, "      COMMON /{}/ {}", c.name, c.vars.join(", "));
    }
}

fn indent(out: &mut String, level: usize) {
    out.push_str("      ");
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmts(list: &StmtList, out: &mut String, level: usize) {
    for stmt in list {
        print_stmt(stmt, out, level);
    }
}

fn print_stmt(stmt: &Stmt, out: &mut String, level: usize) {
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs, .. } => {
            indent(out, level);
            let _ = writeln!(out, "{} = {}", format_expr(&lhs.as_expr()), format_expr(rhs));
        }
        StmtKind::Do(d) => {
            print_doall_directive(d, out);
            indent(out, level);
            match &d.step {
                Some(step) => {
                    let _ = writeln!(
                        out,
                        "DO {} = {}, {}, {}",
                        d.var,
                        format_expr(&d.init),
                        format_expr(&d.limit),
                        format_expr(step)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "DO {} = {}, {}",
                        d.var,
                        format_expr(&d.init),
                        format_expr(&d.limit)
                    );
                }
            }
            print_stmts(&d.body, out, level + 1);
            indent(out, level);
            out.push_str("END DO\n");
        }
        StmtKind::IfBlock { arms, else_body } => {
            for (i, arm) in arms.iter().enumerate() {
                indent(out, level);
                if i == 0 {
                    let _ = writeln!(out, "IF ({}) THEN", format_expr(&arm.cond));
                } else {
                    let _ = writeln!(out, "ELSE IF ({}) THEN", format_expr(&arm.cond));
                }
                print_stmts(&arm.body, out, level + 1);
            }
            if !else_body.is_empty() {
                indent(out, level);
                out.push_str("ELSE\n");
                print_stmts(else_body, out, level + 1);
            }
            indent(out, level);
            out.push_str("END IF\n");
        }
        StmtKind::Call { name, args } => {
            indent(out, level);
            let args: Vec<String> = args.iter().map(format_expr).collect();
            let _ = writeln!(out, "CALL {name}({})", args.join(", "));
        }
        StmtKind::Print { items } => {
            indent(out, level);
            let items: Vec<String> = items.iter().map(format_expr).collect();
            let _ = writeln!(out, "PRINT *, {}", items.join(", "));
        }
        StmtKind::Return => {
            indent(out, level);
            out.push_str("RETURN\n");
        }
        StmtKind::Stop => {
            indent(out, level);
            out.push_str("STOP\n");
        }
        StmtKind::Continue => {
            indent(out, level);
            out.push_str("CONTINUE\n");
        }
        StmtKind::Assert { cond } => {
            let _ = writeln!(out, "!$ASSERT ({})", format_expr(cond));
        }
    }
}

fn print_doall_directive(d: &DoLoop, out: &mut String) {
    let par = &d.par;
    if !par.parallel && par.speculative.is_none() {
        return;
    }
    let mut line = String::from("!$POLARIS DOALL");
    if let Some(spec) = &par.speculative {
        let mut items = Vec::new();
        for t in &spec.tracked {
            if spec.privatized.contains(t) {
                items.push(format!("{t}*"));
            } else {
                items.push(t.clone());
            }
        }
        let _ = write!(line, " SPECULATIVE({})", items.join(", "));
    }
    if !par.private.is_empty() {
        let _ = write!(line, " PRIVATE({})", par.private.join(", "));
    }
    if !par.reductions.is_empty() {
        let items: Vec<String> = par
            .reductions
            .iter()
            .map(|r| {
                if r.histogram {
                    format!("{}:{}[]", r.op.fortran(), r.var)
                } else {
                    format!("{}:{}", r.op.fortran(), r.var)
                }
            })
            .collect();
        let _ = write!(line, " REDUCTION({})", items.join(", "));
    }
    if !par.copy_out.is_empty() {
        let _ = write!(line, " LASTPRIVATE({})", par.copy_out.join(", "));
    }
    if !par.lastvalue.is_empty() {
        let items: Vec<String> =
            par.lastvalue.iter().map(|(n, e)| format!("{n} = {}", format_expr(e))).collect();
        let _ = write!(line, " LASTVALUE({})", items.join(", "));
    }
    out.push_str(&line);
    out.push('\n');
}

/// Format a single expression as Fortran text with minimal parentheses.
pub fn format_expr(e: &Expr) -> String {
    let mut s = String::new();
    fmt_expr(e, 0, &mut s);
    s
}

/// Precedence levels: higher binds tighter.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Bin { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
            BinOp::Pow => 7,
        },
        Expr::Un { op: UnOp::Not, .. } => 3,
        Expr::Un { op: UnOp::Neg, .. } => 5,
        // Negative literals print with a leading `-`, which re-parses as
        // unary minus; give them the same precedence so parentheses are
        // inserted where the sign would otherwise re-bind (e.g. the left
        // operand of `**`).
        Expr::Int(v) if *v < 0 => 5,
        Expr::Real(v) if *v < 0.0 => 5,
        _ => 10,
    }
}

fn fmt_expr(e: &Expr, parent_prec: u8, out: &mut String) {
    let my_prec = prec(e);
    let need_parens = my_prec < parent_prec;
    if need_parens {
        out.push('(');
    }
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Real(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Logical(b) => out.push_str(if *b { ".TRUE." } else { ".FALSE." }),
        Expr::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Index { array, subs } => {
            out.push_str(array);
            out.push('(');
            for (i, s) in subs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                fmt_expr(s, 0, out);
            }
            out.push(')');
        }
        Expr::Call { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                fmt_expr(a, 0, out);
            }
            out.push(')');
        }
        Expr::Un { op, arg } => {
            match op {
                UnOp::Neg => out.push('-'),
                UnOp::Not => out.push_str(".NOT. "),
            }
            // Negation of a sum needs parens: -(a+b); same precedence
            // forces them via `my_prec + 1`.
            fmt_expr(arg, my_prec + 1, out);
        }
        Expr::Bin { op, lhs, rhs } => {
            // `**` is right-associative: its left child needs parens at
            // equal precedence. Every other operator is left-associative:
            // its right child needs parens at equal precedence — kept
            // even for `+`/`*` so the re-parsed tree is structurally
            // identical (exact round-trip, relied on by the tests).
            let lp = if matches!(op, BinOp::Pow) { my_prec + 1 } else { my_prec };
            let rp = if matches!(op, BinOp::Pow) { my_prec } else { my_prec + 1 };
            fmt_expr(lhs, lp, out);
            match op {
                BinOp::Pow => out.push_str("**"),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    out.push_str(op.fortran());
                }
                _ => {
                    out.push(' ');
                    out.push_str(op.fortran());
                    out.push(' ');
                }
            }
            fmt_expr(rhs, rp, out);
        }
        Expr::Wildcard(id) => {
            let _ = write!(out, "_W{id}");
        }
    }
    if need_parens {
        out.push(')');
    }
}

/// Format a left-hand side.
pub fn format_lvalue(lv: &LValue) -> String {
    format_expr(&lv.as_expr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn roundtrip(src: &str) -> (Program, Program) {
        let p1 = crate::parse(src).unwrap();
        let text = print_program(&p1);
        let p2 = crate::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{text}"));
        (p1, p2)
    }

    #[test]
    fn expr_formatting_minimal_parens() {
        let e = Expr::mul(Expr::add(Expr::var("A"), Expr::var("B")), Expr::var("C"));
        assert_eq!(format_expr(&e), "(A+B)*C");
        let e = Expr::add(Expr::var("A"), Expr::mul(Expr::var("B"), Expr::var("C")));
        assert_eq!(format_expr(&e), "A+B*C");
        let e = Expr::sub(Expr::var("A"), Expr::sub(Expr::var("B"), Expr::var("C")));
        assert_eq!(format_expr(&e), "A-(B-C)");
        let e = Expr::sub(Expr::sub(Expr::var("A"), Expr::var("B")), Expr::var("C"));
        assert_eq!(format_expr(&e), "A-B-C");
        let e = Expr::neg(Expr::add(Expr::var("A"), Expr::var("B")));
        assert_eq!(format_expr(&e), "-(A+B)");
    }

    #[test]
    fn pow_right_assoc_print() {
        let e = Expr::bin(
            BinOp::Pow,
            Expr::var("A"),
            Expr::bin(BinOp::Pow, Expr::var("B"), Expr::var("C")),
        );
        assert_eq!(format_expr(&e), "A**B**C");
        let e = Expr::bin(
            BinOp::Pow,
            Expr::bin(BinOp::Pow, Expr::var("A"), Expr::var("B")),
            Expr::var("C"),
        );
        assert_eq!(format_expr(&e), "(A**B)**C");
    }

    #[test]
    fn roundtrip_simple_program() {
        let src = "program t\ninteger n\nparameter (n = 8)\nreal a(n)\ndo i = 1, n\n  a(i) = i*2\nend do\nprint *, a(1)\nend\n";
        let (p1, p2) = roundtrip(src);
        // Compare structurally modulo statement ids/lines.
        assert_eq!(p1.units[0].body.loops().len(), p2.units[0].body.loops().len());
        assert_eq!(
            format_expr(&p1.units[0].body.loops()[0].limit),
            format_expr(&p2.units[0].body.loops()[0].limit)
        );
    }

    #[test]
    fn roundtrip_preserves_doall_directive() {
        let src = "program t\nreal s\n!$polaris doall private(X) reduction(+:S)\ndo i = 1, 10\n  s = s + 1.0\nend do\nend\n";
        let (p1, p2) = roundtrip(src);
        let d1 = &p1.units[0].body.loops()[0].par;
        let d2 = &p2.units[0].body.loops()[0].par;
        assert_eq!(d1.parallel, d2.parallel);
        assert_eq!(d1.private, d2.private);
        assert_eq!(d1.reductions, d2.reductions);
    }

    #[test]
    fn roundtrip_if_else() {
        let src = "program t\nif (x > 0) then\n  y = 1\nelse\n  y = 2\nend if\nend\n";
        let (p1, p2) = roundtrip(src);
        assert_eq!(p1.units[0].body.len(), p2.units[0].body.len());
    }

    #[test]
    fn string_literal_escaping() {
        let e = Expr::Str("it's".into());
        assert_eq!(format_expr(&e), "'it''s'");
    }
}

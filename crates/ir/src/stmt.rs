//! Statements and statement lists.
//!
//! Polaris kept statements in a flat `StmtList` with multi-block
//! well-formedness checks (a `DoStmt` must have its `EndDoStmt`, etc.).
//! F-Mini has no `GOTO`, so the IR can afford a *structured* representation:
//! `DO` and block-`IF` own their bodies. The `StmtList` wrapper supplies the
//! high-level member functions the paper describes — iterators over
//! selected statement kinds, well-formed sublist manipulation — and
//! well-formedness is guaranteed by construction rather than by run-time
//! checks on block boundaries.

use crate::expr::{Expr, LValue, RedOp};
use std::fmt;

/// Unique statement identity within a [`crate::ProgramUnit`].
///
/// Passes use ids to refer to statements across analyses (e.g. the
/// dependence graph); ids are assigned by the parser and by
/// [`crate::ProgramUnit::fresh_stmt_id`] for synthesized statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Stable provenance identity of a `DO` loop within a
/// [`crate::ProgramUnit`].
///
/// Unlike the human-readable [`DoLoop::label`], which passes may rewrite
/// (inlining suffixes the expansion site), a `LoopId` is assigned once —
/// at parse time or when a pass synthesizes/splices a loop — and then
/// survives every transformation untouched. It is the join key between
/// compile-time verdicts ([`ParallelInfo`], `LoopReport`) and run-time
/// observations (the machine's dependence oracle), so the invariants are
/// strict: ids are unique per unit (enforced by
/// [`crate::validate::validate_unit`]) and a transformed loop keeps the
/// id of the source loop it descends from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A statement: id + source line + kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub id: StmtId,
    /// 1-based source line (0 for synthesized statements).
    pub line: u32,
    pub kind: StmtKind,
}

impl Stmt {
    pub fn new(id: StmtId, line: u32, kind: StmtKind) -> Stmt {
        Stmt { id, line, kind }
    }

    /// Shorthand for an assignment statement.
    pub fn assign(id: StmtId, lhs: LValue, rhs: Expr) -> Stmt {
        Stmt::new(id, 0, StmtKind::Assign { lhs, rhs, reduction: None })
    }

    /// Is this a `DO` loop?
    pub fn as_do(&self) -> Option<&DoLoop> {
        match &self.kind {
            StmtKind::Do(d) => Some(d),
            _ => None,
        }
    }

    pub fn as_do_mut(&mut self) -> Option<&mut DoLoop> {
        match &mut self.kind {
            StmtKind::Do(d) => Some(d),
            _ => None,
        }
    }
}

/// An `IF`/`ELSE IF` arm of a block `IF`.
#[derive(Debug, Clone, PartialEq)]
pub struct IfArm {
    pub cond: Expr,
    pub body: StmtList,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `lhs = rhs`. `reduction` is set by the reduction-recognition pass
    /// when the statement is a validated reduction update (§3.2); the
    /// code generator and the machine model treat such statements
    /// specially inside parallel loops.
    Assign { lhs: LValue, rhs: Expr, reduction: Option<RedOp> },
    /// A `DO` loop (boxed: `DoLoop` is large).
    Do(Box<DoLoop>),
    /// Block `IF` with zero or more `ELSE IF` arms and an optional `ELSE`.
    /// A logical `IF (c) stmt` is desugared to a single-arm block.
    IfBlock { arms: Vec<IfArm>, else_body: StmtList },
    /// `CALL name(args)`.
    Call { name: String, args: Vec<Expr> },
    /// `PRINT *, items`.
    Print { items: Vec<Expr> },
    Return,
    Stop,
    Continue,
    /// `!$ASSERT <relation>` — a user assertion consumed by range
    /// propagation (Polaris had equivalent command-line assertion
    /// facilities for symbolic analysis).
    Assert { cond: Expr },
}

/// Reduction descriptor attached to a parallel loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// Scalar or array name being reduced into.
    pub var: String,
    pub op: RedOp,
    /// True for *histogram* reductions (different iterations may update
    /// different elements of an array); false for single-address
    /// reductions (§3.2).
    pub histogram: bool,
}

/// Run-time (speculative) parallelization request attached to a loop by
/// the compile-time analysis when it cannot prove independence (§3.5).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecInfo {
    /// Arrays whose accesses must be shadow-tracked by the PD test.
    pub tracked: Vec<String>,
    /// Arrays among `tracked` that are speculatively privatized.
    pub privatized: Vec<String>,
}

/// Parallelization annotations attached to a `DO` loop by the passes;
/// rendered as `!$POLARIS DOALL ...` directives by the unparser.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParallelInfo {
    /// Proven parallel (a DOALL).
    pub parallel: bool,
    /// Variables/arrays given per-iteration private copies (§3.4).
    pub private: Vec<String>,
    /// Scalar last-value assignments `(name, closed-form at loop exit)`
    /// required because a privatized scalar is live after the loop.
    pub lastvalue: Vec<(String, Expr)>,
    /// Privatized variables whose value from the *last* iteration must
    /// survive the loop (OpenMP "lastprivate"); used when no closed form
    /// exists but the final write is unconditional.
    pub copy_out: Vec<String>,
    /// Validated reductions (§3.2).
    pub reductions: Vec<Reduction>,
    /// Speculative run-time parallelization (§3.5); mutually exclusive
    /// with `parallel`.
    pub speculative: Option<SpecInfo>,
    /// Why the loop was left serial (diagnostics; mirrors Polaris'
    /// listing output).
    pub serial_reason: Option<String>,
}

impl ParallelInfo {
    /// True if the loop will execute concurrently (proven or speculative).
    pub fn is_concurrent(&self) -> bool {
        self.parallel || self.speculative.is_some()
    }
}

/// A `DO var = init, limit [, step]` loop and its body.
#[derive(Debug, Clone, PartialEq)]
pub struct DoLoop {
    pub var: String,
    pub init: Expr,
    pub limit: Expr,
    /// `None` means step 1.
    pub step: Option<Expr>,
    pub body: StmtList,
    /// Parallelization annotations (the "assertions" Polaris attached).
    pub par: ParallelInfo,
    /// Stable human-readable label, e.g. `OLDA_do100`; assigned by the
    /// parser (`<unit>_do<line>`) and preserved by transformations so the
    /// evaluation harness can report per-loop results like the paper's
    /// `NLFILT/300` notation.
    pub label: String,
    /// Stable provenance id (see [`LoopId`]): the join key between this
    /// loop's compile-time verdict and run-time observations of it.
    pub loop_id: LoopId,
}

impl DoLoop {
    /// The step expression, defaulting to 1.
    pub fn step_expr(&self) -> Expr {
        self.step.clone().unwrap_or(Expr::Int(1))
    }

    /// True if the step is a known positive constant.
    pub fn step_is_positive_const(&self) -> bool {
        self.step_expr().simplified().as_int().map(|s| s > 0).unwrap_or(false)
    }
}

/// An owned, ordered list of statements with high-level member functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StmtList(pub Vec<Stmt>);

impl StmtList {
    pub fn new() -> StmtList {
        StmtList(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn push(&mut self, stmt: Stmt) {
        self.0.push(stmt);
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Stmt> {
        self.0.iter()
    }

    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Stmt> {
        self.0.iter_mut()
    }

    /// Total number of statements including nested bodies.
    pub fn total_statements(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Pre-order walk over every statement, descending into loop and IF
    /// bodies. This is the analogue of the Polaris statement iterator
    /// "over selected parts of the statement list".
    pub fn walk(&self, f: &mut dyn FnMut(&Stmt)) {
        for s in &self.0 {
            f(s);
            match &s.kind {
                StmtKind::Do(d) => d.body.walk(f),
                StmtKind::IfBlock { arms, else_body } => {
                    for arm in arms {
                        arm.body.walk(f);
                    }
                    else_body.walk(f);
                }
                _ => {}
            }
        }
    }

    /// Mutable pre-order walk.
    pub fn walk_mut(&mut self, f: &mut dyn FnMut(&mut Stmt)) {
        for s in &mut self.0 {
            f(s);
            match &mut s.kind {
                StmtKind::Do(d) => d.body.walk_mut(f),
                StmtKind::IfBlock { arms, else_body } => {
                    for arm in arms {
                        arm.body.walk_mut(f);
                    }
                    else_body.walk_mut(f);
                }
                _ => {}
            }
        }
    }

    /// All `DO` loops, outermost first (pre-order).
    pub fn loops(&self) -> Vec<&DoLoop> {
        let mut out = Vec::new();
        fn rec<'a>(list: &'a StmtList, out: &mut Vec<&'a DoLoop>) {
            for s in &list.0 {
                match &s.kind {
                    StmtKind::Do(d) => {
                        out.push(d);
                        rec(&d.body, out);
                    }
                    StmtKind::IfBlock { arms, else_body } => {
                        for arm in arms {
                            rec(&arm.body, out);
                        }
                        rec(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        rec(self, &mut out);
        out
    }

    /// Find a loop by label anywhere in the list.
    pub fn find_loop(&self, label: &str) -> Option<&DoLoop> {
        self.loops().into_iter().find(|d| d.label == label)
    }

    /// Find (a clone of) a statement by id anywhere in the list. Callers
    /// needing in-place access use `walk_mut`.
    pub fn find_stmt(&self, id: StmtId) -> Option<Stmt> {
        let mut found = None;
        self.walk(&mut |s| {
            if s.id == id && found.is_none() {
                found = Some(s.clone());
            }
        });
        found
    }

    /// Apply an expression rewrite to every expression in every statement
    /// (assignment RHS/LHS subscripts, loop bounds, conditions, call and
    /// print arguments). The rewrite runs bottom-up within each tree.
    pub fn map_exprs(&mut self, f: &mut dyn FnMut(Expr) -> Expr) {
        for s in &mut self.0 {
            map_stmt_exprs(s, f);
        }
    }

    /// Iterate over every expression in every statement (read-only),
    /// mirroring the Polaris "iterator which traverses all of the
    /// expressions contained in the statement".
    pub fn for_each_expr(&self, f: &mut dyn FnMut(&Expr)) {
        for s in &self.0 {
            for_each_stmt_expr(s, f);
        }
    }
}

/// Apply an expression rewrite to all expressions of a single statement,
/// recursing into nested bodies.
pub fn map_stmt_exprs(s: &mut Stmt, f: &mut dyn FnMut(Expr) -> Expr) {
    match &mut s.kind {
        StmtKind::Assign { lhs, rhs, .. } => {
            *lhs = lhs.map_subs(f);
            *rhs = rhs.map(f);
        }
        StmtKind::Do(d) => {
            d.init = d.init.map(f);
            d.limit = d.limit.map(f);
            if let Some(step) = &mut d.step {
                *step = step.map(f);
            }
            d.body.map_exprs(f);
        }
        StmtKind::IfBlock { arms, else_body } => {
            for arm in arms {
                arm.cond = arm.cond.map(f);
                arm.body.map_exprs(f);
            }
            else_body.map_exprs(f);
        }
        StmtKind::Call { args, .. } => {
            for a in args.iter_mut() {
                *a = a.map(f);
            }
        }
        StmtKind::Print { items } => {
            for a in items.iter_mut() {
                *a = a.map(f);
            }
        }
        StmtKind::Assert { cond } => *cond = cond.map(f),
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
    }
}

/// Visit all expressions of a single statement (recursing into bodies).
pub fn for_each_stmt_expr(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match &s.kind {
        StmtKind::Assign { lhs, rhs, .. } => {
            for sub in lhs.subs() {
                sub.for_each(f);
            }
            rhs.for_each(f);
        }
        StmtKind::Do(d) => {
            d.init.for_each(f);
            d.limit.for_each(f);
            if let Some(step) = &d.step {
                step.for_each(f);
            }
            d.body.for_each_expr(f);
        }
        StmtKind::IfBlock { arms, else_body } => {
            for arm in arms {
                arm.cond.for_each(f);
                arm.body.for_each_expr(f);
            }
            else_body.for_each_expr(f);
        }
        StmtKind::Call { args, .. } => args.iter().for_each(|a| a.for_each(f)),
        StmtKind::Print { items } => items.iter().for_each(|a| a.for_each(f)),
        StmtKind::Assert { cond } => cond.for_each(f),
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue => {}
    }
}

impl<'a> IntoIterator for &'a StmtList {
    type Item = &'a Stmt;
    type IntoIter = std::slice::Iter<'a, Stmt>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl FromIterator<Stmt> for StmtList {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        StmtList(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn sid(n: u32) -> StmtId {
        StmtId(n)
    }

    fn simple_loop() -> Stmt {
        let body = StmtList(vec![Stmt::assign(
            sid(2),
            LValue::Index { array: "A".into(), subs: vec![Expr::var("I")] },
            Expr::var("I"),
        )]);
        Stmt::new(
            sid(1),
            1,
            StmtKind::Do(Box::new(DoLoop {
                var: "I".into(),
                init: Expr::int(1),
                limit: Expr::var("N"),
                step: None,
                body,
                par: ParallelInfo::default(),
                label: "T_do1".into(),
                loop_id: LoopId(1),
            })),
        )
    }

    #[test]
    fn walk_descends_into_bodies() {
        let list = StmtList(vec![simple_loop()]);
        assert_eq!(list.total_statements(), 2);
        let mut ids = Vec::new();
        list.walk(&mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn loops_returns_preorder() {
        let inner = simple_loop();
        let outer = Stmt::new(
            sid(10),
            1,
            StmtKind::Do(Box::new(DoLoop {
                var: "J".into(),
                init: Expr::int(1),
                limit: Expr::int(10),
                step: None,
                body: StmtList(vec![inner]),
                par: ParallelInfo::default(),
                label: "T_do0".into(),
                loop_id: LoopId(10),
            })),
        );
        let list = StmtList(vec![outer]);
        let labels: Vec<_> = list.loops().iter().map(|d| d.label.clone()).collect();
        assert_eq!(labels, vec!["T_do0", "T_do1"]);
        assert!(list.find_loop("T_do1").is_some());
        assert!(list.find_loop("nope").is_none());
    }

    #[test]
    fn map_exprs_rewrites_bounds_and_subscripts() {
        let mut list = StmtList(vec![simple_loop()]);
        list.map_exprs(&mut |e| match e {
            Expr::Var(ref n) if n == "N" => Expr::int(100),
            other => other,
        });
        let d = list.loops()[0];
        assert_eq!(d.limit, Expr::int(100));
    }

    #[test]
    fn for_each_expr_sees_subscripts() {
        let list = StmtList(vec![simple_loop()]);
        let mut vars = Vec::new();
        list.for_each_expr(&mut |e| {
            if let Expr::Var(n) = e {
                vars.push(n.clone());
            }
        });
        // init=1, limit=N, lhs sub I, rhs I
        assert!(vars.contains(&"N".to_string()));
        assert_eq!(vars.iter().filter(|v| *v == "I").count(), 2);
    }

    #[test]
    fn step_defaults_to_one() {
        let s = simple_loop();
        let d = s.as_do().unwrap();
        assert_eq!(d.step_expr(), Expr::int(1));
        assert!(d.step_is_positive_const());
    }
}

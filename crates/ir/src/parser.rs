//! Recursive-descent parser for F-Mini.
//!
//! Produces a [`Program`] of [`ProgramUnit`]s. Declarations populate the
//! symbol table; undeclared identifiers are entered lazily with Fortran
//! implicit typing when first referenced. `!$POLARIS DOALL` directives
//! (as emitted by [`crate::printer`]) are parsed back onto the following
//! `DO` loop, which gives the unparser/parser pair a round-trip property
//! the test suite exploits.

use crate::error::{CompileError, Result};
use crate::expr::{is_intrinsic, BinOp, Expr, LValue, RedOp, UnOp};
use crate::lexer::lex;
use crate::program::{CommonBlock, Program, ProgramUnit, UnitKind};
use crate::stmt::{
    DoLoop, IfArm, LoopId, ParallelInfo, Reduction, SpecInfo, Stmt, StmtId, StmtKind, StmtList,
};
use crate::symbol::{Dim, Symbol};
use crate::token::{Tok, Token};
use crate::types::DataType;

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    next_id: u32,
    /// Directive pending attachment to the next DO loop.
    pending_par: Option<ParallelInfo>,
    /// Current expression nesting depth (recursion guard).
    depth: u32,
}

/// Deepest expression nesting accepted before the parser reports an
/// error instead of risking a stack overflow (an abort no caller could
/// contain). Nesting arises from parentheses, unary chains and the
/// right-recursive `**`. Each level costs ~8 recursive-descent frames,
/// so the limit must stay well inside a 2 MiB test-thread stack.
const MAX_EXPR_DEPTH: u32 = 64;

impl Parser {
    pub fn new(source: &str) -> Result<Parser> {
        Ok(Parser { toks: lex(source)?, pos: 0, next_id: 0, pending_par: None, depth: 0 })
    }

    // ----- token plumbing -------------------------------------------------

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        if self.pos + 1 < self.toks.len() {
            &self.toks[self.pos + 1].kind
        } else {
            &Tok::Eof
        }
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn col(&self) -> u32 {
        self.toks[self.pos].col
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &Tok) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(CompileError::parse(
                self.line(),
                format!("expected `{kind}`, found `{}`", self.peek()),
            )
            .at_col(self.col()))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        let (line, col) = (self.line(), self.col());
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError::parse(line, format!("expected identifier, found `{other}`"))
                .at_col(col)),
        }
    }

    /// Is the current token the keyword `kw`?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(CompileError::parse(
                self.line(),
                format!("expected `{kw}`, found `{}`", self.peek()),
            )
            .at_col(self.col()))
        }
    }

    fn eol(&mut self) -> Result<()> {
        match self.peek() {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => Err(CompileError::parse(
                self.line(),
                format!("expected end of statement, found `{other}`"),
            )
            .at_col(self.col())),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    // ----- program structure ----------------------------------------------

    /// Parse all program units in the token stream.
    pub fn parse_program(mut self) -> Result<Program> {
        let mut program = Program::new();
        loop {
            self.skip_newlines();
            // Consume directives between units (ignored here).
            while matches!(self.peek(), Tok::Directive(_)) {
                self.bump();
                self.skip_newlines();
            }
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            let unit = self.parse_unit()?;
            if program.unit(&unit.name).is_some() {
                return Err(CompileError::parse(
                    self.line(),
                    format!("duplicate program unit `{}`", unit.name),
                ));
            }
            program.units.push(unit);
        }
        if program.units.is_empty() {
            return Err(CompileError::parse(1, "no program units found"));
        }
        Ok(program)
    }

    fn parse_unit(&mut self) -> Result<ProgramUnit> {
        self.next_id = 0;
        let (kind, name, args) = self.parse_unit_header()?;
        let mut unit = ProgramUnit::new(name, kind.clone());
        unit.args = args.clone();
        // Function name acts as the result variable.
        if let UnitKind::Function(ty) = &kind {
            let mut sym = Symbol::scalar(unit.name.clone(), *ty);
            sym.is_arg = false;
            unit.symbols.insert(sym);
        }
        self.eol()?;

        // Declarations come first (standard F77 ordering).
        loop {
            self.skip_newlines();
            if !self.parse_declaration(&mut unit)? {
                break;
            }
        }
        // Mark dummy arguments.
        for a in &args {
            let a = a.to_ascii_uppercase();
            if let Some(sym) = unit.symbols.get_mut(&a) {
                sym.is_arg = true;
            } else {
                let mut sym = Symbol::scalar(a.clone(), DataType::implicit_for(&a));
                sym.is_arg = true;
                unit.symbols.insert(sym);
            }
        }

        // Executable statements until END.
        let body = self.parse_stmt_list(&unit.name, &["END"])?;
        self.expect_kw("END")?;
        self.eol()?;
        unit.body = body;
        let max = self.next_id;
        unit.reserve_stmt_ids(max);
        self.declare_implicits(&mut unit);
        Ok(unit)
    }

    fn parse_unit_header(&mut self) -> Result<(UnitKind, String, Vec<String>)> {
        // PROGRAM name | SUBROUTINE name(args) | <type> FUNCTION name(args)
        if self.eat_kw("PROGRAM") {
            let name = self.expect_ident()?;
            return Ok((UnitKind::Program, name, Vec::new()));
        }
        if self.eat_kw("SUBROUTINE") {
            let name = self.expect_ident()?;
            let args = self.parse_arg_list()?;
            return Ok((UnitKind::Subroutine, name, args));
        }
        if let Some(ty) = self.try_type_keyword()? {
            self.expect_kw("FUNCTION")?;
            let name = self.expect_ident()?;
            let args = self.parse_arg_list()?;
            return Ok((UnitKind::Function(ty), name, args));
        }
        Err(CompileError::parse(
            self.line(),
            format!("expected PROGRAM/SUBROUTINE/FUNCTION, found `{}`", self.peek()),
        )
        .at_col(self.col()))
    }

    fn parse_arg_list(&mut self) -> Result<Vec<String>> {
        let mut args = Vec::new();
        if self.eat(&Tok::LParen)
            && !self.eat(&Tok::RParen) {
                loop {
                    args.push(self.expect_ident()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
        Ok(args)
    }

    /// Try to consume a type keyword (`INTEGER`, `REAL`, `DOUBLE
    /// PRECISION`, `LOGICAL`). Only consumes on success.
    fn try_type_keyword(&mut self) -> Result<Option<DataType>> {
        let ty = match self.peek() {
            Tok::Ident(s) => match s.as_str() {
                "INTEGER" => Some(DataType::Integer),
                "REAL" => Some(DataType::Real),
                "LOGICAL" => Some(DataType::Logical),
                "DOUBLE" => {
                    self.bump();
                    self.expect_kw("PRECISION")?;
                    return Ok(Some(DataType::Real));
                }
                _ => None,
            },
            _ => None,
        };
        if ty.is_some() {
            self.bump();
        }
        Ok(ty)
    }

    /// Parse one declaration statement if the cursor is at one.
    /// Returns false when the declaration section has ended.
    fn parse_declaration(&mut self, unit: &mut ProgramUnit) -> Result<bool> {
        // A type keyword followed by FUNCTION belongs to the next unit —
        // cannot happen here since units are parsed one at a time.
        let save = self.pos;
        if let Some(ty) = self.try_type_keyword()? {
            // Could still be an assignment to a variable named REAL etc.;
            // F-Mini forbids that, so treat as a declaration.
            loop {
                let name = self.expect_ident()?;
                if self.eat(&Tok::LParen) {
                    let dims = self.parse_dims()?;
                    unit.symbols.insert(Symbol::array(name, ty, dims));
                } else {
                    unit.symbols.insert(Symbol::scalar(name, ty));
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.eol()?;
            return Ok(true);
        }
        if self.eat_kw("DIMENSION") {
            loop {
                let name = self.expect_ident()?;
                self.expect(&Tok::LParen)?;
                let dims = self.parse_dims()?;
                let ty = unit.symbols.type_of(&name);
                unit.symbols.insert(Symbol::array(name, ty, dims));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.eol()?;
            return Ok(true);
        }
        if self.eat_kw("PARAMETER") {
            self.expect(&Tok::LParen)?;
            loop {
                let name = self.expect_ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.parse_expr()?;
                let ty = unit
                    .symbols
                    .get(&name)
                    .map(|s| s.ty)
                    .unwrap_or_else(|| DataType::implicit_for(&name));
                unit.symbols.insert(Symbol::parameter(name, ty, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            self.eol()?;
            return Ok(true);
        }
        if self.eat_kw("COMMON") {
            self.expect(&Tok::Slash)?;
            let block = self.expect_ident()?;
            self.expect(&Tok::Slash)?;
            let mut vars = Vec::new();
            loop {
                let name = self.expect_ident()?;
                vars.push(name.clone());
                if let Some(sym) = unit.symbols.get_mut(&name) {
                    sym.common = Some(block.clone());
                } else {
                    let mut sym = Symbol::scalar(name.clone(), DataType::implicit_for(&name));
                    sym.common = Some(block.clone());
                    unit.symbols.insert(sym);
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            unit.commons.push(CommonBlock { name: block, vars });
            self.eol()?;
            return Ok(true);
        }
        self.pos = save;
        Ok(false)
    }

    fn parse_dims(&mut self) -> Result<Vec<Dim>> {
        // cursor just after `(`
        let mut dims = Vec::new();
        loop {
            let first = self.parse_expr()?;
            if self.eat(&Tok::Colon) {
                let hi = self.parse_expr()?;
                dims.push(Dim { lo: first, hi });
            } else {
                dims.push(Dim::upto(first));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(dims)
    }

    /// Enter implicit symbols for every identifier used but not declared.
    fn declare_implicits(&mut self, unit: &mut ProgramUnit) {
        let mut names: Vec<String> = Vec::new();
        unit.body.for_each_expr(&mut |e| match e {
            Expr::Var(n) => names.push(n.clone()),
            Expr::Index { array, .. } => names.push(array.clone()),
            _ => {}
        });
        unit.body.walk(&mut |s| match &s.kind {
            StmtKind::Assign { lhs, .. } => names.push(lhs.name().to_string()),
            StmtKind::Do(d) => names.push(d.var.clone()),
            _ => {}
        });
        for n in names {
            if !unit.symbols.contains(&n) {
                unit.symbols.insert(Symbol::scalar(n.clone(), DataType::implicit_for(&n)));
            }
        }
    }

    // ----- statements -------------------------------------------------------

    /// Parse statements until one of the `stop_kws` keywords (not consumed).
    fn parse_stmt_list(&mut self, unit_name: &str, stop_kws: &[&str]) -> Result<StmtList> {
        let mut list = StmtList::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            // Stop keywords terminate the list. Treat "ELSE" specially:
            // "ELSE IF" and bare "ELSE" both stop on "ELSE".
            if let Tok::Ident(word) = self.peek() {
                if stop_kws.contains(&word.as_str()) {
                    // `END DO` / `END IF` / bare `END`: only stop on `END`
                    // when requested; caller disambiguates.
                    break;
                }
                // `ENDDO` / `ENDIF` compressed forms.
                if stop_kws.contains(&"END") && (word == "ENDDO" || word == "ENDIF") {
                    break;
                }
            }
            if let Tok::Directive(_) = self.peek() {
                if let Some(stmt) = self.parse_directive(unit_name)? {
                    list.push(stmt);
                }
                continue;
            }
            let stmt = self.parse_stmt(unit_name)?;
            list.push(stmt);
        }
        Ok(list)
    }

    /// Parse a directive line: either an assertion (becomes a statement) or
    /// a DOALL annotation (stored for the next DO).
    fn parse_directive(&mut self, _unit_name: &str) -> Result<Option<Stmt>> {
        let line = self.line();
        let text = match self.bump() {
            Tok::Directive(t) => t,
            _ => unreachable!(),
        };
        self.skip_newlines();
        if let Some(rest) = text.strip_prefix("ASSERT") {
            let cond = parse_sub_expr(rest.trim(), line)?;
            return Ok(Some(Stmt::new(self.fresh_id(), line, StmtKind::Assert { cond })));
        }
        if let Some(rest) = text.strip_prefix("POLARIS") {
            let info = parse_doall_directive(rest.trim(), line)?;
            self.pending_par = Some(info);
            return Ok(None);
        }
        // Unknown directives are ignored (like unknown pragmas).
        Ok(None)
    }

    fn parse_stmt(&mut self, unit_name: &str) -> Result<Stmt> {
        let line = self.line();
        // Keyword dispatch. Assignment is the fallback (Fortran has no
        // reserved words; `IF (...)` vs array assignment `IF(...) = x` is
        // disambiguated by what follows the closing parenthesis).
        if self.at_kw("DO") && !self.is_assignment_start() {
            return self.parse_do(unit_name);
        }
        if self.at_kw("IF") && !self.is_assignment_start() {
            return self.parse_if(unit_name);
        }
        if self.at_kw("CALL") {
            self.bump();
            let name = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat(&Tok::LParen)
                && !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
            self.eol()?;
            return Ok(Stmt::new(self.fresh_id(), line, StmtKind::Call { name, args }));
        }
        if self.at_kw("PRINT") && !self.is_assignment_start() {
            self.bump();
            self.expect(&Tok::Star)?;
            let mut items = Vec::new();
            while self.eat(&Tok::Comma) {
                items.push(self.parse_expr()?);
            }
            self.eol()?;
            return Ok(Stmt::new(self.fresh_id(), line, StmtKind::Print { items }));
        }
        if self.at_kw("RETURN") && matches!(self.peek2(), Tok::Newline | Tok::Eof) {
            self.bump();
            self.eol()?;
            return Ok(Stmt::new(self.fresh_id(), line, StmtKind::Return));
        }
        if self.at_kw("STOP") && matches!(self.peek2(), Tok::Newline | Tok::Eof) {
            self.bump();
            self.eol()?;
            return Ok(Stmt::new(self.fresh_id(), line, StmtKind::Stop));
        }
        if self.at_kw("CONTINUE") && matches!(self.peek2(), Tok::Newline | Tok::Eof) {
            self.bump();
            self.eol()?;
            return Ok(Stmt::new(self.fresh_id(), line, StmtKind::Continue));
        }
        // Assignment.
        self.parse_assignment(line)
    }

    /// Lookahead: does the statement start with `IDENT =` or `IDENT(...) =`?
    /// Used to let variables shadow statement keywords, as Fortran allows.
    fn is_assignment_start(&self) -> bool {
        if !matches!(self.peek(), Tok::Ident(_)) {
            return false;
        }
        match self.peek2() {
            Tok::Assign => true,
            Tok::LParen => {
                // scan to matching paren, check for `=`
                let mut depth = 0usize;
                let mut i = self.pos + 1;
                while i < self.toks.len() {
                    match &self.toks[i].kind {
                        Tok::LParen => depth += 1,
                        Tok::RParen => {
                            depth -= 1;
                            if depth == 0 {
                                return matches!(
                                    self.toks.get(i + 1).map(|t| &t.kind),
                                    Some(Tok::Assign)
                                );
                            }
                        }
                        Tok::Newline | Tok::Eof => return false,
                        _ => {}
                    }
                    i += 1;
                }
                false
            }
            _ => false,
        }
    }

    fn parse_assignment(&mut self, line: u32) -> Result<Stmt> {
        let name = self.expect_ident()?;
        let lhs = if self.eat(&Tok::LParen) {
            let mut subs = Vec::new();
            loop {
                subs.push(self.parse_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            LValue::Index { array: name, subs }
        } else {
            LValue::Var(name)
        };
        self.expect(&Tok::Assign)?;
        let rhs = self.parse_expr()?;
        self.eol()?;
        Ok(Stmt::new(self.fresh_id(), line, StmtKind::Assign { lhs, rhs, reduction: None }))
    }

    fn parse_do(&mut self, unit_name: &str) -> Result<Stmt> {
        let line = self.line();
        let par = self.pending_par.take().unwrap_or_default();
        self.expect_kw("DO")?;
        let var = self.expect_ident()?;
        self.expect(&Tok::Assign)?;
        let init = self.parse_expr()?;
        self.expect(&Tok::Comma)?;
        let limit = self.parse_expr()?;
        let step = if self.eat(&Tok::Comma) { Some(self.parse_expr()?) } else { None };
        self.eol()?;
        let body = self.parse_stmt_list(unit_name, &["END", "ENDDO"])?;
        if self.eat_kw("ENDDO") {
        } else {
            self.expect_kw("END")?;
            self.expect_kw("DO")?;
        }
        self.eol()?;
        let label = format!("{unit_name}_do{line}");
        let id = self.fresh_id();
        // The loop's provenance id is derived from its own (unit-unique)
        // statement id, so no second counter is needed.
        let loop_id = LoopId(id.0);
        Ok(Stmt::new(
            id,
            line,
            StmtKind::Do(Box::new(DoLoop { var, init, limit, step, body, par, label, loop_id })),
        ))
    }

    fn parse_if(&mut self, unit_name: &str) -> Result<Stmt> {
        let line = self.line();
        self.expect_kw("IF")?;
        self.expect(&Tok::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Tok::RParen)?;
        if self.eat_kw("THEN") {
            self.eol()?;
            let mut arms = Vec::new();
            let mut else_body = StmtList::new();
            let body = self.parse_stmt_list(unit_name, &["ELSE", "ELSEIF", "END", "ENDIF"])?;
            arms.push(IfArm { cond, body });
            loop {
                if self.eat_kw("ELSEIF") || (self.at_kw("ELSE") && self.peek2_is_kw("IF")) {
                    if self.eat_kw("ELSE") {
                        self.expect_kw("IF")?;
                    }
                    self.expect(&Tok::LParen)?;
                    let c = self.parse_expr()?;
                    self.expect(&Tok::RParen)?;
                    self.expect_kw("THEN")?;
                    self.eol()?;
                    let b = self.parse_stmt_list(unit_name, &["ELSE", "ELSEIF", "END", "ENDIF"])?;
                    arms.push(IfArm { cond: c, body: b });
                } else if self.eat_kw("ELSE") {
                    self.eol()?;
                    else_body = self.parse_stmt_list(unit_name, &["END", "ENDIF"])?;
                    break;
                } else {
                    break;
                }
            }
            if self.eat_kw("ENDIF") {
            } else {
                self.expect_kw("END")?;
                self.expect_kw("IF")?;
            }
            self.eol()?;
            Ok(Stmt::new(self.fresh_id(), line, StmtKind::IfBlock { arms, else_body }))
        } else {
            // Logical IF: desugar to a single-arm block.
            let inner = self.parse_stmt(unit_name)?;
            Ok(Stmt::new(
                self.fresh_id(),
                line,
                StmtKind::IfBlock {
                    arms: vec![IfArm { cond, body: StmtList(vec![inner]) }],
                    else_body: StmtList::new(),
                },
            ))
        }
    }

    fn peek2_is_kw(&self, kw: &str) -> bool {
        matches!(self.peek2(), Tok::Ident(s) if s == kw)
    }

    // ----- expressions ------------------------------------------------------

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.descend()?;
        let r = self.parse_or();
        self.depth -= 1;
        r
    }

    /// Recursion guard shared by every self-recursive expression rule.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(CompileError::parse(self.line(), "expression nesting too deep")
                .at_col(self.col()));
        }
        Ok(())
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Tok::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat(&Tok::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Not) {
            self.descend()?;
            let arg = self.parse_not();
            self.depth -= 1;
            Ok(Expr::un(UnOp::Not, arg?))
        } else {
            self.parse_relational()
        }
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_additive()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    /// Fold unary minus on literals at parse time (`-1` is `Int(-1)`,
    /// not `Neg(Int(1))`), keeping printed and parsed trees identical.
    fn negate(e: Expr) -> Expr {
        match e {
            Expr::Int(v) => Expr::Int(-v),
            Expr::Real(v) => Expr::Real(-v),
            other => Expr::neg(other),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        // Leading unary +/-.
        let mut lhs = if self.eat(&Tok::Minus) {
            Self::negate(self.parse_term()?)
        } else {
            self.eat(&Tok::Plus);
            self.parse_term()?
        };
        loop {
            if self.eat(&Tok::Plus) {
                lhs = Expr::add(lhs, self.parse_term()?);
            } else if self.eat(&Tok::Minus) {
                lhs = Expr::sub(lhs, self.parse_term()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_power()?;
        loop {
            if self.eat(&Tok::Star) {
                lhs = Expr::mul(lhs, self.parse_power()?);
            } else if self.eat(&Tok::Slash) {
                lhs = Expr::div(lhs, self.parse_power()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let base = self.parse_primary()?;
        if self.eat(&Tok::Pow) {
            // `**` is right-associative; `-` binds tighter on the exponent.
            self.descend()?;
            let exp = if self.eat(&Tok::Minus) {
                self.parse_power().map(Self::negate)
            } else {
                self.parse_power()
            };
            self.depth -= 1;
            Ok(Expr::bin(BinOp::Pow, base, exp?))
        } else {
            Ok(base)
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let (line, col) = (self.line(), self.col());
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Real(v) => Ok(Expr::Real(v)),
            Tok::True => Ok(Expr::Logical(true)),
            Tok::False => Ok(Expr::Logical(false)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Minus => {
                self.descend()?;
                let inner = self.parse_primary();
                self.depth -= 1;
                Ok(Self::negate(inner?))
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    // Array reference vs call is resolved later by symbol
                    // kind; the parser marks intrinsics as calls and leaves
                    // the rest as Index nodes, which `resolve_refs` fixes
                    // once the symbol table is complete.
                    if is_intrinsic(&name) {
                        Ok(Expr::Call { name, args })
                    } else {
                        Ok(Expr::Index { array: name, subs: args })
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(CompileError::parse(
                line,
                format!("unexpected token `{other}` in expression"),
            )
            .at_col(col)),
        }
    }
}

/// Parse an expression from a directive payload string.
fn parse_sub_expr(text: &str, line: u32) -> Result<Expr> {
    let mut p = Parser::new(text).map_err(|e| e.with_line(line))?;
    let e = p.parse_expr().map_err(|e| e.with_line(line))?;
    Ok(e)
}

/// Parse `DOALL [PRIVATE(a,b)] [REDUCTION(+:x)] [LASTVALUE(k=expr)]
/// [SPECULATIVE(a;b)]` from a `!$POLARIS` directive.
fn parse_doall_directive(text: &str, line: u32) -> Result<ParallelInfo> {
    let mut info = ParallelInfo::default();
    let rest = text
        .strip_prefix("DOALL")
        .ok_or_else(|| CompileError::parse(line, format!("unknown POLARIS directive `{text}`")))?;
    info.parallel = true;
    let mut s = rest.trim();
    while !s.is_empty() {
        let (word, after) = match s.find('(') {
            Some(i) => (&s[..i], &s[i + 1..]),
            None => return Err(CompileError::parse(line, format!("malformed clause `{s}`"))),
        };
        let close = find_matching(after)
            .ok_or_else(|| CompileError::parse(line, "unbalanced clause parentheses"))?;
        let inner = &after[..close];
        s = after[close + 1..].trim();
        match word.trim() {
            "PRIVATE" => {
                info.private =
                    inner.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect();
            }
            "REDUCTION" => {
                for part in inner.split(',') {
                    let (op, var) = part
                        .split_once(':')
                        .ok_or_else(|| CompileError::parse(line, "REDUCTION needs op:var"))?;
                    let op = match op.trim() {
                        "+" => RedOp::Sum,
                        "*" => RedOp::Product,
                        "MAX" => RedOp::Max,
                        "MIN" => RedOp::Min,
                        other => {
                            return Err(CompileError::parse(
                                line,
                                format!("unknown reduction op `{other}`"),
                            ))
                        }
                    };
                    let var = var.trim();
                    let (name, histogram) = match var.strip_suffix("[]") {
                        Some(base) => (base.trim().to_string(), true),
                        None => (var.to_string(), false),
                    };
                    info.reductions.push(Reduction { var: name, op, histogram });
                }
            }
            "LASTPRIVATE" => {
                info.copy_out =
                    inner.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect();
            }
            "LASTVALUE" => {
                for part in inner.split(',') {
                    let (name, value) = part
                        .split_once('=')
                        .ok_or_else(|| CompileError::parse(line, "LASTVALUE needs name=expr"))?;
                    info.lastvalue
                        .push((name.trim().to_string(), parse_sub_expr(value.trim(), line)?));
                }
            }
            "SPECULATIVE" => {
                let mut spec = SpecInfo { tracked: Vec::new(), privatized: Vec::new() };
                for part in inner.split(',') {
                    let part = part.trim();
                    if let Some(base) = part.strip_suffix("*") {
                        spec.tracked.push(base.to_string());
                        spec.privatized.push(base.to_string());
                    } else if !part.is_empty() {
                        spec.tracked.push(part.to_string());
                    }
                }
                info.parallel = false;
                info.speculative = Some(spec);
            }
            other => {
                return Err(CompileError::parse(line, format!("unknown DOALL clause `{other}`")))
            }
        }
    }
    Ok(info)
}

/// Index of the parenthesis closing the implicit `(` already consumed.
fn find_matching(s: &str) -> Option<usize> {
    let mut depth = 1i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// After parsing, `Expr::Index` nodes whose base is not an array symbol
/// are really function calls; fix them in place. The parser calls this
/// indirectly through [`resolve_program_refs`].
pub fn resolve_unit_refs(unit: &mut ProgramUnit) {
    let symbols = unit.symbols.clone();
    unit.body.map_exprs(&mut |e| match e {
        Expr::Index { ref array, ref subs } if !symbols.is_array(array) => {
            Expr::Call { name: array.clone(), args: subs.clone() }
        }
        other => other,
    });
}

/// Resolve array-vs-call ambiguity in every unit of `program`.
pub fn resolve_program_refs(program: &mut Program) {
    for unit in &mut program.units {
        resolve_unit_refs(unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_main(body: &str) -> ProgramUnit {
        let src = format!("program t\n{body}\nend\n");
        let mut p = crate::parse(&src).unwrap();
        crate::parser::resolve_program_refs(&mut p);
        p.units.remove(0)
    }

    #[test]
    fn parses_do_loop_with_bounds() {
        let u = parse_main("integer n\ndo i = 1, n\n  a(i) = i\nend do");
        let loops = u.body.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].var, "I");
        assert_eq!(loops[0].limit, Expr::var("N"));
        assert!(loops[0].step.is_none());
    }

    #[test]
    fn parses_do_with_step_and_enddo() {
        let u = parse_main("do k = 10, 2, -2\n  x = k\nenddo");
        let d = u.body.loops()[0];
        assert_eq!(d.step.clone().unwrap().simplified().as_int(), Some(-2));
    }

    #[test]
    fn precedence_pow_over_mul_over_add() {
        let u = parse_main("y = a + b*c**2");
        let rhs = match &u.body.0[0].kind {
            StmtKind::Assign { rhs, .. } => rhs.clone(),
            _ => panic!(),
        };
        // a + (b * (c**2))
        match rhs {
            Expr::Bin { op: BinOp::Add, rhs: r, .. } => match *r {
                Expr::Bin { op: BinOp::Mul, rhs: r2, .. } => {
                    assert!(matches!(*r2, Expr::Bin { op: BinOp::Pow, .. }))
                }
                _ => panic!("expected Mul"),
            },
            _ => panic!("expected Add"),
        }
    }

    #[test]
    fn pow_is_right_associative() {
        let u = parse_main("y = 2**3**2");
        let rhs = match &u.body.0[0].kind {
            StmtKind::Assign { rhs, .. } => rhs.clone(),
            _ => panic!(),
        };
        assert_eq!(rhs.simplified().as_int(), Some(512));
    }

    #[test]
    fn block_if_with_elseif_and_else() {
        let u = parse_main(
            "if (x > 0) then\n  y = 1\nelse if (x < 0) then\n  y = 2\nelse\n  y = 3\nend if",
        );
        match &u.body.0[0].kind {
            StmtKind::IfBlock { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn logical_if_desugars() {
        let u = parse_main("if (r .lt. rcuts) ind(j) = 1");
        match &u.body.0[0].kind {
            StmtKind::IfBlock { arms, else_body } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].body.len(), 1);
                assert!(else_body.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn array_vs_call_resolution() {
        let u = parse_main("real a(10)\nx = a(3) + foo(3)");
        let rhs = match &u.body.0[0].kind {
            StmtKind::Assign { rhs, .. } => rhs.clone(),
            _ => panic!(),
        };
        match rhs {
            Expr::Bin { lhs, rhs, .. } => {
                assert!(matches!(*lhs, Expr::Index { .. }));
                assert!(matches!(*rhs, Expr::Call { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn intrinsics_are_calls_even_undeclared() {
        let u = parse_main("x = max(a, b)");
        match &u.body.0[0].kind {
            StmtKind::Assign { rhs: Expr::Call { name, args }, .. } => {
                assert_eq!(name, "MAX");
                assert_eq!(args.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn declarations_and_parameters() {
        let u = parse_main("integer n, m\nparameter (n = 64, m = 2*n)\nreal a(n, m)\nx = 1.0");
        assert_eq!(u.symbols.parameter_value("N"), Some(&Expr::int(64)));
        let a = u.symbols.get("A").unwrap();
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn common_blocks() {
        let u = parse_main("real u(100)\ncommon /shared/ u, nstep\nx = 1.0");
        assert_eq!(u.commons.len(), 1);
        assert_eq!(u.commons[0].vars, vec!["U", "NSTEP"]);
        assert_eq!(u.symbols.get("U").unwrap().common.as_deref(), Some("SHARED"));
    }

    #[test]
    fn subroutine_with_args() {
        let src = "subroutine sub(a, n)\nreal a(n)\ninteger n\ndo i = 1, n\na(i) = 0.0\nend do\nreturn\nend\n";
        let p = crate::parse(src).unwrap();
        let u = &p.units[0];
        assert_eq!(u.kind, UnitKind::Subroutine);
        assert_eq!(u.args, vec!["A", "N"]);
        assert!(u.symbols.get("A").unwrap().is_arg);
    }

    #[test]
    fn function_unit() {
        let src = "real function f(x)\nreal x\nf = x*x\nreturn\nend\n";
        let p = crate::parse(src).unwrap();
        assert_eq!(p.units[0].kind, UnitKind::Function(DataType::Real));
    }

    #[test]
    fn multiple_units_and_duplicate_rejection() {
        let src = "program p\nx=1\nend\nsubroutine s\ny=2\nend\n";
        let p = crate::parse(src).unwrap();
        assert_eq!(p.units.len(), 2);
        let dup = "program p\nx=1\nend\nprogram p\ny=1\nend\n";
        assert!(crate::parse(dup).is_err());
    }

    #[test]
    fn doall_directive_attaches_to_loop() {
        let src = "program p\n!$polaris doall private(T) reduction(+:S) lastvalue(K=N+1)\ndo i=1,10\ns = s + 1.0\nend do\nend\n";
        let p = crate::parse(src).unwrap();
        let d = p.units[0].body.loops()[0];
        assert!(d.par.parallel);
        assert_eq!(d.par.private, vec!["T"]);
        assert_eq!(d.par.reductions.len(), 1);
        assert_eq!(d.par.lastvalue[0].0, "K");
    }

    #[test]
    fn assert_directive_becomes_statement() {
        let src = "program p\n!$assert (n >= 1)\nx = 1\nend\n";
        let p = crate::parse(src).unwrap();
        assert!(matches!(p.units[0].body.0[0].kind, StmtKind::Assert { .. }));
    }

    #[test]
    fn variables_may_shadow_keywords_in_assignment() {
        // a variable literally named DO used as assignment target
        let u = parse_main("do = 3");
        assert!(matches!(&u.body.0[0].kind, StmtKind::Assign { lhs, .. } if lhs.name() == "DO"));
    }

    #[test]
    fn stmt_ids_are_unique_within_unit() {
        let u = parse_main("x = 1\ndo i = 1, 3\n  y = 2\n  z = 3\nend do");
        let mut ids = Vec::new();
        u.body.walk(&mut |s| ids.push(s.id));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn nested_loops_get_distinct_labels() {
        let u = parse_main("do i = 1, 3\n  do j = 1, 3\n    x = 1\n  end do\nend do");
        let labels: Vec<_> = u.body.loops().iter().map(|d| d.label.clone()).collect();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn deep_paren_nesting_is_an_error_not_a_stack_overflow() {
        for pathological in [
            format!("program p\nx = {}1{}\nend\n", "(".repeat(20_000), ")".repeat(20_000)),
            format!("program p\nx = 1{}\nend\n", "**1".repeat(20_000)),
            format!("program p\nx = {}1\nend\n", "-(".repeat(20_000)),
            format!("program p\nif ({}y) x = 1\nend\n", ".not.".repeat(20_000)),
        ] {
            let err = crate::parse(&pathological).unwrap_err();
            assert!(
                err.message.contains("nesting too deep") || err.message.contains("unexpected"),
                "{err}"
            );
        }
        // ...while reasonable nesting still parses
        let fine = format!("program p\nx = {}1{}\nend\n", "(".repeat(50), ")".repeat(50));
        assert!(crate::parse(&fine).is_ok());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        // the dangling `+` is reported at the end of ITS line, not the next
        let err = crate::parse("program p\nx = 1 +\ny = 2\nend\n").unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        assert!(err.col.is_some(), "{err}");
        let err = crate::parse("program p\nx = ,\nend\n").unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        assert_eq!(err.col, Some(5), "{err}");
    }

    #[test]
    fn error_on_missing_end_do() {
        assert!(crate::parse("program p\ndo i = 1, 3\nx = 1\nend\n").is_err());
    }

    #[test]
    fn print_statement() {
        let u = parse_main("print *, 'result', x, 2*y");
        match &u.body.0[0].kind {
            StmtKind::Print { items } => assert_eq!(items.len(), 3),
            _ => panic!(),
        }
    }
}

//! Fortran data types as modelled by F-Mini.
//!
//! `DOUBLE PRECISION` is folded into [`DataType::Real`]: all floating-point
//! computation in the evaluation substrate uses `f64`, so the distinction
//! carries no analysis content. `COMPLEX` (which the paper mentions only in
//! the context of an inlining corner case) is not modelled.

use std::fmt;

/// The scalar base type of a symbol or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// `INTEGER` — 64-bit signed in the evaluation substrate.
    Integer,
    /// `REAL` / `DOUBLE PRECISION` — `f64` in the evaluation substrate.
    Real,
    /// `LOGICAL`.
    Logical,
}

impl DataType {
    /// Fortran implicit typing: identifiers starting with `I`..`N` are
    /// `INTEGER`, all others `REAL`.
    pub fn implicit_for(name: &str) -> DataType {
        match name.as_bytes().first() {
            Some(c) if (b'I'..=b'N').contains(&c.to_ascii_uppercase()) => DataType::Integer,
            _ => DataType::Real,
        }
    }

    /// The Fortran keyword for this type (used by the unparser).
    pub fn keyword(self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Real => "REAL",
            DataType::Logical => "LOGICAL",
        }
    }

    /// Type of the result when two arithmetic operands are combined
    /// (Fortran promotion: REAL dominates INTEGER).
    pub fn promote(self, other: DataType) -> DataType {
        if self == DataType::Real || other == DataType::Real {
            DataType::Real
        } else if self == DataType::Logical && other == DataType::Logical {
            DataType::Logical
        } else {
            DataType::Integer
        }
    }

    /// True if this is a numeric (arithmetic) type.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Real)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_typing_follows_fortran_rule() {
        for name in ["I", "J", "K", "L", "M", "N", "IND", "next", "m2"] {
            assert_eq!(DataType::implicit_for(name), DataType::Integer, "{name}");
        }
        for name in ["A", "X", "Z9", "h", "omega", "SUM"] {
            assert_eq!(DataType::implicit_for(name), DataType::Real, "{name}");
        }
    }

    #[test]
    fn promotion_prefers_real() {
        assert_eq!(DataType::Integer.promote(DataType::Real), DataType::Real);
        assert_eq!(DataType::Real.promote(DataType::Integer), DataType::Real);
        assert_eq!(DataType::Integer.promote(DataType::Integer), DataType::Integer);
        assert_eq!(DataType::Logical.promote(DataType::Logical), DataType::Logical);
    }

    #[test]
    fn keywords_round_trip_display() {
        assert_eq!(DataType::Integer.to_string(), "INTEGER");
        assert_eq!(DataType::Real.to_string(), "REAL");
        assert_eq!(DataType::Logical.to_string(), "LOGICAL");
    }
}

//! # polaris-ir — the Polaris internal representation
//!
//! This crate is the Rust analogue of the Polaris compiler's C++
//! infrastructure described in Section 2 of *"Restructuring Programs for
//! High-Speed Computers with Polaris"* (ICPP 1996): an abstract syntax tree
//! for a Fortran-77 subset ("F-Mini") together with layers of high-level
//! functionality — statement lists with consistency checks, structural
//! equality and wildcard pattern matching on expressions, a control-flow
//! graph that is derived on demand, and an unparser that regenerates
//! compilable source (including `!$POLARIS` parallelization directives).
//!
//! The original Polaris enforced IR consistency with `p_assert`, reference
//! counting and an ownership convention; here Rust's ownership system plays
//! that role, complemented by [`validate::validate_program`] which performs
//! the same class of well-formedness checks (declared symbols, rank-correct
//! array references, well-formed loop nests) and by debug assertions
//! throughout the transformation passes.
//!
//! ## The F-Mini dialect
//!
//! F-Mini is a free-form, structured subset of Fortran 77:
//!
//! * program units: `PROGRAM`, `SUBROUTINE`, `FUNCTION`
//! * declarations: `INTEGER`, `REAL`, `DOUBLE PRECISION` (treated as
//!   `REAL`), `LOGICAL`, `DIMENSION`, `PARAMETER`, `COMMON`
//! * executable statements: assignment, `DO`/`END DO`, block `IF`/`ELSE
//!   IF`/`ELSE`/`END IF`, logical `IF`, `CALL`, `RETURN`, `STOP`,
//!   `CONTINUE`, `PRINT *`
//! * expressions: `+ - * / **`, relational (both `.LT.` and `<` spellings),
//!   `.AND. .OR. .NOT.`, intrinsics (`MOD`, `MAX`, `MIN`, `ABS`, `SQRT`,
//!   `SIN`, `COS`, `EXP`, `INT`, `REAL`, `DBLE`, `FLOAT`, `NINT`, `SIGN`)
//! * directives: `!$POLARIS DOALL ...` (parallel loop annotations, also
//!   produced by the unparser) and `!$ASSERT <relation>` (user assertions
//!   consumed by range propagation)
//!
//! `GOTO`, `EQUIVALENCE` and formatted I/O are intentionally excluded: all
//! of the paper's analyses operate on structured loop nests, and the
//! benchmark kernels of the evaluation are expressed without them (see
//! DESIGN.md for the substitution argument).

pub mod builder;
pub mod cert;
pub mod cfg;
pub mod error;
pub mod expr;
pub mod forbol;
pub mod lexer;
pub mod parser;
pub mod pattern;
pub mod printer;
pub mod program;
pub mod stmt;
pub mod symbol;
pub mod token;
pub mod types;
pub mod validate;
pub mod visit;

pub use cert::{CertCheck, CertKind, DepVector, LegalityCert, NestDir};
pub use error::{CompileError, Result};
pub use expr::{BinOp, Expr, LValue, RedOp, UnOp};
pub use program::{CommonBlock, Program, ProgramUnit, UnitKind};
pub use stmt::{DoLoop, IfArm, ParallelInfo, Reduction, SpecInfo, Stmt, StmtId, StmtKind, StmtList};
pub use symbol::{ArrayProps, Dim, SymKind, Symbol, SymbolTable};
pub use types::DataType;

/// Parse F-Mini source text into a [`Program`].
///
/// This is the main entry point of the crate; it is equivalent to the
/// Polaris `Program` constructor that "reads complete Fortran codes".
pub fn parse(source: &str) -> Result<Program> {
    let mut program = parser::Parser::new(source)?.parse_program()?;
    parser::resolve_program_refs(&mut program);
    Ok(program)
}

/// Parse and then validate, returning the program only if it is well formed.
pub fn parse_validated(source: &str) -> Result<Program> {
    let program = parse(source)?;
    validate::validate_program(&program)?;
    Ok(program)
}

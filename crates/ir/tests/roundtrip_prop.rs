//! Property: the unparser/parser pair round-trips arbitrary expressions
//! and programs structurally — what Polaris' source-to-source design
//! depends on (its output had to be re-consumable Fortran).

use polaris_ir::expr::{BinOp, Expr, UnOp};
use polaris_ir::printer::format_expr;
use proptest::prelude::*;

/// Random well-formed arithmetic/logical expressions.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Int),
        // reals whose Display form re-parses exactly
        (-500i32..500).prop_map(|v| Expr::Real(v as f64 / 4.0)),
        prop_oneof!["I", "J", "K", "N", "M", "X1"].prop_map(Expr::var),
        ("A", prop_oneof!["I", "J"]).prop_map(|(a, v)| Expr::index(a, vec![Expr::var(v)])),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
            ])
            .prop_map(|(l, r, op)| Expr::bin(op, l, r)),
            // keep exponents small so folding cannot overflow
            (inner.clone(), 0i64..4).prop_map(|(l, e)| Expr::bin(BinOp::Pow, l, Expr::Int(e))),
            // the parser folds unary minus on literals, so generate the
            // canonical (folded) form too
            inner.clone().prop_map(|e| match e {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Real(v) => Expr::Real(-v),
                other => Expr::un(UnOp::Neg, other),
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::call("MAX", vec![a, b])),
        ]
    })
}

/// Parse the RHS of `x = <text>` back into an [`Expr`].
fn reparse(text: &str) -> Expr {
    let src = format!("program t\nreal a(100)\nx = {text}\nend\n");
    let prog = polaris_ir::parse(&src)
        .unwrap_or_else(|e| panic!("printed expression failed to re-parse: {e}\n{text}"));
    match &prog.units[0].body.0[0].kind {
        polaris_ir::StmtKind::Assign { rhs, .. } => rhs.clone(),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in expr_strategy()) {
        let text = format_expr(&e);
        let back = reparse(&text);
        // The parser applies no simplification, so structural equality
        // must hold exactly.
        prop_assert_eq!(&back, &e, "text was: {}", text);
    }

    #[test]
    fn simplified_expr_roundtrips_too(e in expr_strategy()) {
        let s = e.simplified();
        let text = format_expr(&s);
        let back = reparse(&text);
        prop_assert_eq!(&back, &s, "text was: {}", text);
    }
}

// Whole-program structural round-trip on generated loop nests.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn program_roundtrip(
        bounds in proptest::collection::vec((1i64..9, 9i64..30), 1..3),
        use_if in any::<bool>(),
    ) {
        let mut src = String::from("program t\nreal a(40)\n");
        for (k, (lo, hi)) in bounds.iter().enumerate() {
            src.push_str(&format!("do i{k} = {lo}, {hi}\n"));
        }
        if use_if {
            src.push_str("if (a(i0) > 0.5) then\n  a(i0) = a(i0) * 0.5\nelse\n  a(i0) = 1.0\nend if\n");
        } else {
            src.push_str("a(i0) = i0 * 2.0\n");
        }
        for _ in &bounds {
            src.push_str("end do\n");
        }
        src.push_str("print *, a(9)\nend\n");

        let p1 = polaris_ir::parse(&src).unwrap();
        let text = polaris_ir::printer::print_program(&p1);
        let p2 = polaris_ir::parse(&text).unwrap();
        // ids/lines/labels may differ; compare structure via a second print
        let text2 = polaris_ir::printer::print_program(&p2);
        prop_assert_eq!(text, text2, "print is not a fixpoint");
        prop_assert_eq!(p1.units[0].body.loops().len(), p2.units[0].body.loops().len());
    }
}

//! Per-kernel dependence-oracle precision table (EXPERIMENTS.md §
//! "Oracle-measured precision of the range test").
//!
//! For every Table-1 kernel plus TRACK, compile with the full Polaris
//! pipeline, run the instrumented serial interpreter, and cross-check
//! every claim. Printed twice: with the stock options and with run-time
//! speculation (LRPD) disabled, which forces the loops only the
//! run-time test can claim back to serial and lets the oracle measure
//! how much dynamic parallelism the *static* tests leave on the table.
//!
//! `cargo run --release -p polaris-bench --example oracle_table`

use polaris_bench::compile_bench;
use polaris_core::PassOptions;

fn table(title: &str, opts: &PassOptions) {
    println!("## {title}");
    println!(
        "{:<8} {:>7} {:>12} {:>12}  misses by pass",
        "kernel", "serial", "compl.miss", "priv.miss"
    );
    let (mut serial, mut compl, mut privm) = (0, 0, 0);
    let mut by_pass = std::collections::BTreeMap::new();
    let track = polaris_benchmarks::track();
    for b in polaris_benchmarks::all().iter().chain(std::iter::once(&track)) {
        let (p, rep) = compile_bench(b, opts);
        let r = polaris_machine::audit(&p, &rep)
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name));
        assert!(!r.has_violations(), "{}: soundness violation", b.name);
        serial += r.serial_loops_exercised();
        compl += r.completeness_misses();
        privm += r.privatizable_misses();
        let mbp = r.misses_by_pass();
        for (k, v) in &mbp {
            *by_pass.entry(*k).or_insert(0) += v;
        }
        println!(
            "{:<8} {:>7} {:>12} {:>12}  {:?}",
            b.name,
            r.serial_loops_exercised(),
            r.completeness_misses(),
            r.privatizable_misses(),
            mbp
        );
    }
    println!(
        "{:<8} {:>7} {:>12} {:>12}  {:?}\n",
        "TOTAL", serial, compl, privm, by_pass
    );
}

fn main() {
    table("Polaris (stock options)", &PassOptions::polaris());
    let mut no_spec = PassOptions::polaris();
    no_spec.speculation = false;
    table("Polaris, speculation (LRPD) disabled", &no_spec);
}

//! The real-thread LRPD/PD test (§3.5): marking + analysis overhead and
//! scaling of the speculative executor on a scatter workload, per
//! thread count — the wall-clock companion to the deterministic
//! `figure6` harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaris_runtime::{run_sequential, speculative_doall};

const N: usize = 1 << 16;

fn scatter_key(collide: bool) -> Vec<usize> {
    if collide {
        (0..N).map(|i| i / 2).collect()
    } else {
        (0..N).map(|i| (i * 77 + 13) % N).collect()
    }
}

fn bench_speculative(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrpd_scatter");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let perm = scatter_key(false);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("success", threads), &threads, |b, &p| {
            let mut data = vec![0f64; N];
            b.iter(|| {
                let out = speculative_doall(&mut data, N, p, false, |i, v| {
                    v.write(perm[i], i as f64);
                });
                assert!(out.success());
            })
        });
    }
    let collide = scatter_key(true);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("fail_plus_serial", threads), &threads, |b, &p| {
            let mut data = vec![0f64; N];
            b.iter(|| {
                let out = speculative_doall(&mut data, N, p, false, |i, v| {
                    v.write(collide[i], i as f64);
                });
                assert!(!out.success());
                run_sequential(&mut data, N, |i, v| {
                    v.write(collide[i], i as f64);
                });
            })
        });
    }
    group.bench_function("serial_reference", |b| {
        let mut data = vec![0f64; N];
        b.iter(|| {
            run_sequential(&mut data, N, |i, v| {
                v.write(perm[i], i as f64);
            });
        })
    });
    group.finish();
}

criterion_group!(benches, bench_speculative);
criterion_main!(benches);

//! Compiler throughput: full Polaris and VFA pipelines over the
//! evaluation kernels, plus the parser alone. Polaris' paper highlights
//! that full inlining makes compile times grow — this bench quantifies
//! our pipeline's cost per kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use polaris_core::PassOptions;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for name in ["TRFD", "OCEAN", "BDNA", "MDG", "TFFT2"] {
        let b = polaris_benchmarks::by_name(name).unwrap();
        group.bench_function(format!("polaris/{name}"), |bench| {
            bench.iter_batched(
                || b.program(),
                |mut p| polaris_core::compile(&mut p, &PassOptions::polaris()).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("vfa/{name}"), |bench| {
            bench.iter_batched(
                || b.program(),
                |mut p| polaris_core::compile(&mut p, &PassOptions::vfa()).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let all = polaris_benchmarks::all();
    let total_bytes: usize = all.iter().map(|b| b.source.len()).sum();
    group.throughput(criterion::Throughput::Bytes(total_bytes as u64));
    group.bench_function("suite", |bench| {
        bench.iter(|| {
            for b in &all {
                std::hint::black_box(polaris_ir::parse(b.source).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_parse);
criterion_main!(benches);

//! Simulator throughput: how fast the cycle-level machine executes the
//! evaluation kernels (this bounds how large Table-1 workloads can be).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use polaris_machine::{run, run_serial, MachineConfig};

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for name in ["ARC2D", "MDG", "TRACK"] {
        let b = polaris_benchmarks::by_name(name).unwrap();
        let prog = b.program();
        let cycles = run_serial(&prog).unwrap().cycles;
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(format!("serial/{name}"), |bench| {
            bench.iter(|| std::hint::black_box(run_serial(&prog).unwrap().cycles))
        });
        // compiled + 8-proc simulation (incl. speculative protocol for TRACK)
        let mut pol = b.program();
        polaris_core::compile(&mut pol, &polaris_core::PassOptions::polaris()).unwrap();
        group.bench_function(format!("parallel8/{name}"), |bench| {
            bench.iter(|| {
                std::hint::black_box(run(&pol, &MachineConfig::challenge_8()).unwrap().cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);

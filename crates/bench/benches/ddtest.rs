//! Dependence-test microbenchmarks: the symbolic range test on the
//! paper's TRFD and OCEAN subscripts versus Banerjee's inequalities on
//! linear pairs, plus the cost growth on deep nests (the O(n²) vs
//! O(3ⁿ) claim measured as time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaris_core::ddtest::{banerjee, range_test, DdStats};
use polaris_symbolic::poly::{DivPolicy, Poly};
use polaris_symbolic::{Range, RangeEnv};

fn poly(src: &str) -> Poly {
    let full = format!("program t\nx = {src}\nend\n");
    let prog = polaris_ir::parse(&full).unwrap();
    match &prog.units[0].body.0[0].kind {
        polaris_ir::StmtKind::Assign { rhs, .. } => Poly::from_expr(rhs, DivPolicy::Exact).unwrap(),
        _ => unreachable!(),
    }
}

fn il(var: &str, lo: &str, hi: &str) -> range_test::InnerLoop {
    range_test::InnerLoop { var: var.into(), lo: poly(lo), hi: poly(hi), step: 1 }
}

fn bench_range_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_test");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    // TRFD: the worked example of §3.3.1.
    let trfd = range_test::RefSpec {
        subs: vec![poly("(i*(n**2+n) + j**2 - j)/2 + k + 1")],
        inner: vec![il("J", "0", "n - 1"), il("K", "0", "j - 1")],
    };
    let mut env = RangeEnv::new();
    env.set("N", Range::at_least(Poly::int(1)));
    env.set("I", Range::new(Some(Poly::int(0)), Some(poly("m - 1"))));
    let sl = il("I", "0", "m - 1");
    group.bench_function("trfd_outer", |b| {
        b.iter(|| {
            let stats = DdStats::new();
            assert!(range_test::no_carried_dependence(
                &trfd, &trfd, "I", 1, &sl, &env, &stats, true
            ));
        })
    });
    // OCEAN: requires the permutation step.
    let inner = vec![il("J", "0", "zk"), il("I", "0", "128")];
    let f = range_test::RefSpec { subs: vec![poly("258*x*j + 129*k + i + 1")], inner: inner.clone() };
    let g = range_test::RefSpec {
        subs: vec![poly("258*x*j + 129*k + i + 1 + 129*x")],
        inner,
    };
    let mut envk = RangeEnv::new();
    envk.set("K", Range::new(Some(Poly::int(0)), Some(poly("x - 1"))));
    envk.set("X", Range::at_least(Poly::int(1)));
    envk.set("ZK", Range::at_least(Poly::int(0)));
    let slk = il("K", "0", "x - 1");
    group.bench_function("ocean_permuted", |b| {
        b.iter(|| {
            let stats = DdStats::new();
            assert!(range_test::no_carried_dependence(
                &f, &g, "K", 1, &slk, &envk, &stats, true
            ));
        })
    });
    group.finish();
}

fn bench_banerjee_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("banerjee_depth");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for n in [2usize, 4, 6, 8] {
        let common: Vec<banerjee::Coupled> = (0..n)
            .map(|k| banerjee::Coupled { a: (3 * k + 1) as i128, b: (3 * k + 1) as i128, lo: 0, hi: 9 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let stats = DdStats::new();
                std::hint::black_box(banerjee::carried_dependence_possible(
                    1, &common, 0, &[], &stats,
                ));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_test, bench_banerjee_depth);
criterion_main!(benches);

//! # polaris-bench — evaluation harnesses
//!
//! One binary per table/figure of the paper's evaluation (§4):
//!
//! * `table1`  — the benchmark inventory (origin, lines of code, serial
//!   time), ours vs the paper's,
//! * `figure7` — 8-processor speedups, Polaris vs the PFA-like baseline,
//!   for all sixteen codes,
//! * `figure6` — PD-test speedup and potential slowdown vs processor
//!   count for the TRACK/NLFILT partially parallel loop (simulated,
//!   deterministic), plus a real-thread measurement via
//!   `polaris-runtime`,
//! * `ablation` — the §3.3 claims: speedup collapse without the range
//!   test / privatization / induction / run-time tests, the direction-
//!   vector complexity comparison, and static-vs-dynamic scheduling.
//!
//! Criterion benches cover compiler throughput (`compile`), the real
//! threaded LRPD test (`pd_test`), and dependence-test costs (`ddtest`).

use polaris_core::{compile, CompileReport, PassOptions};
use polaris_ir::Program;
use polaris_machine::{run, run_recorded, run_serial, CodegenModel, MachineConfig, Schedule};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Compile a benchmark with the given options, returning the program
/// and report (panics on compile errors — harness context).
pub fn compile_bench(
    b: &polaris_benchmarks::Benchmark,
    opts: &PassOptions,
) -> (Program, CompileReport) {
    let mut p = b.program();
    let rep = compile(&mut p, opts).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    (p, rep)
}

/// Audit a benchmark's parallelization with the run-time dependence
/// oracle: compile with the full Polaris pipeline, execute serially with
/// the trace attached, and cross-check every claim (see
/// `polaris_machine::oracle`). Panics on compile/run errors — harness
/// context.
pub fn oracle_report(b: &polaris_benchmarks::Benchmark) -> polaris_runtime::OracleReport {
    let (p, rep) = compile_bench(b, &PassOptions::polaris());
    polaris_machine::audit(&p, &rep).unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name))
}

/// Per-kernel static-verification summary: inter-pass invariant totals,
/// static race verdicts over the lowered plan, and the static-vs-oracle
/// agreement (the Figure 7 schema-v4 `verify` block).
#[derive(Debug, Clone, Default)]
pub struct VerifyRow {
    pub invariants_checked: u64,
    pub invariant_violations: u64,
    pub parallel_claims: usize,
    pub clean: usize,
    pub needs_privatization: usize,
    pub potential_race: usize,
    /// PARALLEL claims joined against the runtime oracle.
    pub compared: usize,
    /// Static abstained, oracle ran clean (detector conservative).
    pub precision_misses: usize,
    /// Static said clean, oracle observed a violation. Must be zero.
    pub soundness_failures: usize,
}

/// Compile a benchmark once, run [`polaris_verify::verify_compiled`]
/// over the result, audit it with the runtime oracle, and cross-check
/// the two (panics on compile/run errors or on ill-formed final IR —
/// harness context).
pub fn verify_row(b: &polaris_benchmarks::Benchmark) -> VerifyRow {
    let (p, rep) = compile_bench(b, &PassOptions::polaris());
    let v = polaris_verify::verify_compiled(&p, &rep);
    assert!(v.final_violations.is_empty(), "{}: {:?}", b.name, v.final_violations);
    let mut row = VerifyRow {
        invariants_checked: v.invariants_checked,
        invariant_violations: v.invariant_violations,
        ..VerifyRow::default()
    };
    if let Some(race) = &v.race {
        row.parallel_claims = race.parallel_claims();
        row.clean = race.count(polaris_verify::RaceVerdict::Clean);
        row.needs_privatization = race.count(polaris_verify::RaceVerdict::NeedsPrivatization);
        row.potential_race = race.count(polaris_verify::RaceVerdict::PotentialRace);
        let oracle = polaris_machine::audit(&p, &rep)
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name));
        let a = polaris_verify::agreement(race, &oracle);
        row.compared = a.compared;
        row.precision_misses = a.precision_misses.len();
        row.soundness_failures = a.soundness_failures.len();
    }
    row
}

/// Per-kernel irregular-tier summary (the Figure 7 schema-v6
/// `irregular` block): loop classification counts from the compile
/// report, the property-pass outcomes that produced them, and the
/// static race / oracle agreement for the kernel.
#[derive(Debug, Clone)]
pub struct IrregularRow {
    pub name: &'static str,
    /// Tier the benchmark registry pins for this kernel.
    pub expected_tier: &'static str,
    pub parallel_loops: usize,
    pub speculative_loops: usize,
    pub serial_loops: usize,
    /// `(run, proved)` outcomes of the property-based disjointness rule.
    pub props_rule: (u64, u64),
    /// Index arrays the `idxprop` stage proved at least one property of.
    pub idxprop_proved: usize,
    /// Static race verdicts over the kernel's PARALLEL claims.
    pub race_clean: usize,
    pub race_flagged: usize,
    /// Static `clean` contradicted by the runtime oracle. Must be zero.
    pub soundness_failures: usize,
}

impl IrregularRow {
    /// The tier the compiler actually landed the kernel in: `"lrpd"` if
    /// any loop ships as a run-time speculation, else `"static"` if any
    /// loop is proven parallel at compile time, else `"serial"`.
    pub fn tier(&self) -> &'static str {
        if self.speculative_loops > 0 {
            "lrpd"
        } else if self.parallel_loops > 0 {
            "static"
        } else {
            "serial"
        }
    }
}

/// Compile one irregular kernel, classify its loops into tiers, and
/// cross-check the static claims against the race detector and the
/// runtime oracle (panics on compile/run errors — harness context).
pub fn irregular_row(
    b: &polaris_benchmarks::Benchmark,
    expected_tier: &'static str,
) -> IrregularRow {
    let (_, rep) = compile_bench(b, &PassOptions::polaris());
    let v = verify_row(b);
    IrregularRow {
        name: b.name,
        expected_tier,
        parallel_loops: rep.loops.iter().filter(|l| l.parallel).count(),
        speculative_loops: rep.loops.iter().filter(|l| l.speculative).count(),
        serial_loops: rep.loops.iter().filter(|l| !l.parallel && !l.speculative).count(),
        props_rule: rep.dd_props,
        idxprop_proved: rep.idxprop.proved,
        race_clean: v.clean,
        race_flagged: v.needs_privatization + v.potential_race,
        soundness_failures: v.soundness_failures,
    }
}

/// Per-kernel compile-time observability breakdown: where the pipeline
/// spent its time (per pass, real microseconds from the monotonic
/// recorder clock) and what the typed counters observed — the Figure 7
/// ablation attribution data (`BENCH_figure7.json` schema v3 `obs`
/// block).
#[derive(Debug, Clone)]
pub struct ObsBreakdown {
    /// Total wall time of the `compile` root span, µs.
    pub compile_us: u64,
    /// `(stage name, total µs)` in pipeline run order.
    pub passes: Vec<(&'static str, u64)>,
    /// Typed-counter snapshot (stable dotted name → value).
    pub counters: BTreeMap<&'static str, u64>,
}

/// Compile a benchmark with a monotonic [`polaris_obs::Recorder`]
/// attached and aggregate the trace into an [`ObsBreakdown`] (panics on
/// compile errors — harness context).
pub fn obs_breakdown(b: &polaris_benchmarks::Benchmark, opts: &PassOptions) -> ObsBreakdown {
    let rec = polaris_obs::Recorder::monotonic();
    let mut p = b.program();
    polaris_core::compile_recorded(&mut p, opts, &rec)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let spans = polaris_obs::aggregate_spans(&rec.events());
    let span_us = |name: String| spans.get(&("compile", name)).map_or(0, |a| a.total_us);
    let passes = polaris_core::pipeline::STAGE_NAMES
        .iter()
        .map(|&name| (name, span_us(format!("pass:{name}"))))
        .collect();
    ObsBreakdown {
        compile_us: span_us("compile".to_string()),
        passes,
        counters: rec.counters(),
    }
}

/// Measured speedups of one benchmark under both compilers.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub name: &'static str,
    pub serial_cycles: u64,
    pub polaris: f64,
    pub vfa: f64,
}

/// Run one benchmark under serial / Polaris@procs / VFA@procs.
pub fn speedups(b: &polaris_benchmarks::Benchmark, procs: usize) -> SpeedupRow {
    let serial = run_serial(&b.program()).unwrap();
    let (pol, _) = compile_bench(b, &PassOptions::polaris());
    let rp = run(&pol, &MachineConfig::challenge_8().with_procs(procs)).unwrap();
    let (vfa, _) = compile_bench(b, &PassOptions::vfa());
    let rv = run(
        &vfa,
        &MachineConfig::challenge_8()
            .with_procs(procs)
            .with_codegen(CodegenModel::aggressive()),
    )
    .unwrap();
    assert_eq!(serial.output, rp.output, "{}: polaris output mismatch", b.name);
    assert_eq!(serial.output, rv.output, "{}: vfa output mismatch", b.name);
    SpeedupRow {
        name: b.name,
        serial_cycles: serial.cycles,
        polaris: serial.cycles as f64 / rp.cycles as f64,
        vfa: serial.cycles as f64 / rv.cycles as f64,
    }
}

/// Real-thread measurement of one Polaris-compiled benchmark: wall
/// times of the serial interpreter and of `ExecMode::Threaded` with a
/// static schedule, plus a checksum of the (identical) printed output.
/// The output equality assertion inside is the same contract the
/// equivalence tests enforce — a harness run that diverged would panic
/// rather than report bogus numbers.
#[derive(Debug, Clone)]
pub struct ThreadedRow {
    pub name: &'static str,
    pub serial_wall: Duration,
    pub threaded_wall: Duration,
    /// Simulated cycle counts (kept alongside the wall clocks so the
    /// model-vs-reality ratio can be reported per kernel).
    pub serial_cycles: u64,
    pub threaded_sim_cycles: u64,
    /// FNV-1a over the printed output lines.
    pub checksum: u64,
}

impl ThreadedRow {
    /// Wall-clock speedup of the threaded backend over the serial
    /// interpreter (below 1.0 = real threads were slower).
    pub fn real_speedup(&self) -> f64 {
        self.serial_wall.as_secs_f64() / self.threaded_wall.as_secs_f64().max(1e-9)
    }

    /// Speedup the cycle model predicts for the same run.
    pub fn sim_speedup(&self) -> f64 {
        self.serial_cycles as f64 / self.threaded_sim_cycles as f64
    }
}

/// Run one benchmark serially and on real threads, asserting identical
/// output (see `ThreadedRow`).
pub fn threaded_row(b: &polaris_benchmarks::Benchmark, threads: usize) -> ThreadedRow {
    let serial = run_serial(&b.program()).unwrap();
    let (pol, _) = compile_bench(b, &PassOptions::polaris());
    let thr = run(&pol, &MachineConfig::threaded(threads, Schedule::Static)).unwrap();
    assert_eq!(serial.output, thr.output, "{}: threaded output mismatch", b.name);
    ThreadedRow {
        name: b.name,
        serial_wall: serial.wall,
        threaded_wall: thr.wall,
        serial_cycles: serial.cycles,
        threaded_sim_cycles: thr.cycles,
        checksum: fnv1a(&thr.output),
    }
}

/// Serial wall clocks of the two execution engines on one
/// Polaris-compiled benchmark: the retained tree-walking oracle vs the
/// bytecode VM (schema v5 `tree_serial_wall_ms` / `vm_serial_wall_ms`
/// columns). Outputs are asserted bit-identical inside the measurement,
/// so a reported speedup can never come from a divergent execution.
#[derive(Debug, Clone)]
pub struct EngineRow {
    pub name: &'static str,
    pub tree_wall: Duration,
    pub vm_wall: Duration,
}

impl EngineRow {
    /// Wall-clock speedup of the bytecode VM over the tree-walker on
    /// the serial backend (the tentpole number the schema-v5 gate pins).
    pub fn vm_speedup(&self) -> f64 {
        self.tree_wall.as_secs_f64() / self.vm_wall.as_secs_f64().max(1e-9)
    }
}

/// Measure one benchmark's serial wall under both engines, best of
/// `reps` runs each (interpreter timings on a shared host are noisy in
/// one direction only — the minimum is the honest estimate).
pub fn engine_row(b: &polaris_benchmarks::Benchmark, reps: usize) -> EngineRow {
    let (pol, _) = compile_bench(b, &PassOptions::polaris());
    let measure = |engine: polaris_machine::Engine| {
        let cfg = MachineConfig::serial().with_engine(engine);
        let mut best: Option<(Duration, Vec<String>)> = None;
        for _ in 0..reps.max(1) {
            let r = run(&pol, &cfg).unwrap();
            if best.as_ref().is_none_or(|(w, _)| r.wall < *w) {
                best = Some((r.wall, r.output));
            }
        }
        best.unwrap()
    };
    let (tree_wall, tree_out) = measure(polaris_machine::Engine::TreeWalk);
    let (vm_wall, vm_out) = measure(polaris_machine::Engine::Vm);
    assert_eq!(tree_out, vm_out, "{}: engine output mismatch", b.name);
    EngineRow { name: b.name, tree_wall, vm_wall }
}

/// Chunk size used for forced work-stealing measurements (matches the
/// `polarisc --schedule stealing` default).
pub const STEAL_CHUNK: usize = 4;

/// Per-kernel adaptive-scheduling summary (the Figure 7 schema-v7
/// `adaptive` block): simulated cycles under block partitioning vs the
/// work-stealing chunk queue, the strategy the adaptive dispatcher
/// settles on by its second invocation, and the steal rate observed on
/// the real threaded stealing backend. Every measurement inside asserts
/// output bit-identity against the serial reference — the determinism
/// contract — so no reported number can come from a divergent run.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    pub name: &'static str,
    /// Simulated parallel cycles under the static block schedule.
    pub block_cycles: u64,
    /// Simulated parallel cycles under `Schedule::Stealing` forced on
    /// every parallel loop (pays per-chunk dispatch even where uniform).
    pub steal_cycles: u64,
    /// Simulated cycles of the *second* adaptive invocation: stealing
    /// only where the measured variance warrants it. On skewed kernels
    /// this must beat `block_cycles`.
    pub adaptive_cycles: u64,
    /// Strategy the adaptive dispatcher chose for the kernel's hottest
    /// loop on its *second* invocation ("serial"/"static"/"speculative";
    /// "-" when no loop was adaptively dispatched).
    pub chosen_strategy: String,
    /// Chunking of the same decision ("block" / "self:N" / "steal:N").
    pub chosen_chunking: String,
    /// Dispatcher event of that decision (a measured loop re-dispatches,
    /// so "redispatch" is the expected steady state).
    pub chosen_event: String,
    /// Chunks obtained by stealing / total chunks claimed on the real
    /// threaded stealing run (0.0 when the kernel has no threaded
    /// parallel loop).
    pub steal_rate: f64,
}

impl AdaptiveRow {
    /// Cost-model speedup of stealing chunking over block partitioning
    /// (above 1.0 = stealing wins, expected on skewed-cost kernels).
    pub fn steal_over_block(&self) -> f64 {
        self.block_cycles as f64 / self.steal_cycles.max(1) as f64
    }

    /// Cost-model speedup of the adaptive dispatcher's re-dispatched run
    /// over uniform block partitioning.
    pub fn adaptive_over_block(&self) -> f64 {
        self.block_cycles as f64 / self.adaptive_cycles.max(1) as f64
    }
}

/// Measure one benchmark's adaptive-scheduling profile (see
/// [`AdaptiveRow`]): block vs stealing simulated cycles, two adaptive
/// invocations sharing one controller (measure → re-dispatch), and a
/// counter-instrumented real-thread stealing run.
pub fn adaptive_row(
    b: &polaris_benchmarks::Benchmark,
    procs: usize,
    threads: usize,
) -> AdaptiveRow {
    let serial = run_serial(&b.program()).unwrap();
    let (pol, _) = compile_bench(b, &PassOptions::polaris());
    let block = run(&pol, &MachineConfig::challenge_8().with_procs(procs)).unwrap();
    let mut scfg = MachineConfig::challenge_8().with_procs(procs);
    scfg.schedule = Schedule::Stealing { chunk: STEAL_CHUNK };
    let steal_sim = run(&pol, &scfg).unwrap();
    assert_eq!(serial.output, block.output, "{}: block output mismatch", b.name);
    assert_eq!(serial.output, steal_sim.output, "{}: stealing output mismatch", b.name);

    // Two invocations sharing one controller: the first measures, the
    // second re-dispatches to the measured winner.
    let ctrl = Arc::new(polaris_runtime::AdaptiveController::new());
    let acfg =
        MachineConfig::challenge_8().with_procs(procs).with_adaptive(Arc::clone(&ctrl));
    let a1 = run(&pol, &acfg).unwrap();
    let a2 = run(&pol, &acfg).unwrap();
    assert_eq!(serial.output, a1.output, "{}: adaptive output mismatch", b.name);
    assert_eq!(a1.output, a2.output, "{}: adaptive re-dispatch changed output", b.name);
    // The reported decision: the hottest loop the dispatcher moved to
    // stealing, else the kernel's hottest loop overall.
    let rows = ctrl.decision_rows();
    let hot = rows
        .iter()
        .filter(|r| r.chunking.starts_with("steal"))
        .max_by_key(|r| (r.trip, r.loop_id))
        .or_else(|| rows.iter().max_by_key(|r| (r.trip, r.loop_id)));

    // Real threads under forced stealing, with the steal counters on.
    let rec = polaris_obs::Recorder::monotonic();
    let tcfg = MachineConfig::threaded(threads, Schedule::Stealing { chunk: STEAL_CHUNK });
    let thr = run_recorded(&pol, &tcfg, &rec).unwrap();
    assert_eq!(serial.output, thr.output, "{}: threaded stealing output mismatch", b.name);
    let counters = rec.counters();
    let chunks = counters.get("exec.threaded.chunks").copied().unwrap_or(0);
    let steals = counters.get("exec.steal.chunks").copied().unwrap_or(0);
    AdaptiveRow {
        name: b.name,
        block_cycles: block.cycles,
        steal_cycles: steal_sim.cycles,
        adaptive_cycles: a2.cycles,
        chosen_strategy: hot.map_or_else(|| "-".into(), |r| r.strategy.to_string()),
        chosen_chunking: hot.map_or_else(|| "-".into(), |r| r.chunking.clone()),
        chosen_event: hot.map_or_else(|| "-".into(), |r| r.event.to_string()),
        steal_rate: if chunks == 0 { 0.0 } else { steals as f64 / chunks as f64 },
    }
}

/// Per-kernel nest-transformation summary (the Figure 7 schema-v8
/// `nest` block): which loop-nest restructurings the compiler applied
/// under a legality certificate, the prover's precision over all
/// candidates it judged, and the independent re-prover's verdicts over
/// the emitted certificates. A re-prover-rejected certificate is a
/// hard harness failure, same as an oracle violation.
#[derive(Debug, Clone)]
pub struct NestRow {
    pub name: &'static str,
    /// Transformation the benchmark registry pins for this kernel
    /// ("interchange" / "tile").
    pub expected: &'static str,
    pub summarized: usize,
    pub interchanges: usize,
    pub tiles: usize,
    pub fusions: usize,
    /// proved / (proved + rejected) over every candidate the legality
    /// prover judged (1.0 when nothing was judged).
    pub legality_precision: f64,
    /// Certificates emitted into the compile report.
    pub certs: usize,
    /// Certificates the `polaris-verify` re-prover re-derived and
    /// accepted from the final IR.
    pub reprover_accepted: usize,
    /// Certificates the re-prover rejected. Must be zero.
    pub reprover_rejected: usize,
}

impl NestRow {
    /// True when the pinned transformation was applied under a cert.
    pub fn expected_applied(&self) -> bool {
        match self.expected {
            "interchange" => self.interchanges > 0,
            "tile" => self.tiles > 0,
            "fuse" => self.fusions > 0,
            _ => false,
        }
    }
}

/// Compile one locality kernel, summarize its nest transformations, and
/// re-derive every emitted legality certificate with the independent
/// `polaris-verify` re-prover (panics on compile errors — harness
/// context).
pub fn nest_row(b: &polaris_benchmarks::Benchmark, expected: &'static str) -> NestRow {
    let (p, rep) = compile_bench(b, &PassOptions::polaris());
    let checks = polaris_verify::recheck_certs(&p, &rep);
    NestRow {
        name: b.name,
        expected,
        summarized: rep.nest.summarized,
        interchanges: rep.nest.interchanges,
        tiles: rep.nest.tiles,
        fusions: rep.nest.fusions,
        legality_precision: rep.nest.precision(),
        certs: rep.nest.certs.len(),
        reprover_accepted: checks.iter().filter(|c| c.accepted).count(),
        reprover_rejected: checks.iter().filter(|c| !c.accepted).count(),
    }
}

/// 64-bit FNV-1a over output lines (newline-delimited), the checksum
/// recorded in `BENCH_figure7.json`.
pub fn fnv1a(lines: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for line in lines {
        for &byte in line.as_bytes().iter().chain(b"\n") {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Speedup of a Polaris-compiled benchmark at a processor count
/// (used by the figure6 sweep).
pub fn polaris_speedup_at(b: &polaris_benchmarks::Benchmark, procs: usize) -> f64 {
    let serial = run_serial(&b.program()).unwrap();
    let (pol, _) = compile_bench(b, &PassOptions::polaris());
    let r = run(&pol, &MachineConfig::challenge_8().with_procs(procs)).unwrap();
    serial.cycles as f64 / r.cycles as f64
}

/// An ASCII bar for quick visual comparison in terminal output.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value / scale) * 40.0).round().max(0.0) as usize;
    "#".repeat(n.min(60))
}

//! Load generator for the `polarisd` compile service: drives an
//! in-process service instance with a multi-client request stream under
//! *injected failures* (the same seeded chaos plan the conformance suite
//! uses, at gentler rates) and reports end-to-end latency percentiles,
//! cache hit rate, and the service's resilience counters as
//! `BENCH_polarisd.json`.
//!
//! ```text
//! polarisd_load [--json [PATH]] [--requests N] [--workers N] [--clients N] [--seed N]
//!   --json [PATH]  write the machine-readable report (default PATH:
//!                  BENCH_polarisd.json); always prints a human summary
//! ```
//!
//! Exit code 1 if any served `ok`/`cached` response's checksum differs
//! from an independent clean compile of the unit — the one result a
//! resilient service is never allowed to get wrong, load or no load.

use polaris_obs::Recorder;
use polarisd::chaos::ChaosPlan;
use polarisd::proto::{fnv1a, Request, Status};
use polarisd::service::{Service, ServiceConfig};
use std::collections::VecDeque;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const UNITS: usize = 8;

fn unit_source(u: usize) -> String {
    let n = 48 + u * 16;
    format!(
        "program load{u}\n\
         real v({n})\n\
         s = 0.0\n\
         do i = 1, {n}\n\
         \x20 v(i) = i * 2.0\n\
         end do\n\
         do i = 1, {n}\n\
         \x20 s = s + v(i)\n\
         end do\n\
         print *, s\n\
         end\n"
    )
}

struct Args {
    json: Option<String>,
    requests: u64,
    workers: usize,
    clients: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { json: None, requests: 400, workers: 4, clients: 4, seed: 1 };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                args.json = Some(match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => "BENCH_polarisd.json".to_string(),
                });
            }
            "--requests" => args.requests = num(it.next())?,
            "--workers" => args.workers = num(it.next())? as usize,
            "--clients" => args.clients = num(it.next())?.max(1),
            "--seed" => args.seed = num(it.next())?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(args)
}

fn num(v: Option<String>) -> Result<u64, String> {
    v.as_deref()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "expected a numeric argument".to_string())
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as u64 * pct) / 100).min(sorted.len() as u64 - 1);
    sorted[idx as usize]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("polarisd_load: {e}");
            eprintln!(
                "usage: polarisd_load [--json [PATH]] [--requests N] [--workers N] \
                 [--clients N] [--seed N]"
            );
            return ExitCode::from(2);
        }
    };

    // Independent clean compiles: the ground truth every served result
    // is checked against.
    let sources: Vec<String> = (0..UNITS).map(unit_source).collect();
    let clean: Vec<u64> = sources
        .iter()
        .map(|src| {
            let mut p = polaris_ir::parse(src).expect("corpus parses");
            polaris_core::compile(&mut p, &polaris_core::PassOptions::polaris())
                .expect("corpus compiles");
            fnv1a(polaris_ir::printer::print_program(&p).as_bytes())
        })
        .collect();

    let chaos = ChaosPlan::seeded(args.seed)
        .with_panic_pct(5)
        .with_corrupt_pct(3)
        .with_stall(2, 10)
        .with_kill_pct(1)
        .with_poison_pct(5);
    let cfg = ServiceConfig {
        workers: args.workers.max(1),
        queue_capacity: (args.workers.max(1) * 8).max(32),
        ..ServiceConfig::default()
    };
    let service = Service::with_chaos(cfg, Recorder::disabled(), Arc::new(chaos));

    // Closed-loop load at 2× worker concurrency: enough to keep every
    // worker busy without flooding the queue into pure shedding.
    let depth = (args.workers.max(1) * 2).max(4);
    let mut latencies: Vec<u64> = Vec::with_capacity(args.requests as usize);
    let mut counts = [0u64; 7]; // by Status discriminant order below
    let mut mismatches = 0u64;
    let mut window: VecDeque<(u64, Instant, polarisd::Ticket)> = VecDeque::new();
    let started = Instant::now();

    let settle = |(id, t0, ticket): (u64, Instant, polarisd::Ticket),
                      latencies: &mut Vec<u64>,
                      counts: &mut [u64; 7],
                      mismatches: &mut u64| {
        let resp = ticket
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("request {id} hung"));
        latencies.push(t0.elapsed().as_micros() as u64);
        let slot = match resp.status {
            Status::Ok => 0,
            Status::Cached => 1,
            Status::Degraded => 2,
            Status::Timeout => 3,
            Status::Quarantined => 4,
            Status::Rejected => 5,
            Status::Error => 6,
        };
        counts[slot] += 1;
        if matches!(resp.status, Status::Ok | Status::Cached)
            && resp.checksum != Some(clean[(id % UNITS as u64) as usize])
        {
            eprintln!("CHECKSUM MISMATCH on request {id}: {resp:?}");
            *mismatches += 1;
        }
    };

    for id in 0..args.requests {
        let req = Request {
            id,
            client: format!("c{}", id % args.clients),
            vfa: false,
            deadline_ms: None,
            return_program: false,
            source: sources[(id % UNITS as u64) as usize].clone(),
        };
        window.push_back((id, Instant::now(), service.submit(req)));
        if window.len() >= depth {
            let item = window.pop_front().unwrap();
            settle(item, &mut latencies, &mut counts, &mut mismatches);
        }
    }
    for item in std::mem::take(&mut window) {
        settle(item, &mut latencies, &mut counts, &mut mismatches);
    }
    let wall = started.elapsed();
    let stats = service.shutdown();

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50);
    let p99 = percentile(&latencies, 99);
    let max = latencies.last().copied().unwrap_or(0);
    let lookups = stats.cache_hits + stats.cache_misses;
    let hit_rate = if lookups == 0 { 0.0 } else { stats.cache_hits as f64 / lookups as f64 };
    let throughput = args.requests as f64 / wall.as_secs_f64().max(1e-9);

    println!(
        "polarisd_load: {} requests, {} workers, {} clients, seed {}",
        args.requests, args.workers, args.clients, args.seed
    );
    println!(
        "  latency p50 {p50}us  p99 {p99}us  max {max}us   throughput {throughput:.0} req/s"
    );
    println!(
        "  cache hit rate {:.1}%   retries {}  respawns {}  shed {}  poison purged {}",
        hit_rate * 100.0,
        stats.retries,
        stats.respawns,
        stats.shed,
        stats.poison_purged
    );
    println!("  checksum mismatches: {mismatches}");

    if let Some(path) = &args.json {
        let status_names =
            ["ok", "cached", "degraded", "timeout", "quarantined", "rejected", "error"];
        let statuses = status_names
            .iter()
            .zip(counts.iter())
            .map(|(n, c)| format!("\"{n}\": {c}"))
            .collect::<Vec<_>>()
            .join(", ");
        let doc = format!(
            "{{\n  \"schema\": \"polaris-bench/polarisd/v1\",\n  \
             \"requests\": {},\n  \"workers\": {},\n  \"clients\": {},\n  \
             \"seed\": {},\n  \"wall_ms\": {},\n  \"throughput_rps\": {:.1},\n  \
             \"latency_us\": {{\"p50\": {p50}, \"p99\": {p99}, \"max\": {max}}},\n  \
             \"cache_hit_rate\": {:.4},\n  \"checksum_mismatches\": {mismatches},\n  \
             \"statuses\": {{{statuses}}},\n  \
             \"service\": {{\"accepted\": {}, \"answered\": {}, \"shed\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"poison_purged\": {}, \
             \"retries\": {}, \"deadline_cancels\": {}, \"quarantined\": {}, \
             \"probes\": {}, \"recovered\": {}, \"respawns\": {}}}\n}}\n",
            args.requests,
            args.workers,
            args.clients,
            args.seed,
            wall.as_millis(),
            throughput,
            hit_rate,
            stats.accepted,
            stats.answered,
            stats.shed,
            stats.cache_hits,
            stats.cache_misses,
            stats.poison_purged,
            stats.retries,
            stats.deadline_cancels,
            stats.quarantined,
            stats.probes,
            stats.recovered,
            stats.respawns,
        );
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("polarisd_load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  wrote {path}");
    }

    if mismatches > 0 {
        eprintln!("polarisd_load: {mismatches} wrong-checksum responses — FAILING");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Regenerate Table 1: benchmark codes studied — origin, lines of code
//! and serial execution time. Paper numbers are printed alongside ours;
//! our kernels are mini-applications, so LoC and times are smaller by
//! construction (see DESIGN.md).

use polaris_machine::run_serial;

fn main() {
    println!("Table 1: Benchmark codes studied");
    println!(
        "{:<9} {:>8} | {:>9} {:>12} | {:>10} {:>12}",
        "Program", "Origin", "LoC(ours)", "LoC(paper)", "Ser(ours)", "Ser(paper)"
    );
    println!("{:-<72}", "");
    for b in polaris_benchmarks::all() {
        let r = run_serial(&b.program()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        println!(
            "{:<9} {:>8} | {:>9} {:>12} | {:>9.3}s {:>11.0}s",
            b.name,
            b.origin.label(),
            b.loc(),
            b.paper_loc,
            r.seconds(),
            b.paper_serial_s,
        );
    }
    println!();
    println!("(ours: simulated seconds at 150 MHz on the cycle model;");
    println!(" paper: wall-clock on one 150 MHz R4400 of the SGI Challenge)");
}

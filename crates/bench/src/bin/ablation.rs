//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. §3.3's claim that without nonlinear dependence testing several
//!    codes "would exhibit a speedup of at most two" — range test off.
//! 2. Array privatization off (gates BDNA/CMHOG/HYDRO2D/SWIM/TFFT2).
//! 3. Generalized induction off (gates TRFD/SU2COR).
//! 4. Run-time (LRPD) tests off (gates WAVE5/TRACK).
//! 5. The direction-vector complexity claim: Banerjee-with-directions
//!    explores O(3^n) vectors on deep nests where the range test does
//!    O(n^2) probes.
//! 6. Static vs dynamic DOALL scheduling on a triangular workload.

use polaris_core::{compile, DdStats, InductionMode, PassOptions};
use polaris_machine::{run, run_serial, MachineConfig, Schedule};

fn speedup_with(bench: &polaris_benchmarks::Benchmark, opts: &PassOptions, procs: usize) -> f64 {
    let serial = run_serial(&bench.program()).unwrap();
    let mut p = bench.program();
    compile(&mut p, opts).unwrap();
    let r = run(&p, &MachineConfig::challenge_8().with_procs(procs)).unwrap();
    assert_eq!(serial.output, r.output, "{} output mismatch", bench.name);
    serial.cycles as f64 / r.cycles as f64
}

fn ablate(title: &str, names: &[&str], tweak: impl Fn(&mut PassOptions)) {
    println!("--- {title}");
    for name in names {
        let b = polaris_benchmarks::by_name(name).unwrap();
        let full = speedup_with(&b, &PassOptions::polaris(), 8);
        let mut opts = PassOptions::polaris();
        tweak(&mut opts);
        let cut = speedup_with(&b, &opts, 8);
        println!("  {:<9} full {:5.2}x   ablated {:5.2}x", b.name, full, cut);
    }
    println!();
}

fn main() {
    println!("Ablations (8 processors)\n");

    ablate(
        "1. range test OFF (the §3.3 'speedup of at most two' claim)",
        &["TRFD", "OCEAN"],
        |o| {
            o.range_test = false;
            o.permutation = false;
        },
    );
    ablate(
        "2. array privatization OFF",
        &["BDNA", "CMHOG", "HYDRO2D", "SWIM", "TFFT2"],
        |o| o.array_privatization = false,
    );
    ablate("3. generalized induction OFF (simple only)", &["TRFD", "SU2COR"], |o| {
        o.induction = InductionMode::Simple
    });
    ablate("4. run-time (LRPD) test OFF", &["WAVE5", "TRACK"], |o| o.speculation = false);

    // 5. direction-vector complexity on synthetic deep nests.
    println!("--- 5. direction vectors tested: Banerjee (O(3^n)) vs range test (O(n^2))");
    println!("  {:<6} {:>18} {:>18}", "depth", "banerjee vectors", "range probes");
    for n in 1..=7usize {
        let src = deep_nest(n);
        // Banerjee-only pipeline
        let mut opts = PassOptions::vfa();
        opts.induction = InductionMode::Off;
        let mut p = polaris_ir::parse(&src).unwrap();
        let _ = compile(&mut p, &opts).unwrap();
        let banerjee = count_with(&src, &opts).0;
        let polaris = count_with(&src, &PassOptions::polaris()).2;
        println!("  {n:<6} {banerjee:>18} {polaris:>18}");
    }
    println!("  (synthetic nests; the paper's bounds are worst-case: O(3^n) vs O(n^2))");
    println!();
    println!("  counters over the full 16-code suite:");
    let mut bsum = 0u64;
    let mut rsum = 0u64;
    for b in polaris_benchmarks::all() {
        let (bv, _, _, _) = {
            let mut p = b.program();
            let rep = compile(&mut p, &PassOptions::vfa()).unwrap();
            rep.dd_counters
        };
        let (_, _, rp, _) = {
            let mut p = b.program();
            let rep = compile(&mut p, &PassOptions::polaris()).unwrap();
            rep.dd_counters
        };
        bsum += bv;
        rsum += rp;
    }
    println!("  VFA direction vectors tested: {bsum}");
    println!("  Polaris range-test probes:    {rsum}");
    println!();

    // 6. scheduling policy on a triangular DOALL: simulated speedup
    // side by side with the real-thread backend's wall clock under the
    // same chunk plans (identical iteration-to-chunk mapping).
    println!("--- 6. static vs dynamic (self-scheduling) DOALL scheduling, triangular loop");
    let src = "program tri\nreal a(500,500)\n!$polaris doall private(J)\ndo i = 1, 500\n  do j = 1, i\n    a(j, i) = j*0.5 + i\n  end do\nend do\nprint *, a(1,1)\nend\n";
    let prog = polaris_ir::parse(src).unwrap();
    let serial = run_serial(&prog).unwrap();
    for (label, sched) in [
        ("static", Schedule::Static),
        ("dynamic(1)", Schedule::Dynamic { chunk: 1 }),
        ("dynamic(8)", Schedule::Dynamic { chunk: 8 }),
    ] {
        let mut cfg = MachineConfig::challenge_8();
        cfg.schedule = sched;
        let r = run(&prog, &cfg).unwrap();
        let rt = run(&prog, &polaris_machine::MachineConfig::threaded(8, sched)).unwrap();
        assert_eq!(rt.output, serial.output, "threaded {label} output mismatch");
        println!(
            "  {label:<11} speedup {:5.2}x   threaded(8) wall {:6.1}ms",
            serial.cycles as f64 / r.cycles as f64,
            rt.wall.as_secs_f64() * 1e3
        );
    }
}

/// An n-deep nest whose dependence question exercises many direction
/// vectors: every level contributes a coupled term.
fn deep_nest(n: usize) -> String {
    let mut src = String::from("program deep\nreal a(4000)\n");
    let mut sub = String::new();
    for k in 1..=n {
        src.push_str(&format!("do i{k} = 1, 4\n"));
        if k > 1 {
            sub.push_str(" + ");
        }
        sub.push_str(&format!("{}*i{k}", 3 * k - 2));
    }
    src.push_str(&format!("a({sub} + 1) = a({sub} + 2) + 1.0\n"));
    for _ in 0..n {
        src.push_str("end do\n");
    }
    src.push_str("end\n");
    src
}

/// Compile and return the dd counters (banerjee, gcd, range, perms).
fn count_with(src: &str, opts: &PassOptions) -> (u64, u64, u64, u64) {
    let mut p = polaris_ir::parse(src).unwrap();
    let rep = compile(&mut p, opts).unwrap();
    let _ = DdStats::new();
    rep.dd_counters
}

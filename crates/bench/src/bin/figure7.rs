//! Regenerate Figure 7: 8-processor speedup, Polaris vs the PFA-like
//! baseline ("VFA"), for the sixteen evaluation codes.
//!
//! The paper's claims to reproduce (shape, not absolute values):
//! * Polaris delivers substantially better speedups on about half the
//!   codes (the privatization / generalized-induction / range-test /
//!   run-time-test group),
//! * a few programs sit near 1 for both compilers,
//! * PFA edges ahead on a small number of codes thanks to its more
//!   aggressive back end — and that same back end hurts it on the
//!   conditional-heavy APPSP and TOMCATV despite equal parallelism.

use polaris_bench::{bar, speedups};

fn main() {
    println!("Figure 7: Speedup on 8 processors — Polaris vs VFA (PFA-like baseline)");
    println!();
    println!("{:<9} {:>8} {:>8}   0        2        4        6        8", "Program", "Polaris", "VFA");
    println!("{:-<76}", "");
    let mut wins_p = 0;
    let mut wins_v = 0;
    let mut rows = Vec::new();
    for b in polaris_benchmarks::all() {
        let row = speedups(&b, 8);
        println!("{:<9} {:>7.2}x {:>7.2}x   P|{}", row.name, row.polaris, row.vfa, bar(row.polaris, 8.0));
        println!("{:<9} {:>8} {:>8}   V|{}", "", "", "", bar(row.vfa, 8.0));
        if row.polaris > row.vfa * 1.02 {
            wins_p += 1;
        } else if row.vfa > row.polaris * 1.02 {
            wins_v += 1;
        }
        rows.push(row);
    }
    println!("{:-<76}", "");
    let geo = |f: &dyn Fn(&polaris_bench::SpeedupRow) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    println!(
        "geometric mean: Polaris {:.2}x   VFA {:.2}x",
        geo(&|r| r.polaris),
        geo(&|r| r.vfa)
    );
    println!(
        "Polaris clearly ahead on {wins_p} of 16 codes; baseline ahead on {wins_v} \
         (paper: PFA ahead on 2)."
    );
}

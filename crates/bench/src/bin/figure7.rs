//! Regenerate Figure 7: 8-processor speedup, Polaris vs the PFA-like
//! baseline ("VFA"), for the sixteen evaluation codes.
//!
//! The paper's claims to reproduce (shape, not absolute values):
//! * Polaris delivers substantially better speedups on about half the
//!   codes (the privatization / generalized-induction / range-test /
//!   run-time-test group),
//! * a few programs sit near 1 for both compilers,
//! * PFA edges ahead on a small number of codes thanks to its more
//!   aggressive back end — and that same back end hurts it on the
//!   conditional-heavy APPSP and TOMCATV despite equal parallelism.
//!
//! Alongside the simulated numbers, every kernel is also executed on
//! the **real-thread backend** (`ExecMode::Threaded`, static schedule)
//! and the serial interpreter, and their wall clocks are shown so the
//! cycle model can be compared against reality on this host.
//!
//! ```text
//! figure7 [--json [PATH]] [--only NAME,NAME,...] [--threads N]
//!   --json [PATH]  also write a machine-readable perf trajectory
//!                  (default PATH: BENCH_figure7.json)
//!   --only LIST    restrict to a comma-separated subset of kernels
//!   --threads N    thread count for the real-thread column (default 8)
//! ```

use polaris_bench::{
    adaptive_row, bar, engine_row, irregular_row, nest_row, obs_breakdown, oracle_report,
    speedups, threaded_row, verify_row, AdaptiveRow, EngineRow, IrregularRow, NestRow,
    ObsBreakdown, SpeedupRow, ThreadedRow, VerifyRow,
};
use polaris_core::PassOptions;
use std::collections::BTreeMap;
use std::process::ExitCode;

const SCHEMA: &str = "polaris-bench/figure7/v8";

/// Serial-wall repetitions per engine for the v5 engine columns.
const ENGINE_REPS: usize = 3;

/// Dependence-oracle results aggregated over the kernels in the run:
/// how often the compiler's serial verdicts are contradicted by the
/// dynamic behaviour (completeness), attributed per pass; soundness
/// violations are a hard harness failure.
#[derive(Default)]
struct OracleAgg {
    violations: usize,
    serial_loops: usize,
    completeness_misses: usize,
    privatizable_misses: usize,
    misses_by_pass: BTreeMap<&'static str, usize>,
}

impl OracleAgg {
    fn add(&mut self, r: &polaris_runtime::OracleReport) {
        self.violations += r.violations().count();
        self.serial_loops += r.serial_loops_exercised();
        self.completeness_misses += r.completeness_misses();
        self.privatizable_misses += r.privatizable_misses();
        for (pass, n) in r.misses_by_pass() {
            *self.misses_by_pass.entry(pass).or_default() += n;
        }
    }

    fn miss_rate(&self) -> f64 {
        if self.serial_loops == 0 {
            0.0
        } else {
            self.completeness_misses as f64 / self.serial_loops as f64
        }
    }
}

/// Static-verification results aggregated over the kernels in the run
/// (schema v4 `verify` block): inter-pass invariant totals, static race
/// verdicts, and the static-vs-oracle agreement. A soundness failure —
/// static `clean` contradicted by an observed dynamic dependence — is a
/// hard harness failure, same as an oracle violation.
#[derive(Default)]
struct VerifyAgg {
    invariants_checked: u64,
    invariant_violations: u64,
    parallel_claims: usize,
    clean: usize,
    needs_privatization: usize,
    potential_race: usize,
    compared: usize,
    precision_misses: usize,
    soundness_failures: usize,
}

impl VerifyAgg {
    fn add(&mut self, r: &VerifyRow) {
        self.invariants_checked += r.invariants_checked;
        self.invariant_violations += r.invariant_violations;
        self.parallel_claims += r.parallel_claims;
        self.clean += r.clean;
        self.needs_privatization += r.needs_privatization;
        self.potential_race += r.potential_race;
        self.compared += r.compared;
        self.precision_misses += r.precision_misses;
        self.soundness_failures += r.soundness_failures;
    }
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut only: Option<Vec<String>> = None;
    let mut threads = 8usize;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().unwrap(),
                    _ => "BENCH_figure7.json".to_string(),
                };
                json_path = Some(path);
            }
            "--only" => match args.next() {
                Some(list) => {
                    only = Some(list.split(',').map(|s| s.trim().to_uppercase()).collect())
                }
                None => {
                    eprintln!("figure7: --only needs a comma-separated kernel list");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => {
                threads = match args.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => {
                        eprintln!("figure7: --threads needs a positive count");
                        return ExitCode::FAILURE;
                    }
                    Some(n) => n,
                };
            }
            other => {
                eprintln!("figure7: unknown option `{other}`");
                eprintln!("usage: figure7 [--json [PATH]] [--only NAME,NAME,...] [--threads N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let benches: Vec<_> = polaris_benchmarks::all()
        .into_iter()
        .filter(|b| only.as_ref().is_none_or(|names| names.iter().any(|n| n == b.name)))
        .collect();
    if benches.is_empty() {
        eprintln!("figure7: --only matched no kernels");
        return ExitCode::FAILURE;
    }
    let total = benches.len();

    println!("Figure 7: Speedup on 8 processors — Polaris vs VFA (PFA-like baseline)");
    println!();
    println!(
        "{:<9} {:>8} {:>8} {:>11} {:>9} {:>7}   0        2        4        6        8",
        "Program", "Polaris", "VFA", "serial(ms)", "thr(ms)", "vm(x)"
    );
    println!("{:-<104}", "");
    let mut wins_p = 0;
    let mut wins_v = 0;
    let mut rows: Vec<(SpeedupRow, ThreadedRow, ObsBreakdown, EngineRow)> = Vec::new();
    let mut oracle = OracleAgg::default();
    let mut verify = VerifyAgg::default();
    for b in &benches {
        let row = speedups(b, 8);
        let thr = threaded_row(b, threads);
        let obs = obs_breakdown(b, &PassOptions::polaris());
        let eng = engine_row(b, ENGINE_REPS);
        oracle.add(&oracle_report(b));
        verify.add(&verify_row(b));
        println!(
            "{:<9} {:>7.2}x {:>7.2}x {:>11.2} {:>9.2} {:>6.2}x   P|{}",
            row.name,
            row.polaris,
            row.vfa,
            thr.serial_wall.as_secs_f64() * 1e3,
            thr.threaded_wall.as_secs_f64() * 1e3,
            eng.vm_speedup(),
            bar(row.polaris, 8.0)
        );
        println!(
            "{:<9} {:>8} {:>8} {:>11} {:>9} {:>7}   V|{}",
            "", "", "", "", "", "",
            bar(row.vfa, 8.0)
        );
        if row.polaris > row.vfa * 1.02 {
            wins_p += 1;
        } else if row.vfa > row.polaris * 1.02 {
            wins_v += 1;
        }
        rows.push((row, thr, obs, eng));
    }
    println!("{:-<104}", "");
    type Row = (SpeedupRow, ThreadedRow, ObsBreakdown, EngineRow);
    let geo = |f: &dyn Fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let geo_polaris = geo(&|r| r.0.polaris);
    let geo_vfa = geo(&|r| r.0.vfa);
    let geo_real = geo(&|r| r.1.real_speedup());
    let geo_engine = geo(&|r| r.3.vm_speedup());
    println!(
        "geometric mean: Polaris {geo_polaris:.2}x   VFA {geo_vfa:.2}x   \
         real-thread wall {geo_real:.2}x   bytecode VM over tree-walker {geo_engine:.2}x"
    );
    if geo_engine < 2.0 {
        eprintln!(
            "figure7: warning: bytecode VM geomean {geo_engine:.2}x is below the 2x \
             floor the perf-trajectory gate enforces (debug build or loaded host?)"
        );
    }
    println!(
        "Polaris clearly ahead on {wins_p} of {total} codes; baseline ahead on {wins_v} \
         (paper: PFA ahead on 2)."
    );
    println!(
        "oracle: {} soundness violation(s); {} of {} exercised serial loops dynamically \
         independent (completeness-miss rate {:.3})",
        oracle.violations,
        oracle.completeness_misses,
        oracle.serial_loops,
        oracle.miss_rate()
    );
    if oracle.violations > 0 {
        eprintln!("figure7: the dependence oracle observed a race in a PARALLEL loop");
        return ExitCode::FAILURE;
    }
    println!(
        "verify: {} invariant check(s), {} violation(s); static race verdicts over {} \
         PARALLEL claim(s): {} clean / {} needs-privatization / {} potential-race; \
         agreement over {} claim(s): {} precision miss(es), {} soundness failure(s)",
        verify.invariants_checked,
        verify.invariant_violations,
        verify.parallel_claims,
        verify.clean,
        verify.needs_privatization,
        verify.potential_race,
        verify.compared,
        verify.precision_misses,
        verify.soundness_failures
    );
    if verify.soundness_failures > 0 {
        eprintln!(
            "figure7: static race detector called a loop clean that the oracle saw violate"
        );
        return ExitCode::FAILURE;
    }
    if verify.invariant_violations > 0 {
        eprintln!("figure7: the inter-pass verifier caught ill-formed IR during compilation");
        return ExitCode::FAILURE;
    }

    // Schema v6: the irregular-kernel tier report. These six kernels are
    // a fixed conformance set (independent of --only): each must land in
    // its pinned tier — statically proven parallel, or shipped to LRPD —
    // and a static `clean` contradicted by the oracle is a hard failure.
    println!();
    println!(
        "{:<9} {:>8} {:>6} {:>9} {:>7} {:>11} {:>9}",
        "Irregular", "tier", "doall", "lrpd", "serial", "props(r/p)", "idxprop"
    );
    let mut irregular: Vec<IrregularRow> = Vec::new();
    let mut tier_mismatch = false;
    let mut static_dirty = 0usize;
    for (b, expected) in polaris_benchmarks::irregular() {
        let row = irregular_row(&b, expected);
        println!(
            "{:<9} {:>8} {:>6} {:>9} {:>7} {:>7}/{:<3} {:>9}",
            row.name,
            row.tier(),
            row.parallel_loops,
            row.speculative_loops,
            row.serial_loops,
            row.props_rule.0,
            row.props_rule.1,
            row.idxprop_proved,
        );
        if row.tier() != row.expected_tier {
            eprintln!(
                "figure7: {} landed in tier `{}`, expected `{}`",
                row.name,
                row.tier(),
                row.expected_tier
            );
            tier_mismatch = true;
        }
        static_dirty += row.soundness_failures;
        irregular.push(row);
    }
    let statics = irregular.iter().filter(|r| r.tier() == "static").count();
    let lrpds = irregular.iter().filter(|r| r.tier() == "lrpd").count();
    println!(
        "irregular tiers: {statics} static / {lrpds} lrpd / {} serial; \
         {static_dirty} static-clean-but-oracle-dirty",
        irregular.len() - statics - lrpds
    );
    if tier_mismatch {
        return ExitCode::FAILURE;
    }
    if static_dirty > 0 {
        eprintln!("figure7: an irregular kernel's static `clean` was contradicted by the oracle");
        return ExitCode::FAILURE;
    }
    // Schema v8: the nest-transformation tier report. The two locality
    // kernels are a fixed conformance set (independent of --only): each
    // must receive its pinned restructuring under a legality
    // certificate, and every certificate must be re-derived and accepted
    // by the independent `polaris-verify` re-prover — a rejected
    // certificate is a hard failure, same as an oracle violation.
    println!();
    println!(
        "{:<9} {:>12} {:>6} {:>6} {:>6} {:>6} {:>10} {:>9}",
        "Nest", "expected", "nests", "ichg", "tile", "fuse", "precision", "reprover"
    );
    let mut nest: Vec<NestRow> = Vec::new();
    let mut nest_mismatch = false;
    let mut certs_rejected = 0usize;
    for (b, expected) in polaris_benchmarks::locality() {
        let row = nest_row(&b, expected);
        println!(
            "{:<9} {:>12} {:>6} {:>6} {:>6} {:>6} {:>10.3} {:>5}/{:<3}",
            row.name,
            row.expected,
            row.summarized,
            row.interchanges,
            row.tiles,
            row.fusions,
            row.legality_precision,
            row.reprover_accepted,
            row.certs,
        );
        if !row.expected_applied() {
            eprintln!(
                "figure7: {} did not receive its pinned `{}` transformation",
                row.name, row.expected
            );
            nest_mismatch = true;
        }
        certs_rejected += row.reprover_rejected;
        nest.push(row);
    }
    println!(
        "nest: {} certificate(s) emitted, {} re-proved, {} rejected by the re-prover",
        nest.iter().map(|r| r.certs).sum::<usize>(),
        nest.iter().map(|r| r.reprover_accepted).sum::<usize>(),
        certs_rejected,
    );
    if nest_mismatch {
        return ExitCode::FAILURE;
    }
    if certs_rejected > 0 {
        eprintln!("figure7: the verify re-prover rejected an emitted legality certificate");
        return ExitCode::FAILURE;
    }

    let cores = host_cores();
    if cores < threads {
        println!(
            "(real-thread column ran {threads} workers on {cores} core(s); \
             wall speedup reflects overhead, not scaling)"
        );
    }

    // Schema v7: the adaptive-scheduling block. Every kernel in the run
    // (main set plus the irregular conformance set) is measured under
    // block vs work-stealing chunking, run twice under the adaptive
    // dispatcher (measure → re-dispatch), and steal-rate instrumented on
    // the real threaded stealing backend.
    println!();
    println!(
        "{:<9} {:>10} {:>9} {:<12} {:<10} {:>10} {:>11}",
        "Adaptive", "steal/blk", "adapt/blk", "strategy", "chunking", "event", "steal-rate"
    );
    let irregular_set = polaris_benchmarks::irregular();
    let locality_set = polaris_benchmarks::locality();
    let skewed = polaris_benchmarks::skewed();
    let mut adaptive: Vec<AdaptiveRow> = Vec::new();
    for b in benches
        .iter()
        .chain(irregular_set.iter().map(|(b, _)| b))
        .chain(locality_set.iter().map(|(b, _)| b))
        .chain(std::iter::once(&skewed))
    {
        let row = adaptive_row(b, 8, threads);
        println!(
            "{:<9} {:>9.2}x {:>8.2}x {:<12} {:<10} {:>10} {:>10.3}",
            row.name,
            row.steal_over_block(),
            row.adaptive_over_block(),
            row.chosen_strategy,
            row.chosen_chunking,
            row.chosen_event,
            row.steal_rate,
        );
        adaptive.push(row);
    }
    let steal_wins = adaptive.iter().filter(|r| r.adaptive_cycles < r.block_cycles).count();
    println!(
        "adaptive: stealing (where chosen) beats block on {steal_wins} of {} kernels \
         (cost model)",
        adaptive.len()
    );

    if let Some(path) = json_path {
        let doc = render_json(
            &rows, &irregular, &nest, &adaptive, &oracle, &verify, threads, cores,
            geo_polaris, geo_vfa, geo_real, geo_engine,
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("figure7: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Hand-rolled JSON (the workspace deliberately has no serde): one
/// object per kernel plus run metadata and geomeans, written with a
/// stable key order so diffs between trajectory files stay readable.
#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[(SpeedupRow, ThreadedRow, ObsBreakdown, EngineRow)],
    irregular: &[IrregularRow],
    nest: &[NestRow],
    adaptive: &[AdaptiveRow],
    oracle: &OracleAgg,
    verify: &VerifyAgg,
    threads: usize,
    cores: usize,
    geo_polaris: f64,
    geo_vfa: f64,
    geo_real: f64,
    geo_engine: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str("  \"procs\": 8,\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, (row, thr, obs, eng)) in rows.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(row.name)));
        s.push_str(&format!("      \"serial_cycles\": {},\n", row.serial_cycles));
        s.push_str(&format!("      \"sim_speedup_polaris\": {},\n", json_f64(row.polaris)));
        s.push_str(&format!("      \"sim_speedup_vfa\": {},\n", json_f64(row.vfa)));
        s.push_str(&format!(
            "      \"serial_wall_ms\": {},\n",
            json_f64(thr.serial_wall.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!(
            "      \"threaded_wall_ms\": {},\n",
            json_f64(thr.threaded_wall.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!("      \"real_speedup\": {},\n", json_f64(thr.real_speedup())));
        s.push_str(&format!(
            "      \"sim_vs_real\": {},\n",
            json_f64(thr.sim_speedup() / thr.real_speedup().max(1e-9))
        ));
        s.push_str(&format!("      \"checksum\": \"fnv1a:{:016x}\",\n", thr.checksum));
        // Schema v5: serial wall per execution engine — the retained
        // tree-walking oracle vs the bytecode VM — and their ratio.
        s.push_str(&format!(
            "      \"tree_serial_wall_ms\": {},\n",
            json_f64(eng.tree_wall.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!(
            "      \"vm_serial_wall_ms\": {},\n",
            json_f64(eng.vm_wall.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!("      \"engine_speedup\": {},\n", json_f64(eng.vm_speedup())));
        // Schema v3: per-kernel compile-time and counter breakdown from
        // the observability recorder (pass times in real µs; counters
        // are the stable dotted names from `polaris_obs::Counter`).
        s.push_str("      \"obs\": {\n");
        s.push_str(&format!("        \"compile_us\": {},\n", obs.compile_us));
        s.push_str("        \"passes\": {");
        for (j, (pass, us)) in obs.passes.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {us}", json_escape(pass)));
        }
        s.push_str("},\n");
        s.push_str("        \"counters\": {");
        for (j, (name, v)) in obs.counters.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", json_escape(name)));
        }
        s.push_str("}\n");
        s.push_str("      }\n");
        s.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"oracle\": {\n");
    s.push_str(&format!("    \"violations\": {},\n", oracle.violations));
    s.push_str(&format!("    \"serial_loops_exercised\": {},\n", oracle.serial_loops));
    s.push_str(&format!("    \"completeness_misses\": {},\n", oracle.completeness_misses));
    s.push_str(&format!("    \"privatizable_misses\": {},\n", oracle.privatizable_misses));
    s.push_str(&format!("    \"miss_rate\": {},\n", json_f64(oracle.miss_rate())));
    s.push_str("    \"misses_by_pass\": {");
    for (i, (pass, n)) in oracle.misses_by_pass.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {}", json_escape(pass), n));
    }
    s.push_str("}\n");
    s.push_str("  },\n");
    // Schema v4: the static-verification block — inter-pass invariant
    // totals, race verdicts over every PARALLEL claim, and the
    // static-vs-oracle agreement (soundness failures must be zero; the
    // binary exits FAILURE before writing this document otherwise).
    s.push_str("  \"verify\": {\n");
    s.push_str(&format!("    \"invariants_checked\": {},\n", verify.invariants_checked));
    s.push_str(&format!("    \"invariant_violations\": {},\n", verify.invariant_violations));
    s.push_str("    \"race\": {\n");
    s.push_str(&format!("      \"parallel_claims\": {},\n", verify.parallel_claims));
    s.push_str(&format!("      \"clean\": {},\n", verify.clean));
    s.push_str(&format!("      \"needs_privatization\": {},\n", verify.needs_privatization));
    s.push_str(&format!("      \"potential_race\": {}\n", verify.potential_race));
    s.push_str("    },\n");
    s.push_str("    \"agreement\": {\n");
    s.push_str(&format!("      \"compared\": {},\n", verify.compared));
    s.push_str(&format!("      \"precision_misses\": {},\n", verify.precision_misses));
    s.push_str(&format!("      \"soundness_failures\": {}\n", verify.soundness_failures));
    s.push_str("    }\n");
    s.push_str("  },\n");
    // Schema v6: the irregular-kernel tier block — per kernel, how its
    // loops were classified (static doall vs LRPD speculation vs
    // serial), which property-pass facts produced the classification,
    // and the static-vs-oracle agreement. The tier must match the pinned
    // expectation and `soundness_failures` must be zero (the binary
    // exits FAILURE before writing this document otherwise).
    s.push_str("  \"irregular\": {\n");
    s.push_str("    \"kernels\": [\n");
    for (i, r) in irregular.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"name\": \"{}\",\n", json_escape(r.name)));
        s.push_str(&format!("        \"tier\": \"{}\",\n", r.tier()));
        s.push_str(&format!("        \"expected_tier\": \"{}\",\n", r.expected_tier));
        s.push_str(&format!("        \"parallel_loops\": {},\n", r.parallel_loops));
        s.push_str(&format!("        \"speculative_loops\": {},\n", r.speculative_loops));
        s.push_str(&format!("        \"serial_loops\": {},\n", r.serial_loops));
        s.push_str(&format!("        \"props_rule_run\": {},\n", r.props_rule.0));
        s.push_str(&format!("        \"props_rule_proved\": {},\n", r.props_rule.1));
        s.push_str(&format!("        \"idxprop_proved\": {},\n", r.idxprop_proved));
        s.push_str(&format!("        \"race_clean\": {},\n", r.race_clean));
        s.push_str(&format!("        \"race_flagged\": {},\n", r.race_flagged));
        s.push_str(&format!("        \"soundness_failures\": {}\n", r.soundness_failures));
        s.push_str(if i + 1 == irregular.len() { "      }\n" } else { "      },\n" });
    }
    s.push_str("    ],\n");
    let statics = irregular.iter().filter(|r| r.tier() == "static").count();
    let lrpds = irregular.iter().filter(|r| r.tier() == "lrpd").count();
    s.push_str("    \"tiers\": {\n");
    s.push_str(&format!("      \"static\": {statics},\n"));
    s.push_str(&format!("      \"lrpd\": {lrpds},\n"));
    s.push_str(&format!("      \"serial\": {}\n", irregular.len() - statics - lrpds));
    s.push_str("    },\n");
    s.push_str(&format!(
        "    \"static_clean_oracle_dirty\": {}\n",
        irregular.iter().map(|r| r.soundness_failures).sum::<usize>()
    ));
    s.push_str("  },\n");
    // Schema v8: the nest-transformation block — per locality kernel,
    // the restructurings applied under a legality certificate
    // (interchange / tile / fuse counts), the prover's precision over
    // every candidate it judged, and the independent re-prover's
    // verdicts over the emitted certificates. `reprover_rejected` must
    // be zero and the pinned transformation must have been applied (the
    // binary exits FAILURE before writing this document otherwise).
    s.push_str("  \"nest\": {\n");
    s.push_str("    \"kernels\": [\n");
    for (i, r) in nest.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"name\": \"{}\",\n", json_escape(r.name)));
        s.push_str(&format!("        \"expected\": \"{}\",\n", r.expected));
        s.push_str(&format!("        \"expected_applied\": {},\n", r.expected_applied()));
        s.push_str(&format!("        \"nests_summarized\": {},\n", r.summarized));
        s.push_str(&format!("        \"interchanges\": {},\n", r.interchanges));
        s.push_str(&format!("        \"tiles\": {},\n", r.tiles));
        s.push_str(&format!("        \"fusions\": {},\n", r.fusions));
        s.push_str(&format!(
            "        \"legality_precision\": {},\n",
            json_f64(r.legality_precision)
        ));
        s.push_str(&format!("        \"certs\": {},\n", r.certs));
        s.push_str(&format!("        \"reprover_accepted\": {},\n", r.reprover_accepted));
        s.push_str(&format!("        \"reprover_rejected\": {}\n", r.reprover_rejected));
        s.push_str(if i + 1 == nest.len() { "      }\n" } else { "      },\n" });
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"certs_emitted\": {},\n",
        nest.iter().map(|r| r.certs).sum::<usize>()
    ));
    s.push_str(&format!(
        "    \"certs_rejected\": {}\n",
        nest.iter().map(|r| r.reprover_rejected).sum::<usize>()
    ));
    s.push_str("  },\n");
    // Schema v7: the adaptive-scheduling block — per kernel, the cost
    // model's block vs work-stealing cycles, the strategy/chunking the
    // adaptive dispatcher settles on by its second invocation (event
    // "redispatch" once a loop has been measured), and the steal rate
    // observed on the real threaded stealing backend. All measurements
    // asserted output-identical to serial before being reported.
    s.push_str("  \"adaptive\": {\n");
    s.push_str("    \"kernels\": [\n");
    for (i, r) in adaptive.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"name\": \"{}\",\n", json_escape(r.name)));
        s.push_str(&format!("        \"block_cycles\": {},\n", r.block_cycles));
        s.push_str(&format!("        \"steal_cycles\": {},\n", r.steal_cycles));
        s.push_str(&format!("        \"adaptive_cycles\": {},\n", r.adaptive_cycles));
        s.push_str(&format!(
            "        \"steal_over_block\": {},\n",
            json_f64(r.steal_over_block())
        ));
        s.push_str(&format!(
            "        \"adaptive_over_block\": {},\n",
            json_f64(r.adaptive_over_block())
        ));
        s.push_str(&format!(
            "        \"chosen_strategy\": \"{}\",\n",
            json_escape(&r.chosen_strategy)
        ));
        s.push_str(&format!(
            "        \"chosen_chunking\": \"{}\",\n",
            json_escape(&r.chosen_chunking)
        ));
        s.push_str(&format!(
            "        \"chosen_event\": \"{}\",\n",
            json_escape(&r.chosen_event)
        ));
        s.push_str(&format!("        \"steal_rate\": {}\n", json_f64(r.steal_rate)));
        s.push_str(if i + 1 == adaptive.len() { "      }\n" } else { "      },\n" });
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"steal_wins\": {}\n",
        adaptive.iter().filter(|r| r.adaptive_cycles < r.block_cycles).count()
    ));
    s.push_str("  },\n");
    s.push_str("  \"geomean\": {\n");
    s.push_str(&format!("    \"sim_polaris\": {},\n", json_f64(geo_polaris)));
    s.push_str(&format!("    \"sim_vfa\": {},\n", json_f64(geo_vfa)));
    s.push_str(&format!("    \"real_threads\": {},\n", json_f64(geo_real)));
    s.push_str(&format!("    \"vm_over_tree\": {}\n", json_f64(geo_engine)));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Finite-only float formatting (JSON has no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

//! Regenerate Figure 6: speedup and potential slowdown of the PD test
//! on the TRACK NLFILT/300 partially parallel loop, versus processor
//! count.
//!
//! Panel 1 (speedup): the kernel's scatter loop is parallel in 90% of
//! its invocations; the failing invocations pay the test and re-execute
//! serially. Speedup over the serial program is reported for 1..8
//! processors (the paper used an 8-processor Alliant FX/80).
//!
//! Panel 2 (potential slowdown): an always-colliding variant measures
//! (T_seq + T_pdt)/T_seq — the price of speculating wrongly, which
//! shrinks as processors are added because the test itself is parallel.
//!
//! A third section repeats the experiment with *real threads* through
//! `polaris-runtime`'s LRPD implementation (wall-clock, machine-dependent).

use polaris_bench::bar;
use polaris_core::PassOptions;
use polaris_machine::{run, run_serial, MachineConfig, Schedule};
use std::time::Instant;

fn main() {
    let track = polaris_benchmarks::track();

    println!("Figure 6 (simulated): TRACK NLFILT-style loop, 90% parallel invocations");
    println!();
    println!("Speedup vs processors (simulated cycles; right column: the same");
    println!("program on the real-thread interpreter backend, wall-clock):");
    let serial = run_serial(&track.program()).unwrap();
    let mut pol = track.program();
    polaris_core::compile(&mut pol, &PassOptions::polaris()).unwrap();
    for p in 1..=8usize {
        let r = run(&pol, &MachineConfig::challenge_8().with_procs(p)).unwrap();
        assert_eq!(r.output, serial.output);
        let s = serial.cycles as f64 / r.cycles as f64;
        // Speculative loops stay on the simulated path even in threaded
        // mode, so this measures the threaded backend on the DOALLs plus
        // the interpreter around them.
        let rt = run(&pol, &MachineConfig::threaded(p, Schedule::Static)).unwrap();
        assert_eq!(rt.output, serial.output);
        println!(
            "  p={p}  speedup {s:5.2}x  |{:<40}  threaded wall {:7.1}ms",
            bar(s, 8.0),
            rt.wall.as_secs_f64() * 1e3
        );
    }

    println!();
    println!("Potential slowdown vs processors (all invocations fail the test,");
    println!("measured on the NLFILT loop itself: (T_seq + T_pdt)/T_seq):");
    let fail_src = track.source.replace("mod(inv, 10) .eq. 0", "inv .ge. 1");
    let fail_prog = polaris_ir::parse(&fail_src).unwrap();
    let fail_serial = run_serial(&fail_prog).unwrap();
    let mut fail_pol = polaris_ir::parse(&fail_src).unwrap();
    polaris_core::compile(&mut fail_pol, &PassOptions::polaris()).unwrap();
    for p in 1..=8usize {
        let r = run(&fail_pol, &MachineConfig::challenge_8().with_procs(p)).unwrap();
        assert_eq!(r.output, fail_serial.output);
        // the loop that attempted speculation:
        let spec_cycles: u64 = r
            .loops
            .values()
            .filter(|s| s.spec_fail + s.spec_success > 0)
            .map(|s| s.cycles)
            .sum();
        let base_cycles: u64 = fail_serial
            .loops
            .iter()
            .filter(|(l, _)| {
                r.loops
                    .get(*l)
                    .map(|s| s.spec_fail + s.spec_success > 0)
                    .unwrap_or(false)
            })
            .map(|(_, s)| s.cycles)
            .sum();
        let slow = if p == 1 || base_cycles == 0 {
            1.0
        } else {
            spec_cycles as f64 / base_cycles as f64
        };
        println!("  p={p}  slowdown {slow:5.3}  |{}", bar((slow - 1.0).max(0.0), 0.5));
    }

    println!();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Real threads (polaris-runtime LRPD, wall-clock, {cores} core(s) available):");
    if cores == 1 {
        println!("  NOTE: this host exposes a single CPU; thread counts above 1");
        println!("  cannot speed anything up here. The numbers below measure the");
        println!("  LRPD overhead curve; run on a multicore host for scaling.");
    }
    real_thread_section();
}

/// The NLFILT-style workload on the real threaded LRPD runtime:
/// 10 invocations, one of which collides.
fn real_thread_section() {
    const N: usize = 1 << 15;
    const INVOCATIONS: usize = 10;
    let perm: Vec<usize> = (0..N).map(|i| (i * 77 + 13) % N).collect();
    let collide: Vec<usize> = (0..N).map(|i| i / 2).collect();

    // The per-iteration body does real work (a short filter pipeline),
    // as NLFILT does — with a trivial body the shadow marking dominates
    // and no speedup is possible at any processor count.
    fn body_value(i: usize, inv: usize) -> f64 {
        let mut x = i as f64 * 1.01 + inv as f64;
        for _ in 0..40 {
            x = x * 0.99 + (x * 0.5).sin() * 0.01;
        }
        x
    }

    // serial reference
    let mut data = vec![0f64; N];
    let t0 = Instant::now();
    for inv in 0..INVOCATIONS {
        let key = if inv == 9 { &collide } else { &perm };
        for i in 0..N {
            data[key[i]] = body_value(i, inv);
        }
    }
    let t_seq = t0.elapsed();
    std::hint::black_box(&data);

    for p in [1usize, 2, 4, 8] {
        let mut d = vec![0f64; N];
        let t0 = Instant::now();
        for inv in 0..INVOCATIONS {
            let key: &[usize] = if inv == 9 { &collide } else { &perm };
            let out = polaris_runtime::speculative_doall(&mut d, N, p, false, |i, v| {
                v.write(key[i], body_value(i, inv));
            });
            if !out.success() {
                polaris_runtime::run_sequential(&mut d, N, |i, v| {
                    v.write(key[i], body_value(i, inv));
                });
            }
        }
        let t_par = t0.elapsed();
        std::hint::black_box(&d);
        println!(
            "  p={p}  wall {:.1}ms vs serial {:.1}ms  speedup {:.2}",
            t_par.as_secs_f64() * 1e3,
            t_seq.as_secs_f64() * 1e3,
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
    }
    println!("  (shadow marking makes the constant factor large; the paper's");
    println!("   hand-tuned Fortran version has the same qualitative curve)");
}

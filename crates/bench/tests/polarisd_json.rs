//! `polarisd_load --json` must emit a well-formed, schema-stable
//! `BENCH_polarisd.json`. Like `figure7_json.rs`, the workspace has no
//! JSON dependency, so the document is validated with a small strict
//! grammar checker plus key-presence assertions on the
//! `polaris-bench/polarisd/v1` schema.

use std::process::Command;

/// Minimal strict JSON well-formedness checker (objects, arrays,
/// strings, numbers, no trailing commas, full-input consumption).
struct Json<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn check(text: &'a str) -> Result<(), String> {
        let mut p = Json { s: text.as_bytes(), i: 0 };
        p.ws();
        p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(())
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b'n') => self.literal("null"),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("short \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u escape at byte {}", self.i));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Json| {
            let before = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > before
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }
}

#[test]
fn polarisd_json_is_well_formed_and_schema_complete() {
    let dir = std::env::temp_dir().join("polarisd_json_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_polarisd.json");
    let _ = std::fs::remove_file(&path);

    let out = Command::new(env!("CARGO_BIN_EXE_polarisd_load"))
        .args(["--json", path.to_str().unwrap(), "--requests", "80", "--workers", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "polarisd_load failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc = std::fs::read_to_string(&path).unwrap();
    Json::check(&doc).unwrap_or_else(|e| panic!("malformed JSON: {e}\n--- document ---\n{doc}"));

    for key in [
        "\"schema\": \"polaris-bench/polarisd/v1\"",
        "\"requests\": 80",
        "\"workers\": 2",
        "\"clients\":",
        "\"seed\":",
        "\"wall_ms\":",
        "\"throughput_rps\":",
        "\"latency_us\":",
        "\"p50\":",
        "\"p99\":",
        "\"max\":",
        "\"cache_hit_rate\":",
        // The invariant the load test exists to witness: zero wrong
        // checksums, even under injected failures.
        "\"checksum_mismatches\": 0",
        "\"statuses\":",
        "\"ok\":",
        "\"cached\":",
        "\"degraded\":",
        "\"service\":",
        "\"accepted\": 80",
        "\"answered\": 80",
        "\"shed\":",
        "\"cache_hits\":",
        "\"poison_purged\":",
        "\"retries\":",
        "\"deadline_cancels\":",
        "\"quarantined\":",
        "\"probes\":",
        "\"recovered\":",
        "\"respawns\":",
    ] {
        assert!(doc.contains(key), "missing `{key}` in:\n{doc}");
    }
}

#[test]
fn polarisd_load_rejects_unknown_flags() {
    let out =
        Command::new(env!("CARGO_BIN_EXE_polarisd_load")).args(["--bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

//! `figure7 --json` must emit a well-formed, schema-stable
//! `BENCH_figure7.json`. The workspace has no JSON dependency, so the
//! writer is hand-rolled — this test parses its output with a small
//! strict JSON grammar checker (objects/arrays/strings/numbers, no
//! trailing commas, full-input consumption) and then checks the
//! trajectory schema: required top-level keys, one record per requested
//! kernel, and an `fnv1a:`-prefixed 64-bit checksum per record.

use std::process::Command;

/// Minimal strict JSON well-formedness checker. Returns Err with a byte
/// offset on the first violation.
struct Json<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn check(text: &'a str) -> Result<(), String> {
        let mut p = Json { s: text.as_bytes(), i: 0 };
        p.ws();
        p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(())
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b'n') => self.literal("null"),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("short \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u escape at byte {}", self.i));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                c if c < 0x20 => return Err(format!("raw control char at byte {}", self.i)),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }
}

#[test]
fn figure7_json_is_well_formed_and_schema_complete() {
    let dir = std::env::temp_dir().join("figure7_json_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_figure7.json");
    let _ = std::fs::remove_file(&path);

    // A two-kernel subset keeps the test fast while exercising the
    // whole pipeline: simulated speedups, threaded wall clocks, JSON.
    let out = Command::new(env!("CARGO_BIN_EXE_figure7"))
        .args(["--json", path.to_str().unwrap(), "--only", "TRFD,SWIM", "--threads", "4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "figure7 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc = std::fs::read_to_string(&path).unwrap();
    Json::check(&doc).unwrap_or_else(|e| panic!("malformed JSON: {e}\n--- document ---\n{doc}"));

    // Schema: top-level metadata and geomeans present.
    for key in [
        "\"schema\": \"polaris-bench/figure7/v8\"",
        "\"procs\":",
        "\"threads\": 4",
        "\"host_cores\":",
        "\"kernels\":",
        "\"oracle\":",
        "\"violations\": 0",
        "\"serial_loops_exercised\":",
        "\"completeness_misses\":",
        "\"privatizable_misses\":",
        "\"miss_rate\":",
        "\"misses_by_pass\":",
        // schema v4: static-verification aggregate block
        "\"verify\":",
        "\"invariants_checked\":",
        "\"invariant_violations\": 0",
        "\"race\":",
        "\"parallel_claims\":",
        "\"clean\":",
        "\"needs_privatization\":",
        "\"potential_race\":",
        "\"agreement\":",
        "\"compared\":",
        "\"precision_misses\":",
        "\"soundness_failures\": 0",
        // schema v6: irregular-kernel tier block (always all six
        // kernels, independent of --only)
        "\"irregular\":",
        "\"tiers\":",
        "\"static_clean_oracle_dirty\": 0",
        "\"geomean\":",
        "\"sim_polaris\":",
        "\"sim_vfa\":",
        "\"real_threads\":",
        // schema v5: bytecode-VM-vs-tree-walker serial geomean
        "\"vm_over_tree\":",
        // schema v7: adaptive-scheduling block
        "\"adaptive\":",
        "\"steal_wins\":",
        // schema v8: nest-restructuring block (always both locality
        // kernels, independent of --only)
        "\"nest\":",
        "\"certs_emitted\":",
        "\"certs_rejected\": 0",
    ] {
        assert!(doc.contains(key), "missing `{key}` in:\n{doc}");
    }
    // Schema v8: the nest block covers both locality kernels (MMT and
    // STENCIL2D), each with the full summary/legality column set, and
    // every emitted certificate survives the re-prover.
    for field in [
        "\"nests_summarized\":",
        "\"interchanges\":",
        "\"tiles\":",
        "\"fusions\":",
        "\"legality_precision\":",
        "\"certs\":",
        "\"reprover_accepted\":",
        "\"reprover_rejected\": 0",
    ] {
        assert_eq!(
            doc.matches(field).count(),
            2,
            "field `{field}` should appear once per nest record:\n{doc}"
        );
    }
    let nest_of = |name: &str| -> &str {
        let blk = doc.find("\"nest\":").expect("no nest block");
        let start = doc[blk..]
            .find(&format!("\"name\": \"{name}\""))
            .unwrap_or_else(|| panic!("no nest record for {name}"))
            + blk;
        let end = doc[start..].find('}').unwrap() + start;
        &doc[start..end]
    };
    let mmt = nest_of("MMT");
    assert!(
        mmt.contains("\"interchanges\": 1"),
        "MMT nest record lost its pinned interchange:\n{mmt}"
    );
    let stencil = nest_of("STENCIL2D");
    assert!(
        stencil.contains("\"tiles\": 1") && stencil.contains("\"fusions\": 1"),
        "STENCIL2D nest record lost its pinned tile/fusion:\n{stencil}"
    );
    // Schema v7/v8: the adaptive block covers every requested kernel
    // plus the six irregular kernels, the two locality kernels, and the
    // skewed-cost SPMVT (11 records here), each with the full
    // strategy/chunking/steal-rate column set.
    for field in [
        "\"block_cycles\":",
        "\"steal_cycles\":",
        "\"adaptive_cycles\":",
        "\"steal_over_block\":",
        "\"adaptive_over_block\":",
        "\"chosen_strategy\":",
        "\"chosen_chunking\":",
        "\"chosen_event\":",
        "\"steal_rate\":",
    ] {
        assert_eq!(
            doc.matches(field).count(),
            11,
            "field `{field}` should appear once per adaptive record:\n{doc}"
        );
    }
    // The skewed-cost kernel is the existence proof for work stealing:
    // its record must show the dispatcher settling on stealing chunking
    // and the re-dispatched run beating block partitioning.
    let spmvt = {
        let start = doc.find("\"name\": \"SPMVT\"").expect("no adaptive record for SPMVT");
        let end = doc[start..].find('}').unwrap() + start;
        &doc[start..end]
    };
    let int_field = |rec: &str, field: &str| -> u64 {
        let at = rec.find(field).unwrap_or_else(|| panic!("SPMVT record lacks {field}: {rec}"));
        rec[at + field.len()..]
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(
        spmvt.contains("\"chosen_chunking\": \"steal"),
        "SPMVT did not settle on stealing chunking:\n{spmvt}"
    );
    assert!(
        int_field(spmvt, "\"adaptive_cycles\":") < int_field(spmvt, "\"block_cycles\":"),
        "SPMVT adaptive re-dispatch does not beat block in the cost model:\n{spmvt}"
    );
    let steal_wins = {
        let at = doc.find("\"steal_wins\":").unwrap();
        doc[at + 13..]
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .unwrap()
    };
    assert!(steal_wins >= 1, "no kernel's chosen strategy beat block:\n{doc}");
    // Schema v6: one irregular record per kernel, each in its pinned
    // tier with the soundness gate at zero.
    for name in ["SPMV", "HISTO", "GATHER", "PREFIX", "BUCKET", "COMPACT"] {
        assert!(doc.contains(&format!("\"name\": \"{name}\"")), "no irregular record for {name}");
    }
    for field in [
        "\"expected_tier\":",
        "\"parallel_loops\":",
        "\"speculative_loops\":",
        "\"serial_loops\":",
        "\"props_rule_run\":",
        "\"props_rule_proved\":",
        "\"idxprop_proved\":",
        "\"race_clean\":",
        "\"race_flagged\":",
    ] {
        assert_eq!(
            doc.matches(field).count(),
            6,
            "field `{field}` should appear once per irregular kernel:\n{doc}"
        );
    }
    assert_eq!(
        doc.matches("\"tier\": \"static\"").count(),
        4,
        "four kernels must be statically parallel:\n{doc}"
    );
    assert_eq!(
        doc.matches("\"tier\": \"lrpd\"").count(),
        2,
        "two kernels must fall through to LRPD:\n{doc}"
    );
    // One record per requested kernel, each with the full field set.
    for name in ["TRFD", "SWIM"] {
        assert!(doc.contains(&format!("\"name\": \"{name}\"")), "no record for {name}:\n{doc}");
    }
    for field in [
        "\"serial_cycles\":",
        "\"sim_speedup_polaris\":",
        "\"sim_speedup_vfa\":",
        "\"serial_wall_ms\":",
        "\"threaded_wall_ms\":",
        "\"real_speedup\":",
        "\"sim_vs_real\":",
        "\"checksum\": \"fnv1a:",
        // schema v5: per-engine serial wall columns
        "\"tree_serial_wall_ms\":",
        "\"vm_serial_wall_ms\":",
        "\"engine_speedup\":",
        // schema v3: per-kernel compile-time/counter breakdown block
        "\"obs\":",
        "\"compile_us\":",
        "\"passes\":",
        "\"counters\":",
        "\"compile.loops.total\":",
        "\"compile.dd.range.run\":",
        "\"inline\":",
    ] {
        assert_eq!(
            doc.matches(field).count(),
            2,
            "field `{field}` should appear once per kernel:\n{doc}"
        );
    }
    // Checksums are 16 lowercase hex digits after the prefix.
    for (i, _) in doc.match_indices("fnv1a:") {
        let hex = &doc[i + 6..i + 22];
        assert!(
            hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()),
            "bad checksum payload `{hex}`"
        );
    }
}

#[test]
fn figure7_rejects_unknown_kernels_and_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_figure7"))
        .args(["--only", "NOSUCH"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("matched no kernels"));

    let out = Command::new(env!("CARGO_BIN_EXE_figure7")).args(["--bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

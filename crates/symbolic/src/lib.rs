//! # polaris-symbolic — the symbolic analysis engine
//!
//! Implements the symbolic machinery behind §3.3 of the Polaris paper:
//!
//! * exact rational arithmetic ([`rat::Rat`]),
//! * canonical multivariate polynomials over program variables with
//!   *opaque atoms* for non-polynomial subexpressions ([`poly::Poly`]),
//! * closed-form summation over iteration spaces (Faulhaber's formulas,
//!   [`sum::sum_over`]) — the engine of induction-variable substitution,
//! * symbolic ranges and **range propagation** ([`range`], [`env`]) —
//!   "the determination of symbolic lower and upper bounds for each
//!   variable at each point of the program",
//! * expression comparison "by computing the sign of the minimum and
//!   maximum of the difference of the two expressions" and monotonicity
//!   via forward differences ([`bounds`]).
//!
//! ## Exact-division convention
//!
//! Closed forms of induction variables contain exact integer divisions
//! (`(I*(N**2+N)+J**2-J)/2` in the paper's TRFD example — always even, so
//! the division is exact). [`poly::Poly::from_expr`] therefore offers a
//! [`poly::DivPolicy::Exact`] mode that folds division by an integer
//! constant into rational coefficients. This mirrors what Polaris does
//! when it reasons about its own generated subscripts. Divisions that the
//! caller cannot vouch for are kept as opaque atoms
//! ([`poly::DivPolicy::Opaque`]), which keeps general range propagation
//! conservative.

pub mod bounds;
pub mod env;
pub mod poly;
pub mod range;
pub mod rat;
pub mod sum;

pub use bounds::{min_max, prove_ge, prove_gt, prove_le, prove_lt, sign, Sign};
pub use env::RangeEnv;
pub use poly::{DivPolicy, Poly};
pub use range::Range;
pub use rat::Rat;

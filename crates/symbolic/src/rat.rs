//! Exact rational numbers over `i128` with overflow-checked arithmetic.
//!
//! Every operation returns `Option` — on overflow the symbolic layer
//! degrades gracefully to "unknown" instead of producing wrong ranges,
//! which matters because dependence proofs must never be optimistic.

use std::cmp::Ordering;
use std::fmt;

/// A normalized rational number: `den > 0`, `gcd(num.abs(), den) == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative result).
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Construct and normalize. Returns `None` when `den == 0`.
    pub fn new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Some(Rat { num: sign * num / g, den: sign * den / g })
    }

    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    pub fn num(&self) -> i128 {
        self.num
    }

    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The integer value, if this rational is one.
    pub fn as_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    pub fn checked_add(self, other: Rat) -> Option<Rat> {
        // a/b + c/d = (a*d + c*b) / (b*d), reduced via lcm to limit growth.
        let g = gcd(self.den, other.den).max(1);
        let lhs = self.num.checked_mul(other.den / g)?;
        let rhs = other.num.checked_mul(self.den / g)?;
        let num = lhs.checked_add(rhs)?;
        let den = self.den.checked_mul(other.den / g)?;
        Rat::new(num, den)
    }

    pub fn checked_sub(self, other: Rat) -> Option<Rat> {
        self.checked_add(other.checked_neg()?)
    }

    pub fn checked_mul(self, other: Rat) -> Option<Rat> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Rat::new(num, den)
    }

    pub fn checked_div(self, other: Rat) -> Option<Rat> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(Rat::new(other.den, other.num)?)
    }

    pub fn checked_neg(self) -> Option<Rat> {
        Some(Rat { num: self.num.checked_neg()?, den: self.den })
    }

    /// `self ** exp` for small non-negative exponents.
    pub fn checked_pow(self, exp: u32) -> Option<Rat> {
        let mut acc = Rat::ONE;
        for _ in 0..exp {
            acc = acc.checked_mul(self)?;
        }
        Some(acc)
    }

    /// Floor as an integer (used when tightening integer ranges).
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling as an integer.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⇔  a*d vs c*b.  Use i128 widening: values
        // here stay small (coefficients of program polynomials); on the
        // rare overflow we fall back to f64 comparison which is fine for a
        // total order used only in container keys.
        match (self.num.checked_mul(other.den), other.num.checked_mul(self.den)) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => {
                let l = self.num as f64 / self.den as f64;
                let r = other.num as f64 / other.den as f64;
                l.partial_cmp(&r).unwrap_or(Ordering::Equal)
            }
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(-2, -4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(2, -4).unwrap(), Rat::new(-1, 2).unwrap());
        assert!(Rat::new(1, 0).is_none());
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2).unwrap();
        let third = Rat::new(1, 3).unwrap();
        assert_eq!(half.checked_add(third).unwrap(), Rat::new(5, 6).unwrap());
        assert_eq!(half.checked_sub(third).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(half.checked_mul(third).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(half.checked_div(third).unwrap(), Rat::new(3, 2).unwrap());
        assert_eq!(half.checked_pow(3).unwrap(), Rat::new(1, 8).unwrap());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rat::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rat::new(-7, 2).unwrap().floor(), -4);
        assert_eq!(Rat::new(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3).unwrap() < Rat::new(1, 2).unwrap());
        assert!(Rat::new(-1, 2).unwrap() < Rat::ZERO);
        assert!(Rat::int(2) > Rat::new(3, 2).unwrap());
    }

    #[test]
    fn overflow_returns_none() {
        let big = Rat::int(i128::MAX / 2 + 1);
        assert!(big.checked_mul(Rat::int(3)).is_none());
        assert!(big.checked_add(big).is_none());
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in -1000i128..1000, b in 1i128..50, c in -1000i128..1000, d in 1i128..50) {
            let x = Rat::new(a, b).unwrap();
            let y = Rat::new(c, d).unwrap();
            prop_assert_eq!(x.checked_add(y), y.checked_add(x));
        }

        #[test]
        fn prop_mul_distributes(a in -100i128..100, b in 1i128..20, c in -100i128..100, d in 1i128..20, e in -100i128..100, f in 1i128..20) {
            let x = Rat::new(a, b).unwrap();
            let y = Rat::new(c, d).unwrap();
            let z = Rat::new(e, f).unwrap();
            let lhs = x.checked_mul(y.checked_add(z).unwrap()).unwrap();
            let rhs = x.checked_mul(y).unwrap().checked_add(x.checked_mul(z).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_sub_then_add_roundtrips(a in -1000i128..1000, b in 1i128..50, c in -1000i128..1000, d in 1i128..50) {
            let x = Rat::new(a, b).unwrap();
            let y = Rat::new(c, d).unwrap();
            let back = x.checked_sub(y).unwrap().checked_add(y).unwrap();
            prop_assert_eq!(back, x);
        }

        #[test]
        fn prop_floor_le_ceil(a in -10000i128..10000, b in 1i128..100) {
            let x = Rat::new(a, b).unwrap();
            prop_assert!(x.floor() <= x.ceil());
            prop_assert!(Rat::int(x.floor()) <= x);
            prop_assert!(x <= Rat::int(x.ceil()));
            prop_assert!(x.ceil() - x.floor() <= 1);
        }
    }
}

//! Symbolic ranges: `[lo, hi]` with polynomial bounds, either of which
//! may be unknown.

use crate::poly::Poly;
use crate::rat::Rat;
use std::fmt;

/// A (possibly half-open) symbolic interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Range {
    pub lo: Option<Poly>,
    pub hi: Option<Poly>,
}

impl Range {
    /// Completely unknown range.
    pub fn unknown() -> Range {
        Range::default()
    }

    pub fn new(lo: Option<Poly>, hi: Option<Poly>) -> Range {
        Range { lo, hi }
    }

    /// The degenerate range `[p, p]` (an exactly-known value).
    pub fn exact(p: Poly) -> Range {
        Range { lo: Some(p.clone()), hi: Some(p) }
    }

    /// Constant interval `[lo, hi]`.
    pub fn consts(lo: i128, hi: i128) -> Range {
        Range { lo: Some(Poly::int(lo)), hi: Some(Poly::int(hi)) }
    }

    pub fn at_least(p: Poly) -> Range {
        Range { lo: Some(p), hi: None }
    }

    pub fn at_most(p: Poly) -> Range {
        Range { lo: None, hi: Some(p) }
    }

    pub fn is_unknown(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Exactly-known value, if `lo == hi`.
    pub fn as_exact(&self) -> Option<&Poly> {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// Constant bounds, when both ends are constants.
    pub fn const_bounds(&self) -> Option<(Rat, Rat)> {
        Some((self.lo.as_ref()?.as_constant()?, self.hi.as_ref()?.as_constant()?))
    }

    /// Intersect with another range. Both ranges are simultaneously valid
    /// facts, so any choice of bound is sound; we pick the *tighter* bound
    /// when both are constants, and otherwise keep the existing bound
    /// (conditions/asserts typically precede weaker structural facts like
    /// loop non-emptiness). Staleness is the caller's problem
    /// ([`crate::env::RangeEnv::invalidate`]).
    pub fn refine(&self, other: &Range) -> Range {
        fn pick(a: &Option<Poly>, b: &Option<Poly>, want_max: bool) -> Option<Poly> {
            match (a, b) {
                (Some(x), Some(y)) => match (x.as_constant(), y.as_constant()) {
                    (Some(cx), Some(cy)) => {
                        if (cx >= cy) == want_max {
                            Some(x.clone())
                        } else {
                            Some(y.clone())
                        }
                    }
                    _ => Some(x.clone()),
                },
                (Some(x), None) => Some(x.clone()),
                (None, y) => y.clone(),
            }
        }
        Range {
            lo: pick(&self.lo, &other.lo, true),
            hi: pick(&self.hi, &other.hi, false),
        }
    }

    /// Shift both bounds by a polynomial offset.
    pub fn shift(&self, offset: &Poly) -> Range {
        Range {
            lo: self.lo.as_ref().and_then(|l| l.checked_add(offset)),
            hi: self.hi.as_ref().and_then(|h| h.checked_add(offset)),
        }
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lo = self.lo.as_ref().map(|p| p.to_string()).unwrap_or_else(|| "-inf".into());
        let hi = self.hi.as_ref().map(|p| p.to_string()).unwrap_or_else(|| "+inf".into());
        write!(f, "[{lo}, {hi}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_range() {
        let r = Range::exact(Poly::var("N"));
        assert_eq!(r.as_exact(), Some(&Poly::var("N")));
        assert!(!r.is_unknown());
    }

    #[test]
    fn const_bounds_extraction() {
        let r = Range::consts(1, 10);
        assert_eq!(r.const_bounds(), Some((Rat::int(1), Rat::int(10))));
        assert!(Range::at_least(Poly::int(0)).const_bounds().is_none());
    }

    #[test]
    fn refine_prefers_known_then_newer() {
        let old = Range::consts(1, 10);
        let newer = Range::at_most(Poly::int(5));
        let refined = old.refine(&newer);
        assert_eq!(refined.lo, Some(Poly::int(1)));
        assert_eq!(refined.hi, Some(Poly::int(5)));
    }

    #[test]
    fn shift_moves_both_bounds() {
        let r = Range::consts(1, 4).shift(&Poly::var("K"));
        assert_eq!(r.lo.unwrap(), Poly::var("K").checked_add(&Poly::int(1)).unwrap());
        assert_eq!(r.hi.unwrap(), Poly::var("K").checked_add(&Poly::int(4)).unwrap());
    }

    #[test]
    fn display_shows_infinities() {
        assert_eq!(Range::unknown().to_string(), "[-inf, +inf]");
        assert_eq!(Range::consts(0, 3).to_string(), "[0, 3]");
    }
}

//! Canonical multivariate polynomials over program variables.
//!
//! A [`Poly`] is a sum of monomials with [`Rat`] coefficients. Monomial
//! factors are [`Atom`]s: either scalar program variables or *opaque*
//! subexpressions (array references, intrinsic calls, inexact divisions)
//! that the polynomial layer treats as indivisible symbols. Two opaque
//! atoms are the same symbol iff their expressions are structurally
//! equal, which is exactly the "structural equality" service the Polaris
//! `Expression` class provided to its symbolic passes.
//!
//! All arithmetic is overflow-checked; `None` means "too big to reason
//! about", which callers must treat as *unknown* (never as zero).

use crate::rat::Rat;
use polaris_ir::expr::{BinOp, Expr, UnOp};
use polaris_ir::printer::format_expr;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How to treat integer division when converting an [`Expr`] to a
/// [`Poly`]. See the crate docs for the soundness discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivPolicy {
    /// Fold `e / c` (integer constant `c`) into rational coefficients.
    /// Valid when the division is known exact — in particular for the
    /// closed forms produced by induction-variable substitution.
    Exact,
    /// Keep every division as an opaque atom (conservative).
    Opaque,
}

/// An indivisible factor of a monomial.
#[derive(Debug, Clone)]
pub enum Atom {
    /// A scalar program variable.
    Var(String),
    /// An opaque subexpression, keyed by its canonical printed form.
    Opaque { key: String, expr: Box<Expr> },
}

impl Atom {
    pub fn var(name: impl Into<String>) -> Atom {
        Atom::Var(name.into().to_ascii_uppercase())
    }

    pub fn opaque(expr: Expr) -> Atom {
        Atom::Opaque { key: format_expr(&expr), expr: Box::new(expr) }
    }

    fn sort_key(&self) -> (u8, &str) {
        match self {
            Atom::Var(n) => (0, n.as_str()),
            Atom::Opaque { key, .. } => (1, key.as_str()),
        }
    }

    /// The expression this atom denotes.
    pub fn to_expr(&self) -> Expr {
        match self {
            Atom::Var(n) => Expr::Var(n.clone()),
            Atom::Opaque { expr, .. } => expr.as_ref().clone(),
        }
    }

    /// Does the atom's expression reference `var` (for opaque atoms this
    /// looks inside the wrapped expression)?
    pub fn mentions_var(&self, var: &str) -> bool {
        match self {
            Atom::Var(n) => n == var,
            Atom::Opaque { expr, .. } => expr.references_var(var) || expr.references(var),
        }
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.sort_key() == other.sort_key()
    }
}
impl Eq for Atom {}
impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Atom {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// A product of atoms raised to positive powers; the empty monomial is 1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Monomial(pub BTreeMap<Atom, u32>);

impl Monomial {
    pub fn one() -> Monomial {
        Monomial::default()
    }

    pub fn var(name: impl Into<String>) -> Monomial {
        let mut m = BTreeMap::new();
        m.insert(Atom::var(name), 1);
        Monomial(m)
    }

    pub fn is_one(&self) -> bool {
        self.0.is_empty()
    }

    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    pub fn degree_in(&self, var: &str) -> u32 {
        self.0.get(&Atom::var(var)).copied().unwrap_or(0)
    }

    fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (a, p) in &other.0 {
            *out.entry(a.clone()).or_insert(0) += p;
        }
        Monomial(out)
    }

    /// Remove `var^pow` from the monomial.
    fn without_var(&self, var: &str) -> Monomial {
        let mut out = self.0.clone();
        out.remove(&Atom::var(var));
        Monomial(out)
    }

    /// Any atom (including opaque internals) mentioning `var`?
    pub fn mentions_var(&self, var: &str) -> bool {
        self.0.keys().any(|a| a.mentions_var(var))
    }
}

/// A canonical sum of monomials. The zero polynomial has no terms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, Rat>,
}

impl Poly {
    // ----- constructors ---------------------------------------------------

    pub fn zero() -> Poly {
        Poly::default()
    }

    pub fn constant(c: Rat) -> Poly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::one(), c);
        }
        Poly { terms }
    }

    pub fn int(v: i128) -> Poly {
        Poly::constant(Rat::int(v))
    }

    pub fn var(name: impl Into<String>) -> Poly {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(name), Rat::ONE);
        Poly { terms }
    }

    pub fn opaque(expr: Expr) -> Poly {
        let mut m = BTreeMap::new();
        m.insert(Atom::opaque(expr), 1);
        let mut terms = BTreeMap::new();
        terms.insert(Monomial(m), Rat::ONE);
        Poly { terms }
    }

    // ----- queries ---------------------------------------------------------

    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value if the polynomial has no variable part.
    pub fn as_constant(&self) -> Option<Rat> {
        match self.terms.len() {
            0 => Some(Rat::ZERO),
            1 => {
                let (m, c) = self.terms.iter().next().unwrap();
                if m.is_one() {
                    Some(*c)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rat)> {
        self.terms.iter()
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// All scalar-variable atoms appearing at top level.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for m in self.terms.keys() {
            for a in m.0.keys() {
                if let Atom::Var(n) = a {
                    out.insert(n.clone());
                }
            }
        }
        out
    }

    /// All atoms (variables and opaques).
    pub fn atoms(&self) -> BTreeSet<Atom> {
        self.terms.keys().flat_map(|m| m.0.keys().cloned()).collect()
    }

    /// Does any term mention `var`, either as a top-level atom or inside
    /// an opaque expression?
    pub fn mentions_var(&self, var: &str) -> bool {
        let var = var.to_ascii_uppercase();
        self.terms.keys().any(|m| m.mentions_var(&var))
    }

    /// Highest power of `var` as a top-level atom.
    pub fn degree_in(&self, var: &str) -> u32 {
        let var = var.to_ascii_uppercase();
        self.terms.keys().map(|m| m.degree_in(&var)).max().unwrap_or(0)
    }

    /// Is `self / c` an integer for *every* integer assignment of this
    /// polynomial's atoms?
    ///
    /// Decided by finite enumeration, not a heuristic: with `D` the lcm
    /// of the coefficient denominators, `D*self` has integer
    /// coefficients, so `self`'s value modulo `c` is periodic in each
    /// atom with period `D*|c|` — checking the full residue grid is
    /// exhaustive. Returns `false` (the caller must stay conservative)
    /// when `c` is not a nonzero integer or the grid is too large to
    /// enumerate.
    pub fn exactly_divisible_by(&self, c: Rat) -> bool {
        let Some(c) = c.as_integer() else { return false };
        if c == 0 {
            return false;
        }
        let c = c.abs();
        // lcm of coefficient denominators.
        let mut d: i128 = 1;
        for coeff in self.terms.values() {
            let g = crate::rat::gcd(d, coeff.den());
            match (d / g).checked_mul(coeff.den()) {
                Some(v) => d = v,
                None => return false,
            }
        }
        if c == 1 && d == 1 {
            return true; // integer coefficients, dividing by one
        }
        let period = match d.checked_mul(c) {
            Some(p) => p,
            None => return false,
        };
        let atoms: Vec<Atom> = self.atoms().into_iter().collect();
        let mut grid: i128 = 1;
        for _ in &atoms {
            grid = grid.saturating_mul(period);
            if grid > 4096 {
                return false;
            }
        }
        let mut point = vec![0i128; atoms.len()];
        loop {
            match self.eval_at(&atoms, &point) {
                Some(v) if v.is_integer() && v.num() % c == 0 => {}
                _ => return false,
            }
            // Odometer over the residue grid.
            let mut carry = true;
            for digit in point.iter_mut() {
                *digit += 1;
                if *digit < period {
                    carry = false;
                    break;
                }
                *digit = 0;
            }
            if carry {
                return true;
            }
        }
    }

    /// Evaluate at an integer point (`point[i]` is the value of
    /// `atoms[i]`); `None` on overflow or an atom missing from `atoms`.
    fn eval_at(&self, atoms: &[Atom], point: &[i128]) -> Option<Rat> {
        let mut acc = Rat::ZERO;
        for (mon, coeff) in &self.terms {
            let mut term = *coeff;
            for (a, pow) in &mon.0 {
                let idx = atoms.iter().position(|x| x == a)?;
                let mut p: i128 = 1;
                for _ in 0..*pow {
                    p = p.checked_mul(point[idx])?;
                }
                term = term.checked_mul(Rat::int(p))?;
            }
            acc = acc.checked_add(term)?;
        }
        Some(acc)
    }

    /// Does the polynomial contain opaque atoms mentioning `var`? Such
    /// occurrences cannot be reasoned about by substitution.
    pub fn var_hidden_in_opaque(&self, var: &str) -> bool {
        let var = var.to_ascii_uppercase();
        self.terms.keys().any(|m| {
            m.0.keys()
                .any(|a| matches!(a, Atom::Opaque { .. }) && a.mentions_var(&var))
        })
    }

    // ----- arithmetic -------------------------------------------------------

    pub fn checked_add(&self, other: &Poly) -> Option<Poly> {
        let mut out = self.terms.clone();
        for (m, c) in &other.terms {
            match out.get(m) {
                Some(prev) => {
                    let sum = prev.checked_add(*c)?;
                    if sum.is_zero() {
                        out.remove(m);
                    } else {
                        out.insert(m.clone(), sum);
                    }
                }
                None => {
                    out.insert(m.clone(), *c);
                }
            }
        }
        Some(Poly { terms: out })
    }

    pub fn checked_sub(&self, other: &Poly) -> Option<Poly> {
        self.checked_add(&other.checked_neg()?)
    }

    pub fn checked_neg(&self) -> Option<Poly> {
        let mut out = BTreeMap::new();
        for (m, c) in &self.terms {
            out.insert(m.clone(), c.checked_neg()?);
        }
        Some(Poly { terms: out })
    }

    pub fn checked_mul(&self, other: &Poly) -> Option<Poly> {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let m = ma.mul(mb);
                let c = ca.checked_mul(*cb)?;
                let mut t = BTreeMap::new();
                t.insert(m, c);
                out = out.checked_add(&Poly { terms: t })?;
            }
        }
        Some(out)
    }

    pub fn checked_scale(&self, k: Rat) -> Option<Poly> {
        if k.is_zero() {
            return Some(Poly::zero());
        }
        let mut out = BTreeMap::new();
        for (m, c) in &self.terms {
            out.insert(m.clone(), c.checked_mul(k)?);
        }
        Some(Poly { terms: out })
    }

    pub fn checked_pow(&self, exp: u32) -> Option<Poly> {
        let mut acc = Poly::int(1);
        for _ in 0..exp {
            acc = acc.checked_mul(self)?;
        }
        Some(acc)
    }

    // ----- substitution and differences -------------------------------------

    /// Replace top-level occurrences of `var` with `value`. Returns
    /// `None` on arithmetic overflow or if `var` is hidden inside an
    /// opaque atom (substitution there would be unsound to skip).
    pub fn subst_var(&self, var: &str, value: &Poly) -> Option<Poly> {
        let var = var.to_ascii_uppercase();
        if self.var_hidden_in_opaque(&var) {
            return None;
        }
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            let pow = m.degree_in(&var);
            let rest = m.without_var(&var);
            let mut term = Poly { terms: BTreeMap::from([(rest, *c)]) };
            if pow > 0 {
                term = term.checked_mul(&value.checked_pow(pow)?)?;
            }
            out = out.checked_add(&term)?;
        }
        Some(out)
    }

    /// Forward difference `p[var := var+1] - p` — the monotonicity probe
    /// of the range test (§3.3.1).
    pub fn forward_diff(&self, var: &str) -> Option<Poly> {
        let vp1 = Poly::var(var).checked_add(&Poly::int(1))?;
        let shifted = self.subst_var(var, &vp1)?;
        shifted.checked_sub(self)
    }

    /// Split into `(coefficient polynomials by power of var, rest)`:
    /// `p = Σ_k coeff[k] * var^k`. Entry 0 is the var-free part. Returns
    /// `None` if `var` hides inside an opaque atom.
    pub fn by_powers_of(&self, var: &str) -> Option<Vec<Poly>> {
        let var = var.to_ascii_uppercase();
        if self.var_hidden_in_opaque(&var) {
            return None;
        }
        let deg = self.degree_in(&var) as usize;
        let mut out = vec![Poly::zero(); deg + 1];
        for (m, c) in &self.terms {
            let pow = m.degree_in(&var) as usize;
            let rest = m.without_var(&var);
            let add = Poly { terms: BTreeMap::from([(rest, *c)]) };
            out[pow] = out[pow].checked_add(&add)?;
        }
        Some(out)
    }

    /// Split into coefficient polynomials by power of an arbitrary
    /// [`Atom`] (variable *or* opaque): `p = Σ_k coeff[k] * atom^k`.
    /// Unlike [`Poly::by_powers_of`] this never fails: an opaque atom is
    /// indivisible, so it cannot "hide" inside another atom. (A variable
    /// hidden inside a *different* opaque atom is fine here because the
    /// caller is eliminating the atom itself, not the variable.)
    pub fn by_powers_of_atom(&self, atom: &Atom) -> Vec<Poly> {
        let deg = self
            .terms
            .keys()
            .map(|m| m.0.get(atom).copied().unwrap_or(0))
            .max()
            .unwrap_or(0) as usize;
        let mut out = vec![Poly::zero(); deg + 1];
        for (m, c) in &self.terms {
            let pow = m.0.get(atom).copied().unwrap_or(0) as usize;
            let mut rest = m.0.clone();
            rest.remove(atom);
            let add = Poly { terms: BTreeMap::from([(Monomial(rest), *c)]) };
            // coefficients stay small here; treat overflow as impossible
            // by saturating to the original term on failure
            out[pow] = out[pow].checked_add(&add).unwrap_or_else(|| add.clone());
        }
        out
    }

    /// Highest power of `atom` in any term.
    pub fn degree_in_atom(&self, atom: &Atom) -> u32 {
        self.terms.keys().map(|m| m.0.get(atom).copied().unwrap_or(0)).max().unwrap_or(0)
    }

    /// Replace every occurrence of `atom` with `value`.
    pub fn subst_atom(&self, atom: &Atom, value: &Poly) -> Option<Poly> {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            let pow = m.0.get(atom).copied().unwrap_or(0);
            let mut rest = m.0.clone();
            rest.remove(atom);
            let mut term = Poly { terms: BTreeMap::from([(Monomial(rest), *c)]) };
            if pow > 0 {
                term = term.checked_mul(&value.checked_pow(pow)?)?;
            }
            out = out.checked_add(&term)?;
        }
        Some(out)
    }

    /// Linear decomposition over `vars`: `p = rest + Σ coeff_i * vars_i`
    /// with every `coeff_i` constant and `rest` free of `vars`. Returns
    /// `None` if `p` is nonlinear in the `vars` or a coefficient is
    /// symbolic — exactly the applicability condition of the classic
    /// (Banerjee/GCD) tests the paper contrasts the range test against.
    pub fn linear_in(&self, vars: &[String]) -> Option<(Poly, Vec<Rat>)> {
        let mut coeffs = vec![Rat::ZERO; vars.len()];
        let mut rest = Poly::zero();
        for (m, c) in &self.terms {
            // Which of the vars appear in this monomial?
            let mut hit: Option<usize> = None;
            let mut bad = false;
            for (i, v) in vars.iter().enumerate() {
                let d = m.degree_in(v);
                if d > 1 {
                    bad = true;
                }
                if d >= 1 {
                    if hit.is_some() || d > 1 {
                        bad = true;
                    } else {
                        hit = Some(i);
                    }
                }
                // var hidden inside opaque atom of this monomial?
                if m.0.keys().any(|a| matches!(a, Atom::Opaque { .. }) && a.mentions_var(v)) {
                    bad = true;
                }
            }
            if bad {
                return None;
            }
            match hit {
                Some(i) => {
                    // coefficient must be constant: monomial minus var must be 1
                    let stripped = m.without_var(&vars[i]);
                    if !stripped.is_one() {
                        return None;
                    }
                    coeffs[i] = coeffs[i].checked_add(*c)?;
                }
                None => {
                    let add = Poly { terms: BTreeMap::from([(m.clone(), *c)]) };
                    rest = rest.checked_add(&add)?;
                }
            }
        }
        Some((rest, coeffs))
    }

    /// Evaluate with an assignment of rationals to variables; opaque
    /// atoms make evaluation fail. (Test oracle.)
    pub fn eval(&self, env: &BTreeMap<String, Rat>) -> Option<Rat> {
        let mut total = Rat::ZERO;
        for (m, c) in &self.terms {
            let mut acc = *c;
            for (a, p) in &m.0 {
                let base = match a {
                    Atom::Var(n) => *env.get(n)?,
                    Atom::Opaque { .. } => return None,
                };
                acc = acc.checked_mul(base.checked_pow(*p)?)?;
            }
            total = total.checked_add(acc)?;
        }
        Some(total)
    }

    // ----- conversion ---------------------------------------------------------

    /// Convert an expression to a polynomial. Non-polynomial structure
    /// (per `policy`) becomes opaque atoms, so conversion always succeeds
    /// structurally; `None` only on arithmetic overflow.
    pub fn from_expr(e: &Expr, policy: DivPolicy) -> Option<Poly> {
        Some(match e {
            Expr::Int(v) => Poly::int(*v as i128),
            Expr::Real(_) | Expr::Logical(_) | Expr::Str(_) => Poly::opaque(e.clone()),
            Expr::Var(n) => Poly::var(n.clone()),
            Expr::Index { .. } | Expr::Call { .. } | Expr::Wildcard(_) => Poly::opaque(e.clone()),
            Expr::Un { op: UnOp::Neg, arg } => {
                Poly::from_expr(arg, policy)?.checked_neg()?
            }
            Expr::Un { op: UnOp::Not, .. } => Poly::opaque(e.clone()),
            Expr::Bin { op, lhs, rhs } => {
                let l = || Poly::from_expr(lhs, policy);
                let r = || Poly::from_expr(rhs, policy);
                match op {
                    BinOp::Add => l()?.checked_add(&r()?)?,
                    BinOp::Sub => l()?.checked_sub(&r()?)?,
                    BinOp::Mul => l()?.checked_mul(&r()?)?,
                    BinOp::Div => {
                        let rp = r()?;
                        match (policy, rp.as_constant()) {
                            (DivPolicy::Exact, Some(c)) if !c.is_zero() => {
                                // F-Mini `/` on integers truncates, so folding
                                // into rational coefficients is only sound when
                                // the division is exact for EVERY integer value
                                // of the operands — `(v*v - v)/2` qualifies,
                                // `(n - 1)/2` does not. Unverifiable divisions
                                // stay opaque (a plain integer unknown), which
                                // downstream analyses handle conservatively.
                                let lp = l()?;
                                if lp.exactly_divisible_by(c) {
                                    let inv = Rat::new(c.den(), c.num())?;
                                    lp.checked_scale(inv)?
                                } else {
                                    Poly::opaque(e.clone())
                                }
                            }
                            _ => Poly::opaque(e.clone()),
                        }
                    }
                    BinOp::Pow => {
                        let rp = r()?;
                        match rp.as_constant().and_then(|c| c.as_integer()) {
                            Some(k) if (0..=8).contains(&k) => l()?.checked_pow(k as u32)?,
                            _ => Poly::opaque(e.clone()),
                        }
                    }
                    _ => Poly::opaque(e.clone()),
                }
            }
        })
    }

    /// Convert back to an expression. Rational coefficients are printed
    /// as `(numerator-sum)/lcm-denominator`, which is exact because the
    /// polynomial is integer-valued by construction (see crate docs).
    pub fn to_expr(&self) -> Expr {
        if self.is_zero() {
            return Expr::Int(0);
        }
        // Common denominator.
        let mut den: i128 = 1;
        for c in self.terms.values() {
            let g = crate::rat::gcd(den, c.den());
            den = den / g * c.den();
        }
        let numerator = self.build_sum(den);
        if den == 1 {
            numerator
        } else {
            Expr::div(numerator, Expr::Int(den as i64))
        }
    }

    fn build_sum(&self, den: i128) -> Expr {
        let mut acc: Option<Expr> = None;
        for (m, c) in &self.terms {
            let scaled = c.num() * (den / c.den());
            let (abs, neg) = (scaled.unsigned_abs() as i64, scaled < 0);
            let mut factors: Vec<Expr> = Vec::new();
            if abs != 1 || m.is_one() {
                factors.push(Expr::Int(abs));
            }
            for (a, p) in &m.0 {
                let base = a.to_expr();
                if *p == 1 {
                    factors.push(base);
                } else {
                    factors.push(Expr::bin(BinOp::Pow, base, Expr::Int(*p as i64)));
                }
            }
            let term = factors
                .into_iter()
                .reduce(Expr::mul)
                .unwrap_or(Expr::Int(1));
            acc = Some(match acc {
                None => {
                    if neg {
                        Expr::neg(term)
                    } else {
                        term
                    }
                }
                Some(prev) => {
                    if neg {
                        Expr::sub(prev, term)
                    } else {
                        Expr::add(prev, term)
                    }
                }
            });
        }
        acc.unwrap_or(Expr::Int(0)).simplified()
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_expr(&self.to_expr()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(src: &str) -> Poly {
        let full = format!("program t\nx = {src}\nend\n");
        let prog = polaris_ir::parse(&full).unwrap();
        match &prog.units[0].body.0[0].kind {
            polaris_ir::StmtKind::Assign { rhs, .. } => {
                Poly::from_expr(rhs, DivPolicy::Exact).unwrap()
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn canonical_form_merges_terms() {
        assert_eq!(p("i + i"), p("2*i"));
        assert_eq!(p("(i+1)*(i-1)"), p("i*i - 1"));
        assert_eq!(p("i - i"), Poly::zero());
        assert_eq!(p("2*(n+3) - 6"), p("2*n"));
    }

    #[test]
    fn exact_division_folds() {
        // (n*n + n)/2 symbolically equals n*(n+1)/2
        assert_eq!(p("(n*n + n)/2"), p("n*(n+1)/2"));
    }

    #[test]
    fn trfd_subscript_normalizes() {
        // the paper's TRFD closed form
        let a = p("k + 1 + (i*(n**2+n) + j**2 - j)/2");
        let b = p("(2*k + 2 + i*n**2 + i*n + j*j - j)/2");
        assert_eq!(a, b);
    }

    #[test]
    fn opaque_atoms_compare_structurally() {
        let a = p("z(k) * 2");
        let b = p("z(k) + z(k)");
        assert_eq!(a, b);
        let c = p("z(k+1) * 2");
        assert_ne!(a, c);
    }

    #[test]
    fn opaque_division_policy() {
        let full = "program t\nx = n/m\nend\n";
        let prog = polaris_ir::parse(full).unwrap();
        let rhs = match &prog.units[0].body.0[0].kind {
            polaris_ir::StmtKind::Assign { rhs, .. } => rhs.clone(),
            _ => unreachable!(),
        };
        // n/m with symbolic denominator is opaque under either policy
        let exact = Poly::from_expr(&rhs, DivPolicy::Exact).unwrap();
        assert_eq!(exact.atoms().len(), 1);
        assert!(matches!(exact.atoms().iter().next().unwrap(), Atom::Opaque { .. }));
        // n/2 truncates for odd n, so it must stay opaque even under
        // Exact (Exact only folds divisions provable exact for every
        // integer assignment).
        let by2 = polaris_ir::Expr::div(polaris_ir::Expr::var("N"), polaris_ir::Expr::int(2));
        let e = Poly::from_expr(&by2, DivPolicy::Exact).unwrap();
        assert!(e.atoms().iter().any(|a| matches!(a, Atom::Opaque { .. })));
        let o = Poly::from_expr(&by2, DivPolicy::Opaque).unwrap();
        assert!(o.atoms().iter().any(|a| matches!(a, Atom::Opaque { .. })));
        // (n*n + n)/2 is always even-over-two: folds under Exact.
        let tri = polaris_ir::Expr::div(
            polaris_ir::Expr::add(
                polaris_ir::Expr::mul(polaris_ir::Expr::var("N"), polaris_ir::Expr::var("N")),
                polaris_ir::Expr::var("N"),
            ),
            polaris_ir::Expr::int(2),
        );
        let t = Poly::from_expr(&tri, DivPolicy::Exact).unwrap();
        assert!(t.atoms().iter().all(|a| matches!(a, Atom::Var(_))));
    }

    #[test]
    fn exact_divisibility_is_verified_not_assumed() {
        // Exhaustive residue check: (v*v - v)/2 is integer for all v…
        assert!(p("v**2 - v").exactly_divisible_by(Rat::int(2)));
        // …but (v - 1)/2 and v/2 are not.
        assert!(!p("v - 1").exactly_divisible_by(Rat::int(2)));
        assert!(!p("v").exactly_divisible_by(Rat::int(2)));
        // Multivariate: n*(n+1) + j*(j-1) is even for all n, j.
        assert!(p("n*(n+1) + j*(j-1)").exactly_divisible_by(Rat::int(2)));
        assert!(!p("n*(n+1) + j").exactly_divisible_by(Rat::int(2)));
        // Constants.
        assert!(p("6").exactly_divisible_by(Rat::int(3)));
        assert!(!p("7").exactly_divisible_by(Rat::int(3)));
        // Division by zero is never exact.
        assert!(!p("6").exactly_divisible_by(Rat::ZERO));
    }

    #[test]
    fn forward_diff_examples_from_paper() {
        // f = (i*(n^2+n)+j^2-j)/2 + k + 1 ; df/dk = 1
        let f = p("(i*(n**2+n) + j**2 - j)/2 + k + 1");
        assert_eq!(f.forward_diff("K").unwrap(), Poly::int(1));
        // a1 = f at k = j-1 : difference in j is j+1
        let a1 = p("(i*(n**2+n) + j**2 - j)/2 + j");
        assert_eq!(a1.forward_diff("J").unwrap(), p("j + 1"));
        // b1 = f at k=0 : difference in j is j
        let b1 = p("(i*(n**2+n) + j**2 - j)/2 + 1");
        assert_eq!(b1.forward_diff("J").unwrap(), p("j"));
    }

    #[test]
    fn subst_var_composes() {
        let f = p("i*i + 2*i");
        let g = f.subst_var("I", &p("j + 1")).unwrap();
        assert_eq!(g, p("j*j + 4*j + 3"));
    }

    #[test]
    fn subst_fails_when_var_hidden_in_opaque() {
        let f = p("z(i) + i");
        assert!(f.subst_var("I", &Poly::int(3)).is_none());
    }

    #[test]
    fn by_powers_decomposition() {
        let f = p("a*i*i + b*i + c");
        let parts = f.by_powers_of("I").unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], p("c"));
        assert_eq!(parts[1], p("b"));
        assert_eq!(parts[2], p("a"));
    }

    #[test]
    fn linear_in_accepts_affine_rejects_symbolic_coeff() {
        let f = p("2*i + 3*j + n + 7");
        let (rest, coeffs) =
            f.linear_in(&["I".to_string(), "J".to_string()]).unwrap();
        assert_eq!(coeffs, vec![Rat::int(2), Rat::int(3)]);
        assert_eq!(rest, p("n + 7"));
        // n*i has symbolic coefficient: not linear for Banerjee/GCD
        let g = p("n*i + 1");
        assert!(g.linear_in(&["I".to_string()]).is_none());
        // i*i nonlinear
        let h = p("i*i");
        assert!(h.linear_in(&["I".to_string()]).is_none());
    }

    #[test]
    fn to_expr_roundtrips_through_from_expr() {
        for src in ["i + 1", "(n*n+n)/2", "2*i - 3*j + 7", "i**3 - i", "k"] {
            let original = p(src);
            let back = Poly::from_expr(&original.to_expr(), DivPolicy::Exact).unwrap();
            assert_eq!(original, back, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn eval_matches_structure() {
        let f = p("i*i + 2*j - 5");
        let env = BTreeMap::from([
            ("I".to_string(), Rat::int(4)),
            ("J".to_string(), Rat::int(3)),
        ]);
        assert_eq!(f.eval(&env), Some(Rat::int(17)));
        // missing variable → None
        assert_eq!(f.eval(&BTreeMap::new()), None);
    }

    #[test]
    fn mentions_var_sees_into_opaques() {
        let f = p("z(k) + 1");
        assert!(f.mentions_var("K"));
        assert!(f.var_hidden_in_opaque("K"));
        assert!(!f.mentions_var("J"));
    }

    proptest! {
        #[test]
        fn prop_add_is_commutative(a in -20i64..20, b in -20i64..20, c in -20i64..20, d in -20i64..20) {
            let x = Poly::var("I").checked_scale(Rat::int(a as i128)).unwrap()
                .checked_add(&Poly::int(b as i128)).unwrap();
            let y = Poly::var("J").checked_scale(Rat::int(c as i128)).unwrap()
                .checked_add(&Poly::int(d as i128)).unwrap();
            prop_assert_eq!(x.checked_add(&y), y.checked_add(&x));
        }

        #[test]
        fn prop_eval_homomorphism(ci in -5i128..5, cj in -5i128..5, k in -5i128..5,
                                  vi in -10i128..10, vj in -10i128..10) {
            // (ci*I + k) * (cj*J + k) evaluated = product of evaluations
            let x = Poly::var("I").checked_scale(Rat::int(ci)).unwrap()
                .checked_add(&Poly::int(k)).unwrap();
            let y = Poly::var("J").checked_scale(Rat::int(cj)).unwrap()
                .checked_add(&Poly::int(k)).unwrap();
            let prod = x.checked_mul(&y).unwrap();
            let env = BTreeMap::from([
                ("I".to_string(), Rat::int(vi)),
                ("J".to_string(), Rat::int(vj)),
            ]);
            let lhs = prod.eval(&env).unwrap();
            let rhs = x.eval(&env).unwrap().checked_mul(y.eval(&env).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_forward_diff_of_linear_is_coefficient(a in -30i128..30, b in -30i128..30) {
            let f = Poly::var("I").checked_scale(Rat::int(a)).unwrap()
                .checked_add(&Poly::int(b)).unwrap();
            let d = f.forward_diff("I").unwrap();
            prop_assert_eq!(d, Poly::int(a));
        }

        #[test]
        fn prop_to_expr_from_expr_identity(a in -9i128..9, b in -9i128..9, c in -9i128..9) {
            let f = Poly::var("I").checked_pow(2).unwrap()
                .checked_scale(Rat::int(a)).unwrap()
                .checked_add(&Poly::var("J").checked_scale(Rat::int(b)).unwrap()).unwrap()
                .checked_add(&Poly::int(c)).unwrap();
            let back = Poly::from_expr(&f.to_expr(), DivPolicy::Exact).unwrap();
            prop_assert_eq!(f, back);
        }
    }
}

//! Symbolic bounds: minimum/maximum of a polynomial over variable ranges,
//! sign determination, and expression comparison.
//!
//! This is the computational core of the range test (§3.3.1): "to compute
//! the minimum or maximum of an expression for a variable *i*, the range
//! test first attempts to prove that the expression is either
//! monotonically non-decreasing or monotonically non-increasing for *i*
//! [via] the forward difference", then substitutes the variable's upper
//! or lower bound. Variables are eliminated innermost-scope-first, so
//! substituted bounds only mention enclosing-scope variables and the
//! recursion is well founded (a depth budget guards against adversarial
//! condition cycles).

use crate::env::RangeEnv;
use crate::poly::{Atom, Poly};
#[cfg(test)]
use crate::range::Range;

/// Sign classification of a symbolic quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    Neg,
    NonPos,
    Zero,
    NonNeg,
    Pos,
    Unknown,
}

impl Sign {
    pub fn is_nonneg(self) -> bool {
        matches!(self, Sign::Zero | Sign::NonNeg | Sign::Pos)
    }

    pub fn is_nonpos(self) -> bool {
        matches!(self, Sign::Zero | Sign::NonPos | Sign::Neg)
    }

    pub fn is_pos(self) -> bool {
        self == Sign::Pos
    }

    pub fn is_neg(self) -> bool {
        self == Sign::Neg
    }
}

/// Direction of a bound computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Min,
    Max,
}

const MAX_DEPTH: u32 = 8;

std::thread_local! {
    /// Work budget per top-level query: the elimination recursion is
    /// exponential in the worst case (each failing monotonicity probe
    /// explores sub-eliminations), so a deterministic fuel counter keeps
    /// unprovable queries cheap instead of letting them explode.
    static FUEL: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

const FUEL_PER_QUERY: u32 = 4000;

fn refuel() {
    FUEL.with(|f| f.set(FUEL_PER_QUERY));
}

fn spend_fuel() -> bool {
    FUEL.with(|f| {
        let v = f.get();
        if v == 0 {
            false
        } else {
            f.set(v - 1);
            true
        }
    })
}

/// Determine the sign of `p` under the variable ranges in `env`.
pub fn sign(p: &Poly, env: &RangeEnv) -> Sign {
    refuel();
    sign_at(p, env, MAX_DEPTH)
}

fn sign_at(p: &Poly, env: &RangeEnv, depth: u32) -> Sign {
    if let Some(c) = p.as_constant() {
        return match c.signum() {
            1 => Sign::Pos,
            -1 => Sign::Neg,
            _ => Sign::Zero,
        };
    }
    if depth == 0 || !spend_fuel() {
        return Sign::Unknown;
    }
    let lo_sig = eliminate_all(p, env, Dir::Min, depth)
        .and_then(|q| q.as_constant())
        .map(|c| c.signum());
    let hi_sig = eliminate_all(p, env, Dir::Max, depth)
        .and_then(|q| q.as_constant())
        .map(|c| c.signum());
    match (lo_sig, hi_sig) {
        (Some(1), _) => Sign::Pos,
        (_, Some(-1)) => Sign::Neg,
        (Some(0), Some(0)) => Sign::Zero,
        (Some(s), _) if s >= 0 => Sign::NonNeg,
        (_, Some(s)) if s <= 0 => Sign::NonPos,
        _ => Sign::Unknown,
    }
}

/// Lower and upper symbolic bounds of `p` after eliminating every
/// variable and opaque atom that has a range in `env`. `None` means the
/// bound could not be established.
pub fn min_max(p: &Poly, env: &RangeEnv) -> (Option<Poly>, Option<Poly>) {
    refuel();
    let lo = eliminate_all(p, env, Dir::Min, MAX_DEPTH);
    refuel();
    let hi = eliminate_all(p, env, Dir::Max, MAX_DEPTH);
    (lo, hi)
}

/// Like [`min_max`], but eliminates exactly the given atoms, in order
/// (first atom eliminated first). Used by the range test to compute the
/// access range of the *inner* loops of a nest while the tested loop's
/// index stays symbolic. Fails if any listed atom survives elimination.
pub fn min_max_over(
    p: &Poly,
    atoms: &[Atom],
    env: &RangeEnv,
) -> (Option<Poly>, Option<Poly>) {
    refuel();
    let lo = eliminate_listed(p, atoms, env, Dir::Min, MAX_DEPTH);
    refuel();
    let hi = eliminate_listed(p, atoms, env, Dir::Max, MAX_DEPTH);
    (lo, hi)
}

/// Prove `a >= b` under `env`.
pub fn prove_ge(a: &Poly, b: &Poly, env: &RangeEnv) -> bool {
    match a.checked_sub(b) {
        Some(d) => sign(&d, env).is_nonneg(),
        None => false,
    }
}

/// Prove `a > b` under `env`.
pub fn prove_gt(a: &Poly, b: &Poly, env: &RangeEnv) -> bool {
    match a.checked_sub(b) {
        Some(d) => sign(&d, env).is_pos(),
        None => false,
    }
}

/// Prove `a <= b` under `env`.
pub fn prove_le(a: &Poly, b: &Poly, env: &RangeEnv) -> bool {
    prove_ge(b, a, env)
}

/// Prove `a < b` under `env`.
pub fn prove_lt(a: &Poly, b: &Poly, env: &RangeEnv) -> bool {
    prove_gt(b, a, env)
}

/// Eliminate every rangeable atom of `p`: opaque atoms with known ranges
/// first, then ranged variables innermost-first.
fn eliminate_all(p: &Poly, env: &RangeEnv, dir: Dir, depth: u32) -> Option<Poly> {
    let mut atoms: Vec<Atom> = Vec::new();
    for atom in p.atoms() {
        if matches!(atom, Atom::Opaque { .. }) && !env.atom_range(&atom).is_unknown() {
            atoms.push(atom);
        }
    }
    // Innermost (latest-declared) variables first.
    for var in env.order().iter().rev() {
        atoms.push(Atom::var(var.clone()));
    }
    eliminate_listed(p, &atoms, env, dir, depth)
}

/// Eliminate the listed atoms in order; each must disappear (or be
/// absent). Atoms not in the list stay symbolic.
fn eliminate_listed(
    p: &Poly,
    atoms: &[Atom],
    env: &RangeEnv,
    dir: Dir,
    depth: u32,
) -> Option<Poly> {
    let mut cur = p.clone();
    for atom in atoms {
        cur = eliminate_one(&cur, atom, env, dir, depth)?;
        // A variable may still hide inside an opaque atom — that would
        // make the "bound" depend on the eliminated variable. Reject.
        if let Atom::Var(v) = atom {
            if cur.mentions_var(v) {
                return None;
            }
        }
    }
    Some(cur)
}

/// Eliminate one atom from `p`, replacing it by its range bound in the
/// requested direction.
fn eliminate_one(p: &Poly, atom: &Atom, env: &RangeEnv, dir: Dir, depth: u32) -> Option<Poly> {
    if p.degree_in_atom(atom) == 0 {
        // Not present at top level; may still hide inside opaques — the
        // caller checks for variables.
        return Some(p.clone());
    }
    if depth == 0 || !spend_fuel() {
        return None;
    }
    let range = env.atom_range(atom);
    if let Atom::Var(v) = atom {
        if p.var_hidden_in_opaque(v) {
            return None;
        }
        // General (possibly nonlinear) variable elimination via
        // monotonicity of the forward difference.
        let d = p.forward_diff(v)?;
        let mono = sign_at(&d, env, depth - 1);
        let pick = |want_hi: bool| -> Option<&Poly> {
            if want_hi {
                range.hi.as_ref()
            } else {
                range.lo.as_ref()
            }
        };
        let chosen = match (dir, mono) {
            (Dir::Max, s) if s.is_nonneg() => pick(true),
            (Dir::Max, s) if s.is_nonpos() => pick(false),
            (Dir::Min, s) if s.is_nonneg() => pick(false),
            (Dir::Min, s) if s.is_nonpos() => pick(true),
            _ => None,
        };
        if let Some(bound) = chosen {
            if bound.mentions_var(v) {
                return None;
            }
            return p.subst_var(v, bound);
        }
        // Non-monotone: fall back to endpoint evaluation when the leading
        // coefficient makes the extremum land on an interval endpoint
        // (convex for Max, concave for Min).
        let parts = p.by_powers_of(v)?;
        let lead = parts.last()?;
        let lead_sign = sign_at(lead, env, depth - 1);
        let endpoint_ok = match dir {
            Dir::Max => lead_sign.is_nonneg(),
            Dir::Min => lead_sign.is_nonpos(),
        };
        if !endpoint_ok {
            return None;
        }
        let (lo, hi) = (range.lo.as_ref()?, range.hi.as_ref()?);
        if lo.mentions_var(v) || hi.mentions_var(v) {
            return None;
        }
        let at_lo = p.subst_var(v, lo)?;
        let at_hi = p.subst_var(v, hi)?;
        let diff = at_hi.checked_sub(&at_lo)?;
        let s = sign_at(&diff, env, depth - 1);
        return match dir {
            Dir::Max if s.is_nonneg() => Some(at_hi),
            Dir::Max if s.is_nonpos() => Some(at_lo),
            Dir::Min if s.is_nonneg() => Some(at_lo),
            Dir::Min if s.is_nonpos() => Some(at_hi),
            _ => None,
        };
    }
    // Opaque atom: only linear occurrences can be bounded.
    let parts = p.by_powers_of_atom(atom);
    if parts.len() != 2 {
        return None;
    }
    let coeff = &parts[1];
    let cs = sign_at(coeff, env, depth - 1);
    let want_hi = match (dir, cs) {
        (Dir::Max, s) if s.is_nonneg() => true,
        (Dir::Max, s) if s.is_nonpos() => false,
        (Dir::Min, s) if s.is_nonneg() => false,
        (Dir::Min, s) if s.is_nonpos() => true,
        _ => return None,
    };
    let bound = if want_hi { range.hi.clone()? } else { range.lo.clone()? };
    parts[0].checked_add(&coeff.checked_mul(&bound)?)
}

/// Is `p` monotonically non-decreasing in `var` under `env`? (§3.3.1's
/// monotonicity check, exported for the range test.)
pub fn is_nondecreasing(p: &Poly, var: &str, env: &RangeEnv) -> bool {
    match p.forward_diff(var) {
        Some(d) => sign(&d, env).is_nonneg(),
        None => false,
    }
}

/// Is `p` monotonically non-increasing in `var` under `env`?
pub fn is_nonincreasing(p: &Poly, var: &str, env: &RangeEnv) -> bool {
    match p.forward_diff(var) {
        Some(d) => sign(&d, env).is_nonpos(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::DivPolicy;


    fn p(src: &str) -> Poly {
        let full = format!("program t\nx = {src}\nend\n");
        let prog = polaris_ir::parse(&full).unwrap();
        match &prog.units[0].body.0[0].kind {
            polaris_ir::StmtKind::Assign { rhs, .. } => {
                Poly::from_expr(rhs, DivPolicy::Exact).unwrap()
            }
            _ => unreachable!(),
        }
    }

    fn env_n_ge_1() -> RangeEnv {
        let mut env = RangeEnv::new();
        env.set("N", Range::at_least(Poly::int(1)));
        env
    }

    #[test]
    fn constant_signs() {
        let env = RangeEnv::new();
        assert_eq!(sign(&p("3"), &env), Sign::Pos);
        assert_eq!(sign(&p("-2"), &env), Sign::Neg);
        assert_eq!(sign(&p("0"), &env), Sign::Zero);
        assert_eq!(sign(&p("n"), &env), Sign::Unknown);
    }

    #[test]
    fn linear_with_range() {
        let env = env_n_ge_1();
        assert_eq!(sign(&p("n"), &env), Sign::Pos);
        assert_eq!(sign(&p("n + 1"), &env), Sign::Pos);
        assert_eq!(sign(&p("n - 1"), &env), Sign::NonNeg);
        assert_eq!(sign(&p("-n"), &env), Sign::Neg);
        assert_eq!(sign(&p("n - 2"), &env), Sign::Unknown);
    }

    #[test]
    fn paper_example_n_squared_plus_n() {
        // §3.3.1: "we needed to test whether j > 0 or n^2 + n > 0"
        let env = env_n_ge_1();
        assert_eq!(sign(&p("n**2 + n"), &env), Sign::Pos);
    }

    #[test]
    fn paper_example_trfd_carried_difference() {
        // b2(i+1) - a2(i) = n + 1 > 0 given n >= 1
        let env = env_n_ge_1();
        let a2 = p("(i*(n**2+n) + n**2 - n)/2");
        let b2 = p("(i*(n**2+n))/2 + 1");
        let b2_next = b2.subst_var("I", &p("i + 1")).unwrap();
        let diff = b2_next.checked_sub(&a2).unwrap();
        assert_eq!(diff, p("n + 1"));
        assert!(sign(&diff, &env).is_pos());
        // and b2 is monotonically non-decreasing in i
        assert!(is_nondecreasing(&b2, "I", &env));
    }

    #[test]
    fn min_max_of_triangular_subscript() {
        // f(i,j,k) over k in [0, j-1], j in [0, n-1]:
        // the paper's a2/b2 bounds for TRFD
        let mut env = RangeEnv::new();
        env.set("N", Range::at_least(Poly::int(1)));
        env.set("J", Range::new(Some(Poly::int(0)), Some(p("n - 1"))));
        env.set(
            "K",
            Range::new(Some(Poly::int(0)), Some(p("j - 1"))),
        );
        let f = p("(i*(n**2+n) + j**2 - j)/2 + k + 1");
        let atoms = [Atom::var("K"), Atom::var("J")];
        let (min, max) = min_max_over(&f, &atoms, &env);
        assert_eq!(min.unwrap(), p("(i*(n**2+n))/2 + 1"), "b2 from the paper");
        assert_eq!(max.unwrap(), p("(i*(n**2+n) + n**2 - n)/2"), "a2 from the paper");
    }

    #[test]
    fn quadratic_nonmonotone_endpoint_fallback() {
        // p = i*i - 4i over i in [0, 10]: max at endpoint i=10 (convex)
        let mut env = RangeEnv::new();
        env.set("I", Range::consts(0, 10));
        let f = p("i*i - 4*i");
        let (_, max) = min_max(&f, &env);
        assert_eq!(max.unwrap(), Poly::int(60));
        // min of a convex parabola is NOT at an endpoint — must refuse
        let (min, _) = min_max(&f, &env);
        assert!(min.is_none());
    }

    #[test]
    fn prove_relations() {
        let mut env = RangeEnv::new();
        env.set("M", Range::at_least(Poly::int(2)));
        env.set("P", Range::at_least(Poly::int(1)));
        // m*p >= p  given m >= 2, p >= 1
        assert!(prove_ge(&p("m*p"), &p("p"), &env));
        assert!(prove_gt(&p("m*p + 1"), &p("p"), &env));
        assert!(prove_le(&p("p"), &p("m*p"), &env));
        assert!(prove_lt(&p("p - 1"), &p("m*p"), &env));
        // and the unprovable direction stays unproven
        assert!(!prove_ge(&p("p"), &p("m*p"), &env));
    }

    #[test]
    fn mod_atom_bounded() {
        let env = RangeEnv::new();
        let f = p("mod(k, 8) - 8");
        assert_eq!(sign(&f, &env), Sign::Neg);
        let g = p("mod(k, 8)");
        assert!(sign(&g, &env).is_nonneg());
    }

    #[test]
    fn array_value_atom_bounded() {
        // IND(L) in [1, I-1]  ⇒  IND(L) - I < 0  given nothing else.
        // IND must be a declared array so the reference parses as Index.
        let parse_with_ind = |src: &str| -> Poly {
            let full = format!("program t\ninteger ind(100)\nx = {src}\nend\n");
            let prog = polaris_ir::parse(&full).unwrap();
            match &prog.units[0].body.0[0].kind {
                polaris_ir::StmtKind::Assign { rhs, .. } => {
                    Poly::from_expr(rhs, DivPolicy::Exact).unwrap()
                }
                _ => unreachable!(),
            }
        };
        let mut env = RangeEnv::new();
        env.set_array_values("IND", Range::new(Some(Poly::int(1)), Some(p("i - 1"))));
        let f = parse_with_ind("ind(l) - i");
        assert_eq!(sign(&f, &env), Sign::Neg);
        let g = parse_with_ind("ind(l)");
        assert_eq!(sign(&g, &env), Sign::Pos);
    }

    #[test]
    fn ocean_ftrvmt_permuted_bounds() {
        // Figure 3: A(258*X*J + 129*K + I + 1) with I in [0,128],
        // J in [0, ZK], K in [0, X-1]. For fixed J (outer after permute),
        // eliminating I and K gives bounds linear in J.
        let mut env = RangeEnv::new();
        env.set("X", Range::at_least(Poly::int(1)));
        env.set("ZK", Range::at_least(Poly::int(0)));
        env.set("K", Range::new(Some(Poly::int(0)), Some(p("x - 1"))));
        env.set("I", Range::consts(0, 128));
        let f = p("258*x*j + 129*k + i + 1");
        let atoms = [Atom::var("I"), Atom::var("K")];
        let (min, max) = min_max_over(&f, &atoms, &env);
        assert_eq!(min.unwrap(), p("258*x*j + 1"));
        assert_eq!(max.unwrap(), p("258*x*j + 129*(x-1) + 129"));
        // gap to next j iteration: min(j+1) - max(j) = 258x - 129x = 129x > 0
        let gap = p("258*x*(j+1) + 1").checked_sub(&p("258*x*j + 129*x")).unwrap();
        assert!(sign(&gap, &env).is_pos());
    }

    #[test]
    fn unknown_variable_blocks_elimination() {
        let mut env = RangeEnv::new();
        env.set("I", Range::consts(0, 10));
        // q has no range: min over I exists but q remains symbolic
        let f = p("i + q");
        let (min, max) = min_max(&f, &env);
        assert_eq!(min.unwrap(), p("q"));
        assert_eq!(max.unwrap(), p("q + 10"));
        assert_eq!(sign(&f, &env), Sign::Unknown);
    }

    #[test]
    fn hidden_variable_in_opaque_is_rejected() {
        let mut env = RangeEnv::new();
        env.set("K", Range::consts(1, 5));
        // K occurs both openly and inside Z(K): bounding by substituting
        // K alone would be wrong.
        let f = p("k + z(k)");
        let (min, max) = min_max(&f, &env);
        assert!(min.is_none());
        assert!(max.is_none());
    }

    #[test]
    fn decreasing_function_bounds_swap() {
        let mut env = RangeEnv::new();
        env.set("I", Range::consts(1, 9));
        let f = p("10 - i");
        let (min, max) = min_max(&f, &env);
        assert_eq!(min.unwrap(), Poly::int(1));
        assert_eq!(max.unwrap(), Poly::int(9));
    }
}

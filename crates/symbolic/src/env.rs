//! The range environment: "symbolic lower and upper bounds for each
//! variable at each point of the program" (§3.3.1, *range propagation*).
//!
//! A [`RangeEnv`] is built by walking a unit's structured control flow:
//! `PARAMETER` statements contribute exact values, `DO` headers
//! contribute loop-variable intervals, `IF`/`!$ASSERT` conditions tighten
//! bounds on their true paths. The *elimination order* records nesting:
//! variables added later (inner loops) are eliminated first when
//! computing bounds, so substituted bounds only mention outer variables —
//! the well-founded order that makes the recursion in [`crate::bounds`]
//! terminate.

use crate::poly::{Atom, DivPolicy, Poly};
use crate::range::Range;
use polaris_ir::expr::{BinOp, Expr};
use std::collections::BTreeMap;

/// Symbolic variable ranges, ordered for elimination.
#[derive(Debug, Clone, Default)]
pub struct RangeEnv {
    ranges: BTreeMap<String, Range>,
    /// Elimination priority: eliminate from the back (inner scopes first).
    order: Vec<String>,
    /// Ranges for the *values stored in* whole arrays, registered by
    /// idiom recognizers (e.g. the BDNA compaction idiom proves
    /// `IND(1:P) ∈ [1, I-1]`). Keyed by array name.
    array_values: BTreeMap<String, Range>,
}

impl RangeEnv {
    pub fn new() -> RangeEnv {
        RangeEnv::default()
    }

    /// Set (or refine) the range of a scalar variable.
    pub fn set(&mut self, var: impl Into<String>, range: Range) {
        let var = var.into().to_ascii_uppercase();
        match self.ranges.get(&var) {
            Some(existing) => {
                let refined = existing.refine(&range);
                self.ranges.insert(var, refined);
            }
            None => {
                self.order.push(var.clone());
                self.ranges.insert(var, range);
            }
        }
    }

    /// Replace a variable's range outright (used when entering a new
    /// scope for the same name, e.g. a reused loop index).
    pub fn set_fresh(&mut self, var: impl Into<String>, range: Range) {
        let var = var.into().to_ascii_uppercase();
        if !self.ranges.contains_key(&var) {
            self.order.push(var.clone());
        }
        self.ranges.insert(var, range);
    }

    pub fn get(&self, var: &str) -> Option<&Range> {
        self.ranges.get(&var.to_ascii_uppercase())
    }

    /// Remove a variable (leaving a loop's scope).
    pub fn remove(&mut self, var: &str) {
        let var = var.to_ascii_uppercase();
        self.ranges.remove(&var);
        self.order.retain(|v| v != &var);
    }

    /// Kill every fact that becomes stale when `var` is reassigned: the
    /// variable's own range, any range whose bounds mention it, and any
    /// registered array-value range mentioning it. This is what makes the
    /// flow-sensitive range propagation of `polaris-core` sound.
    pub fn invalidate(&mut self, var: &str) {
        let var = var.to_ascii_uppercase();
        let stale: Vec<String> = self
            .ranges
            .iter()
            .filter(|(name, r)| {
                *name == &var
                    || r.lo.as_ref().map(|p| p.mentions_var(&var)).unwrap_or(false)
                    || r.hi.as_ref().map(|p| p.mentions_var(&var)).unwrap_or(false)
            })
            .map(|(name, _)| name.clone())
            .collect();
        for name in stale {
            self.remove(&name);
        }
        self.array_values.retain(|name, r| {
            name != &var
                && !r.lo.as_ref().map(|p| p.mentions_var(&var)).unwrap_or(false)
                && !r.hi.as_ref().map(|p| p.mentions_var(&var)).unwrap_or(false)
        });
    }

    /// Elimination order, innermost (latest) last.
    pub fn order(&self) -> &[String] {
        &self.order
    }

    /// Register value bounds for the elements of `array`.
    pub fn set_array_values(&mut self, array: impl Into<String>, range: Range) {
        self.array_values.insert(array.into().to_ascii_uppercase(), range);
    }

    /// Assume `lo <= var <= hi` from a `DO var = lo, hi` header with
    /// positive step (bounds swapped by the caller for negative step).
    /// Bounds are converted with [`DivPolicy::Opaque`] — loop bounds in
    /// source text cannot be assumed exact divisions.
    pub fn assume_loop(&mut self, var: &str, init: &Expr, limit: &Expr) {
        let lo = Poly::from_expr(init, DivPolicy::Opaque);
        let hi = Poly::from_expr(limit, DivPolicy::Opaque);
        self.set_fresh(var, Range::new(lo, hi));
    }

    /// Assume both the loop-variable range of `DO var = init, limit` *and*
    /// the fact that the loop body executes (`init <= limit`), which is
    /// the valid assumption when the analysis target lives inside the
    /// body. This is what licenses the paper's `n >= 1` reasoning for a
    /// `DO J = 0, N-1` nest.
    pub fn assume_nonempty_loop(&mut self, var: &str, init: &Expr, limit: &Expr) {
        self.assume_loop(var, init, limit);
        self.assume_cond(&Expr::bin(BinOp::Le, init.clone(), limit.clone()));
    }

    /// Assume a boolean condition holds (the true edge of an IF or an
    /// `!$ASSERT`). Conjunctions recurse; relations where one side is a
    /// bare variable tighten that variable's range; everything else is
    /// ignored (conservative).
    pub fn assume_cond(&mut self, cond: &Expr) {
        match cond {
            Expr::Bin { op: BinOp::And, lhs, rhs } => {
                self.assume_cond(lhs);
                self.assume_cond(rhs);
            }
            Expr::Bin { op, lhs, rhs } if op.is_relational() => {
                self.assume_relation(*op, lhs, rhs);
            }
            _ => {}
        }
    }

    fn assume_relation(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) {
        // Normalize to `d >= 0` (or `> 0` / `== 0`) with d = lhs - rhs in
        // the direction implied by `op`, then solve the (linear,
        // integer-coefficient) occurrences of each variable in d. This
        // derives `N >= 1` from `0 <= N - 1`, which is how analyzing a
        // loop body lets us assume the loop is non-empty.
        let (l, r) = match (
            Poly::from_expr(lhs, DivPolicy::Opaque),
            Poly::from_expr(rhs, DivPolicy::Opaque),
        ) {
            (Some(l), Some(r)) => (l, r),
            _ => return,
        };
        let one = Poly::int(1);
        // Rewrite strict integer inequalities as non-strict ones.
        let (d, exact) = match op {
            BinOp::Ge => (l.checked_sub(&r), false),
            BinOp::Gt => (l.checked_sub(&r).and_then(|d| d.checked_sub(&one)), false),
            BinOp::Le => (r.checked_sub(&l), false),
            BinOp::Lt => (r.checked_sub(&l).and_then(|d| d.checked_sub(&one)), false),
            BinOp::Eq => (l.checked_sub(&r), true),
            _ => return,
        };
        let Some(d) = d else { return };
        // d >= 0 (and d <= 0 too, when exact). Solve for each variable
        // that occurs linearly with a constant coefficient.
        for v in d.vars() {
            let Some(parts) = d.by_powers_of(&v) else { continue };
            if parts.len() != 2 {
                continue;
            }
            let Some(c) = parts[1].as_constant() else { continue };
            if c.is_zero() {
                continue;
            }
            // c*v + rest >= 0  ⇒  v >= -rest/c (c>0)  or  v <= -rest/c (c<0)
            let Some(inv) = crate::rat::Rat::new(-c.den(), c.num()) else { continue };
            let Some(bound) = parts[0].checked_scale(inv) else { continue };
            if bound.mentions_var(&v) {
                continue;
            }
            if exact {
                self.set(&v, Range::exact(bound));
            } else if c.signum() > 0 {
                self.set(&v, Range::at_least(bound));
            } else {
                self.set(&v, Range::at_most(bound));
            }
        }
    }

    /// Range of an arbitrary atom: variables use their tracked range;
    /// `MOD(x, c)` with positive constant `c` is `[0, c-1]`; an array
    /// reference uses registered whole-array value bounds; anything else
    /// is unknown.
    pub fn atom_range(&self, atom: &Atom) -> Range {
        match atom {
            Atom::Var(n) => self.get(n).cloned().unwrap_or_default(),
            Atom::Opaque { expr, .. } => match expr.as_ref() {
                Expr::Call { name, args } if name == "MOD" && args.len() == 2 => {
                    match args[1].simplified().as_int() {
                        Some(c) if c > 0 => Range::consts(0, (c - 1) as i128),
                        _ => Range::unknown(),
                    }
                }
                Expr::Index { array, .. } => {
                    self.array_values.get(array).cloned().unwrap_or_default()
                }
                _ => Range::unknown(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_assumption_sets_bounds() {
        let mut env = RangeEnv::new();
        env.assume_loop("I", &Expr::int(1), &Expr::var("N"));
        let r = env.get("I").unwrap();
        assert_eq!(r.lo, Some(Poly::int(1)));
        assert_eq!(r.hi, Some(Poly::var("N")));
        assert_eq!(env.order(), &["I".to_string()]);
    }

    #[test]
    fn conditions_tighten() {
        let mut env = RangeEnv::new();
        // (n >= 1) .and. (n < 100)
        let cond = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Ge, Expr::var("N"), Expr::int(1)),
            Expr::bin(BinOp::Lt, Expr::var("N"), Expr::int(100)),
        );
        env.assume_cond(&cond);
        let r = env.get("N").unwrap();
        assert_eq!(r.lo, Some(Poly::int(1)));
        assert_eq!(r.hi, Some(Poly::int(99)));
    }

    #[test]
    fn swapped_relation_sides() {
        let mut env = RangeEnv::new();
        // 3 <= k   means  k >= 3
        env.assume_cond(&Expr::bin(BinOp::Le, Expr::int(3), Expr::var("K")));
        assert_eq!(env.get("K").unwrap().lo, Some(Poly::int(3)));
    }

    #[test]
    fn equality_gives_exact_range() {
        let mut env = RangeEnv::new();
        env.assume_cond(&Expr::bin(BinOp::Eq, Expr::var("M"), Expr::var("N")));
        assert_eq!(env.get("M").unwrap().as_exact(), Some(&Poly::var("N")));
    }

    #[test]
    fn mod_atom_range() {
        let env = RangeEnv::new();
        let atom = Atom::opaque(Expr::call("MOD", vec![Expr::var("X"), Expr::int(8)]));
        let r = env.atom_range(&atom);
        assert_eq!(r.const_bounds().unwrap().1, crate::rat::Rat::int(7));
    }

    #[test]
    fn array_value_ranges() {
        let mut env = RangeEnv::new();
        env.set_array_values("IND", Range::consts(1, 99));
        let atom = Atom::opaque(Expr::index("IND", vec![Expr::var("L")]));
        assert_eq!(env.atom_range(&atom), Range::consts(1, 99));
        // unrelated array unknown
        let other = Atom::opaque(Expr::index("FOO", vec![Expr::var("L")]));
        assert!(env.atom_range(&other).is_unknown());
    }

    #[test]
    fn remove_pops_order() {
        let mut env = RangeEnv::new();
        env.assume_loop("I", &Expr::int(1), &Expr::int(10));
        env.assume_loop("J", &Expr::int(1), &Expr::var("I"));
        env.remove("J");
        assert_eq!(env.order(), &["I".to_string()]);
        assert!(env.get("J").is_none());
    }
}

//! Closed-form summation of polynomials over iteration spaces.
//!
//! Induction-variable substitution (§3.2) sums the per-iteration
//! increment "across the iteration space of the enclosing loop"; for
//! polynomial increments the sums are Faulhaber's formulas. We compute
//! `Σ_{v=lo}^{hi} p(v)` symbolically via power-sum prefix polynomials
//! `S_k(n) = Σ_{i=1}^{n} i^k` (k ≤ 8), evaluated at polynomial
//! arguments, so triangular nests (`hi` depending on outer indices)
//! come out exactly right.

use crate::poly::Poly;
use crate::rat::Rat;

/// Maximum supported power in summands (ample: real induction increments
/// in the paper's suite are at most quadratic).
pub const MAX_POWER: u32 = 8;

/// Coefficients of `S_k(n) = Σ_{i=1}^{n} i^k` as a polynomial in `n`
/// (constant term first). Derived from Bernoulli numbers; returned as
/// rationals.
fn power_sum_coeffs(k: u32) -> Vec<Rat> {
    // S_k(n) = 1/(k+1) Σ_{j=0}^{k} C(k+1, j) B_j n^{k+1-j}, with B_1 = +1/2.
    let bernoulli = bernoulli_plus((k + 1) as usize);
    let kk = k as i128;
    let mut coeffs = vec![Rat::ZERO; (k + 2) as usize];
    let inv = Rat::new(1, kk + 1).expect("k+1 > 0");
    for (j, bj) in bernoulli.iter().enumerate().take(k as usize + 1) {
        let c = binomial(kk + 1, j as i128);
        let term = Rat::int(c)
            .checked_mul(*bj)
            .and_then(|t| t.checked_mul(inv))
            .expect("power-sum coefficients stay small");
        let power = (k + 1) as usize - j;
        coeffs[power] = coeffs[power].checked_add(term).expect("no overflow");
    }
    coeffs
}

/// Bernoulli numbers B_0..B_n with the B_1 = +1/2 convention.
fn bernoulli_plus(n: usize) -> Vec<Rat> {
    // Standard recurrence for B^- then flip the sign of B_1.
    let mut b = vec![Rat::ZERO; n + 1];
    b[0] = Rat::ONE;
    for m in 1..=n {
        // B_m = -1/(m+1) Σ_{j=0}^{m-1} C(m+1, j) B_j
        let mut acc = Rat::ZERO;
        for (j, bj) in b.iter().enumerate().take(m) {
            let c = binomial((m + 1) as i128, j as i128);
            acc = acc.checked_add(Rat::int(c).checked_mul(*bj).unwrap()).unwrap();
        }
        b[m] = acc
            .checked_mul(Rat::new(-1, (m + 1) as i128).unwrap())
            .unwrap();
    }
    if n >= 1 {
        b[1] = Rat::new(1, 2).unwrap();
    }
    b
}

fn binomial(n: i128, k: i128) -> i128 {
    if k < 0 || k > n {
        return 0;
    }
    let mut acc: i128 = 1;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

/// `S_k` evaluated at a polynomial argument: `Σ_{i=1}^{arg} i^k`.
fn power_sum_at(k: u32, arg: &Poly) -> Option<Poly> {
    let coeffs = power_sum_coeffs(k);
    let mut acc = Poly::zero();
    let mut arg_pow = Poly::int(1);
    for c in coeffs {
        if !c.is_zero() {
            acc = acc.checked_add(&arg_pow.checked_scale(c)?)?;
        }
        arg_pow = arg_pow.checked_mul(arg)?;
    }
    Some(acc)
}

/// Closed form of `Σ_{var=lo}^{hi} p(var)` (empty when `hi < lo`, which
/// the closed form also yields for polynomially-expressed bounds).
///
/// Returns `None` when `p` mentions `var` inside an opaque atom, exceeds
/// [`MAX_POWER`], or arithmetic overflows.
pub fn sum_over(p: &Poly, var: &str, lo: &Poly, hi: &Poly) -> Option<Poly> {
    // Note: `lo`/`hi` may mention `var` itself — the summation index is a
    // bound variable, so `Σ_{i=1}^{I-1} i` (the induction idiom "value at
    // the top of iteration I") is perfectly well formed; only the summand
    // coefficients must be independent of the index.
    let var = var.to_ascii_uppercase();
    let parts = p.by_powers_of(&var)?;
    if parts.len() as u32 - 1 > MAX_POWER {
        return None;
    }
    let lo_m1 = lo.checked_sub(&Poly::int(1))?;
    let mut acc = Poly::zero();
    for (k, coeff) in parts.iter().enumerate() {
        if coeff.is_zero() {
            continue;
        }
        if coeff.mentions_var(&var) {
            return None; // var hidden in an opaque coefficient
        }
        let k = k as u32;
        let s = if k == 0 {
            // Σ 1 = hi - lo + 1
            hi.checked_sub(lo)?.checked_add(&Poly::int(1))?
        } else {
            power_sum_at(k, hi)?.checked_sub(&power_sum_at(k, &lo_m1)?)?
        };
        acc = acc.checked_add(&coeff.checked_mul(&s)?)?;
    }
    Some(acc)
}

/// Closed form of the *prefix* sum `Σ_{var=lo}^{upto-1} p(var)` — the
/// total increment accumulated by an induction variable before the
/// iteration `var = upto` begins. This is the quantity step 2 of the
/// induction algorithm needs at a loop header.
pub fn prefix_sum(p: &Poly, var: &str, lo: &Poly, upto: &Poly) -> Option<Poly> {
    let hi = upto.checked_sub(&Poly::int(1))?;
    sum_over(p, var, lo, &hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::DivPolicy;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn p(src: &str) -> Poly {
        let full = format!("program t\nx = {src}\nend\n");
        let prog = polaris_ir::parse(&full).unwrap();
        match &prog.units[0].body.0[0].kind {
            polaris_ir::StmtKind::Assign { rhs, .. } => {
                Poly::from_expr(rhs, DivPolicy::Exact).unwrap()
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn bernoulli_values() {
        let b = bernoulli_plus(6);
        assert_eq!(b[0], Rat::ONE);
        assert_eq!(b[1], Rat::new(1, 2).unwrap());
        assert_eq!(b[2], Rat::new(1, 6).unwrap());
        assert_eq!(b[3], Rat::ZERO);
        assert_eq!(b[4], Rat::new(-1, 30).unwrap());
        assert_eq!(b[6], Rat::new(1, 42).unwrap());
    }

    #[test]
    fn classic_power_sums() {
        // Σ_{i=1}^{n} i = n(n+1)/2
        assert_eq!(power_sum_at(1, &Poly::var("N")).unwrap(), p("(n*n + n)/2"));
        // Σ i^2 = n(n+1)(2n+1)/6
        assert_eq!(power_sum_at(2, &Poly::var("N")).unwrap(), p("n*(n+1)*(2*n+1)/6"));
        // Σ i^3 = (n(n+1)/2)^2
        assert_eq!(power_sum_at(3, &Poly::var("N")).unwrap(), p("(n*(n+1)/2)**2"));
    }

    #[test]
    fn sum_of_constant_is_trip_count() {
        let s = sum_over(&Poly::int(1), "K", &Poly::int(0), &p("j - 1")).unwrap();
        assert_eq!(s, p("j"));
    }

    #[test]
    fn trfd_cascaded_sum() {
        // TRFD Figure 2: X accumulates 1 per K iteration (K = 0..J-1),
        // summed over J = 0..N-1 gives (N^2 - N)/2; per outer I iteration
        // the increment is (N^2+N)/2 in the paper after J runs 0..N-1 with
        // inner trip J (i.e. Σ_{j=0}^{n-1} j = (n^2-n)/2).
        let inner = sum_over(&Poly::int(1), "K", &Poly::int(0), &p("j - 1")).unwrap();
        assert_eq!(inner, p("j"));
        let outer = sum_over(&inner, "J", &Poly::int(0), &p("n - 1")).unwrap();
        assert_eq!(outer, p("(n**2 - n)/2"));
    }

    #[test]
    fn prefix_sum_at_header() {
        // induction K=K+1 in loop I=1..: value at top of iteration i is
        // K0 + (i - 1)
        let s = prefix_sum(&Poly::int(1), "I", &Poly::int(1), &Poly::var("I")).unwrap();
        assert_eq!(s, p("i - 1"));
    }

    #[test]
    fn triangular_prefix() {
        // increment j per iteration of j from 1..i-1: prefix before j=J is
        // Σ_{j=1}^{J-1} j = (J^2-J)/2
        let s = prefix_sum(&Poly::var("J"), "J", &Poly::int(1), &Poly::var("J")).unwrap();
        assert_eq!(s, p("(j*j - j)/2"));
    }

    #[test]
    fn rejects_var_in_opaque_coefficient() {
        let f = p("z(k)"); // opaque atom mentioning K
        assert!(sum_over(&f, "K", &Poly::int(0), &Poly::int(9)).is_none());
        // opaque NOT mentioning K sums fine: Σ_{k=1}^{n} z(j) = n*z(j)
        let g = p("z(j)");
        let s = sum_over(&g, "K", &Poly::int(1), &Poly::var("N")).unwrap();
        assert_eq!(s, p("n * z(j)"));
    }

    #[test]
    fn bound_variable_in_limits_is_independent() {
        // Σ_{k=0}^{K+3} 1 = K + 4 — the summation index is bound, the K
        // in the limit is the outer K.
        let s = sum_over(&Poly::int(1), "K", &Poly::int(0), &p("k + 3")).unwrap();
        assert_eq!(s, p("k + 4"));
    }

    proptest! {
        #[test]
        fn prop_sum_matches_brute_force(a in -4i128..4, b in -4i128..4, c in -4i128..4,
                                        lo in -3i128..3, len in 0i128..8) {
            // p(v) = a*v^2 + b*v + c summed lo..hi vs brute force
            let f = Poly::var("V").checked_pow(2).unwrap().checked_scale(Rat::int(a)).unwrap()
                .checked_add(&Poly::var("V").checked_scale(Rat::int(b)).unwrap()).unwrap()
                .checked_add(&Poly::int(c)).unwrap();
            let hi = lo + len - 1;
            let closed = sum_over(&f, "V", &Poly::int(lo), &Poly::int(hi)).unwrap();
            let expect: i128 = (lo..=hi).map(|v| a*v*v + b*v + c).sum();
            prop_assert_eq!(closed.as_constant().unwrap(), Rat::int(expect));
        }

        #[test]
        fn prop_symbolic_upper_bound_matches(a in -3i128..4, b in -3i128..4, n in 0i128..12) {
            // Σ_{v=1}^{N} (a*v + b) evaluated at N=n equals brute force
            let f = Poly::var("V").checked_scale(Rat::int(a)).unwrap()
                .checked_add(&Poly::int(b)).unwrap();
            let closed = sum_over(&f, "V", &Poly::int(1), &Poly::var("N")).unwrap();
            let env = BTreeMap::from([("N".to_string(), Rat::int(n))]);
            let got = closed.eval(&env).unwrap();
            let expect: i128 = (1..=n).map(|v| a*v + b).sum();
            prop_assert_eq!(got, Rat::int(expect));
        }

        #[test]
        fn prop_cubic_power_sum(k in 1u32..6, n in 0i128..10) {
            let closed = power_sum_at(k, &Poly::var("N")).unwrap();
            let env = BTreeMap::from([("N".to_string(), Rat::int(n))]);
            let got = closed.eval(&env).unwrap();
            let expect: i128 = (1..=n).map(|i| i.pow(k)).sum();
            prop_assert_eq!(got, Rat::int(expect));
        }
    }
}

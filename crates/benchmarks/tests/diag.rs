//! Diagnostic (run with --nocapture): per-benchmark compiler decisions
//! and simulated speedups for both pipelines.
use polaris_core::PassOptions;
use polaris_machine::{run, run_serial, CodegenModel, MachineConfig};

#[test]
#[ignore]
fn diag_all() {
    for b in polaris_benchmarks::all().into_iter().chain([polaris_benchmarks::track()]) {
        let mut pol = b.program();
        let rep_p = polaris_core::compile(&mut pol, &PassOptions::polaris()).unwrap();
        let mut vfa = b.program();
        let rep_v = polaris_core::compile(&mut vfa, &PassOptions::vfa()).unwrap();
        let serial = run_serial(&b.program()).unwrap();
        let rp = run(&pol, &MachineConfig::challenge_8()).unwrap();
        let rv = run(&vfa, &MachineConfig::challenge_8().with_codegen(CodegenModel::aggressive())).unwrap();
        let sp = serial.cycles as f64 / rp.cycles as f64;
        let sv = serial.cycles as f64 / rv.cycles as f64;
        println!("=== {} serial={}Mcy polaris={:.2}x vfa={:.2}x", b.name, serial.cycles/1_000_000, sp, sv);
        assert_eq!(serial.output, rp.output, "{} polaris output", b.name);
        assert_eq!(serial.output, rv.output, "{} vfa output", b.name);
        for l in &rep_p.loops {
            println!("  P {} par={} spec={} priv={:?} red={:?} reason={:?}", l.label, l.parallel, l.speculative, l.private, l.reductions, l.serial_reason);
        }
        for l in &rep_v.loops {
            println!("  V {} par={} reason={:?}", l.label, l.parallel, l.serial_reason);
        }
        let mut hot: Vec<_> = rp.loops.iter().collect();
        hot.sort_by_key(|(_, s)| std::cmp::Reverse(s.cycles));
        for (lbl, st) in hot.iter().take(4) {
            println!("  cycles {} {} par_inv={} spec={}/{}", lbl, st.cycles, st.parallel_invocations, st.spec_success, st.spec_fail);
        }
    }
}

#[test]
fn ablated_induction_config_is_sound() {
    // The "generalized induction OFF" ablation produced a *higher* TRFD
    // speedup (cheap unexpanded subscripts + reduction-handled lastvalue);
    // make sure that configuration is semantically sound.
    let b = polaris_benchmarks::by_name("TRFD").unwrap();
    let mut opts = polaris_core::PassOptions::polaris();
    opts.induction = polaris_core::InductionMode::Simple;
    let mut p = b.program();
    let rep = polaris_core::compile(&mut p, &opts).unwrap();
    for l in &rep.loops { println!("{} par={} red={:?} reason={:?}", l.label, l.parallel, l.reductions, l.serial_reason); }
    polaris_machine::run_validated(&p, &polaris_machine::MachineConfig::challenge_8()).unwrap();
}

//! The evaluation-suite correctness tests:
//!
//! 1. every kernel compiles under both pipelines,
//! 2. both outputs produce the *same results* as the original program
//!    on the simulated machine,
//! 3. the machine's adversarial validation (reverse-order execution with
//!    real privatization/reduction semantics) passes for both outputs —
//!    i.e. the compilers' parallelization claims are semantically sound,
//! 4. the per-benchmark capability expectations behind Figure 7 hold
//!    (who parallelizes the hot loops), without asserting exact speedups.

use polaris_benchmarks::{all, track, Benchmark, Expectation};
use polaris_core::{compile, PassOptions};
use polaris_machine::{run, run_serial, run_validated, CodegenModel, MachineConfig};

fn compiled(b: &Benchmark, opts: &PassOptions) -> (polaris_ir::Program, polaris_core::CompileReport) {
    let mut p = b.program();
    let rep = compile(&mut p, opts).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    (p, rep)
}

#[test]
fn outputs_match_serial_reference() {
    for b in all().into_iter().chain([track()]) {
        let reference = run_serial(&b.program()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(!reference.output.is_empty(), "{} produced no output", b.name);

        let (pol, _) = compiled(&b, &PassOptions::polaris());
        let rp = run(&pol, &MachineConfig::challenge_8()).unwrap();
        assert_eq!(reference.output, rp.output, "{}: polaris output differs", b.name);

        let (vfa, _) = compiled(&b, &PassOptions::vfa());
        let rv = run(
            &vfa,
            &MachineConfig::challenge_8().with_codegen(CodegenModel::aggressive()),
        )
        .unwrap();
        assert_eq!(reference.output, rv.output, "{}: vfa output differs", b.name);
    }
}

#[test]
fn adversarial_validation_passes_for_both_compilers() {
    for b in all().into_iter().chain([track()]) {
        let (pol, _) = compiled(&b, &PassOptions::polaris());
        run_validated(&pol, &MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("{} (polaris): {e}", b.name));
        let (vfa, _) = compiled(&b, &PassOptions::vfa());
        run_validated(&vfa, &MachineConfig::challenge_8())
            .unwrap_or_else(|e| panic!("{} (vfa): {e}", b.name));
    }
}

#[test]
fn speedup_shape_matches_figure7() {
    // Coarse shape assertions, not absolute numbers: Polaris must beat
    // the baseline clearly on its headline codes, both must do well on
    // the linear codes, and the flat codes must stay near 1.
    for b in all() {
        let serial = run_serial(&b.program()).unwrap();
        let (pol, _) = compiled(&b, &PassOptions::polaris());
        let rp = run(&pol, &MachineConfig::challenge_8()).unwrap();
        let (vfa, _) = compiled(&b, &PassOptions::vfa());
        let rv = run(
            &vfa,
            &MachineConfig::challenge_8().with_codegen(CodegenModel::aggressive()),
        )
        .unwrap();
        let sp = serial.cycles as f64 / rp.cycles as f64;
        let sv = serial.cycles as f64 / rv.cycles as f64;
        match b.expectation {
            Expectation::PolarisWins => {
                assert!(sp > 3.0, "{}: polaris speedup {sp:.2} too low", b.name);
                assert!(sp > 1.15 * sv, "{}: polaris {sp:.2} should beat vfa {sv:.2}", b.name);
            }
            Expectation::PolarisRuntime => {
                assert!(sp > 2.0, "{}: polaris speedup {sp:.2} too low", b.name);
                assert!(sp > sv, "{}: polaris {sp:.2} should beat vfa {sv:.2}", b.name);
            }
            Expectation::BothGood => {
                assert!(sp > 3.0, "{}: polaris speedup {sp:.2} too low", b.name);
                assert!(sv > 3.0, "{}: vfa speedup {sv:.2} too low", b.name);
            }
            Expectation::BothFlat => {
                assert!(sp < 2.0 && sv < 2.0, "{}: expected near-1, got {sp:.2}/{sv:.2}", b.name);
                assert!(sp > 0.6 && sv > 0.6, "{}: pathological slowdown {sp:.2}/{sv:.2}", b.name);
            }
        }
    }
}

#[test]
fn hot_loop_capability_split() {
    // The specific per-technique claims of the paper, checked on the
    // actual compiler decisions.
    let check = |name: &str, frag: &str, pol_parallel: bool, vfa_parallel: bool| {
        let b = polaris_benchmarks::by_name(name).unwrap();
        let (_, rp) = compiled(&b, &PassOptions::polaris());
        let (_, rv) = compiled(&b, &PassOptions::vfa());
        let lp = rp
            .loop_report(frag)
            .unwrap_or_else(|| panic!("{name}: no loop {frag} in {:?}", rp.loops));
        let lv = rv.loop_report(frag).unwrap();
        assert_eq!(
            lp.parallel || lp.speculative,
            pol_parallel,
            "{name} {frag} polaris: {lp:?}"
        );
        assert_eq!(lv.parallel || lv.speculative, vfa_parallel, "{name} {frag} vfa: {lv:?}");
    };
    // TRFD outer I loop (Figure 2): do21 in the kernel.
    check("TRFD", "do21", true, false);
    // OCEAN outer K loop (Figure 3): needs the permuted range test.
    check("OCEAN", "do30", true, false);
    // BDNA outer I loop (Figure 5): compaction + array privatization.
    check("BDNA", "do21", true, false);
    // MDG pair loop: histogram reductions.
    check("MDG", "do17", true, false);
    // WAVE5 scatter: run-time test for Polaris only.
    check("WAVE5", "do23", true, false);
    // APPLU wavefront: serial for both.
    check("APPLU", "do25", false, false);
}

#[test]
fn track_is_partially_parallel_at_runtime() {
    let b = track();
    let (pol, rep) = compiled(&b, &PassOptions::polaris());
    assert!(rep.speculative_loops() >= 1, "{:#?}", rep.loops);
    let r = run(&pol, &MachineConfig::challenge_8()).unwrap();
    let spec: Vec<_> = r.loops.values().filter(|s| s.spec_success + s.spec_fail > 0).collect();
    assert_eq!(spec.len(), 1, "{:?}", r.loops);
    assert_eq!(spec[0].spec_success, 9, "90% of invocations parallel");
    assert_eq!(spec[0].spec_fail, 1, "1 of 10 invocations collides");
}

//! Fault-injection sweep over the evaluation suite: a panic is injected
//! into each pipeline stage in turn, for every kernel, and the compiler
//! must (a) survive, (b) roll the faulted stage back to its pre-stage
//! snapshot, (c) keep the IR valid, and (d) still emit a program whose
//! parallel execution matches the untransformed serial reference. This
//! is the acceptance gate for the fault-isolating pipeline: one broken
//! pass degrades the optimization level, never the answer.

use polaris_benchmarks::{all, track};
use polaris_core::pipeline::{FaultPlan, STAGE_NAMES};
use polaris_core::{compile, PassOptions, StageOutcome};
use polaris_machine::{run, run_serial, MachineConfig, Schedule};

#[test]
fn every_stage_fault_degrades_gracefully_on_every_kernel() {
    for b in all().into_iter().chain([track()]) {
        let reference = run_serial(&b.program()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        for stage in STAGE_NAMES {
            let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in(stage));
            let mut p = b.program();
            let report = compile(&mut p, &opts).unwrap_or_else(|e| {
                panic!("{}: fault in {stage} escaped the pipeline: {e}", b.name)
            });

            // The faulted stage must be individually rolled back…
            let sr = report
                .stage(stage)
                .unwrap_or_else(|| panic!("{}: no stage report for {stage}", b.name));
            assert!(
                matches!(sr.outcome, StageOutcome::RolledBack { .. }),
                "{}: stage {stage} outcome was {:?}, expected RolledBack",
                b.name,
                sr.outcome
            );
            assert!(report.degraded(), "{}: report not degraded for {stage}", b.name);

            // …leaving a valid program…
            polaris_ir::validate::validate_program(&p)
                .unwrap_or_else(|e| panic!("{}: invalid IR after fault in {stage}: {e}", b.name));

            // …whose parallel execution is still semantics-preserving.
            let parallel = run(&p, &MachineConfig::challenge_8()).unwrap_or_else(|e| {
                panic!("{}: degraded program failed to run after fault in {stage}: {e}", b.name)
            });
            assert_eq!(
                reference.output, parallel.output,
                "{}: output diverged after fault in {stage}",
                b.name
            );
        }
    }
}

/// The same 8-stage × 17-kernel sweep under the *real-thread* execution
/// backend. A degraded program handed to worker threads must either run
/// to serial-identical checksums (the tree-merged reductions make the
/// comparison exact) or fail with a clean `MachineError` — the
/// documented exit-code-1 fallback — never a panic, a hang, or a wrong
/// answer.
#[test]
fn every_stage_fault_degrades_gracefully_under_threaded_execution() {
    for b in all().into_iter().chain([track()]) {
        let reference = run_serial(&b.program()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        for stage in STAGE_NAMES {
            let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in(stage));
            let mut p = b.program();
            let report = compile(&mut p, &opts).unwrap_or_else(|e| {
                panic!("{}: fault in {stage} escaped the pipeline: {e}", b.name)
            });
            assert!(report.degraded(), "{}: report not degraded for {stage}", b.name);
            polaris_ir::validate::validate_program(&p)
                .unwrap_or_else(|e| panic!("{}: invalid IR after fault in {stage}: {e}", b.name));

            match run(&p, &MachineConfig::threaded(4, Schedule::Static)) {
                Ok(threaded) => assert_eq!(
                    reference.output, threaded.output,
                    "{}: threaded output diverged after fault in {stage}",
                    b.name
                ),
                // Clean fallback: a typed machine error (exit code 1 at
                // the CLI), never a wrong answer. Nothing in the current
                // suite takes this path, but it is the documented
                // contract for degraded programs the backend rejects.
                Err(e) => eprintln!("{}: clean threaded fallback after {stage}: {e}", b.name),
            }
        }
    }
}

#[test]
fn unit_scoped_faults_only_fire_on_matching_units() {
    let b = polaris_benchmarks::by_name("trfd").expect("TRFD in suite");
    // A fault targeted at a unit that does not exist must be inert.
    let opts = PassOptions::polaris()
        .with_faults(FaultPlan::panic_in_unit("induction", "NO_SUCH_UNIT"));
    let mut p = b.program();
    let report = compile(&mut p, &opts).unwrap();
    assert!(!report.degraded(), "fault on absent unit should not fire");

    // Targeted at the real main unit it must fire and roll back.
    let unit = b.program().units[0].name.clone();
    let opts = PassOptions::polaris().with_faults(FaultPlan::panic_in_unit("induction", unit));
    let mut p = b.program();
    let report = compile(&mut p, &opts).unwrap();
    assert!(report.rolled_back_stages().contains(&"induction"));
}

#[test]
fn multiple_simultaneous_faults_are_each_isolated() {
    let b = polaris_benchmarks::by_name("tomcatv").expect("TOMCATV in suite");
    let reference = run_serial(&b.program()).unwrap();
    let opts = PassOptions::polaris().with_faults(
        FaultPlan::panic_in("inline").and_panic_in("induction").and_panic_in("reduction"),
    );
    let mut p = b.program();
    let report = compile(&mut p, &opts).unwrap();
    let rolled = report.rolled_back_stages();
    for s in ["inline", "induction", "reduction"] {
        assert!(rolled.contains(&s), "{s} not rolled back: {rolled:?}");
    }
    let parallel = run(&p, &MachineConfig::challenge_8()).unwrap();
    assert_eq!(reference.output, parallel.output);
}

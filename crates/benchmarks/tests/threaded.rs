//! Acceptance test for the real-thread execution backend: every
//! benchmark kernel (the sixteen Figure-7 codes plus TRACK) must
//! produce **identical checksums** under `ExecMode::Threaded{procs: 8}`
//! and serial execution.
//!
//! The checksum lines every kernel prints are REALs formatted at 1e-6
//! precision; the chunk-ordered tree merge keeps reduction roundoff
//! orders of magnitude below that, so the comparison is exact string
//! equality — any divergence (lost update, racy merge, wrong
//! privatization) fails loudly.

use polaris_benchmarks::{all, track, Benchmark};
use polaris_core::{compile, PassOptions};
use polaris_machine::{run, run_serial, MachineConfig, Schedule};

fn polaris_compiled(b: &Benchmark) -> polaris_ir::Program {
    let mut p = b.program();
    compile(&mut p, &PassOptions::polaris()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    p
}

#[test]
fn all_17_kernels_identical_checksums_threaded_8() {
    for b in all().into_iter().chain([track()]) {
        let reference = run_serial(&b.program()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let pol = polaris_compiled(&b);
        let threaded = run(&pol, &MachineConfig::threaded(8, Schedule::Static))
            .unwrap_or_else(|e| panic!("{} (threaded): {e}", b.name));
        assert_eq!(
            reference.output, threaded.output,
            "{}: threaded checksums diverge from serial",
            b.name
        );
    }
}

#[test]
fn kernels_identical_checksums_under_self_scheduling() {
    for b in all().into_iter().chain([track()]) {
        let reference = run_serial(&b.program()).unwrap();
        let pol = polaris_compiled(&b);
        let threaded = run(&pol, &MachineConfig::threaded(8, Schedule::Dynamic { chunk: 4 }))
            .unwrap_or_else(|e| panic!("{} (dynamic): {e}", b.name));
        assert_eq!(
            reference.output, threaded.output,
            "{}: self-scheduled checksums diverge from serial",
            b.name
        );
    }
}

#[test]
fn kernels_deterministic_across_repeated_threaded_runs() {
    // Run a reduction-heavy subset repeatedly: results must be
    // bit-identical run to run even though thread interleaving differs.
    for name in ["MDG", "HYDRO2D", "TFFT2"] {
        let b = polaris_benchmarks::by_name(name)
            .unwrap_or_else(|| panic!("{name} missing from the suite"));
        let pol = polaris_compiled(&b);
        let cfg = MachineConfig::threaded(8, Schedule::Dynamic { chunk: 2 });
        let first = run(&pol, &cfg).unwrap();
        for round in 0..3 {
            let again = run(&pol, &cfg).unwrap();
            assert_eq!(first.output, again.output, "{name} round {round} diverged");
        }
    }
}

//! # polaris-benchmarks — the evaluation suite
//!
//! Mini-application kernels standing in for the 16 codes of the paper's
//! Table 1 plus TRACK (Figure 6). Each kernel is written in F-Mini and
//! reproduces the *loop idioms* the paper reports for its code — the
//! quantities that drive Figure 7 (see DESIGN.md for the substitution
//! argument and `EXPERIMENTS.md` for paper-vs-measured).
//!
//! Every kernel prints a checksum, which the test suite uses to verify
//! that both compilers' outputs compute the same result as the original
//! program, and that the machine's adversarial validation passes.

use polaris_ir::Program;

/// Where the original code came from (Table 1's "Origin" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    Perfect,
    Spec,
    Ncsa,
    /// Synthetic irregular kernel (not in Table 1): exercises the
    /// subscripted-subscript tiers — static property proof vs LRPD.
    Kernel,
}

impl Origin {
    pub fn label(self) -> &'static str {
        match self {
            Origin::Perfect => "PERFECT",
            Origin::Spec => "SPEC",
            Origin::Ncsa => "NCSA",
            Origin::Kernel => "KERNEL",
        }
    }
}

/// What the paper's Figure 7 shape expects of each code, used by the
/// test suite as a coarse oracle on compiler behaviour (not on exact
/// speedup values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Polaris clearly ahead (its headline techniques gate the hot loop).
    PolarisWins,
    /// Both do well (linear code); PFA's back end may give it the edge.
    BothGood,
    /// Both stuck near 1 (no exploitable parallelism).
    BothFlat,
    /// Polaris wins through the run-time (LRPD) test.
    PolarisRuntime,
}

/// One benchmark kernel.
#[derive(Debug, Clone)]
pub struct Benchmark {
    pub name: &'static str,
    pub origin: Origin,
    pub source: &'static str,
    /// Lines of code the *paper* reports for the full application.
    pub paper_loc: u32,
    /// Serial time (seconds) the paper reports.
    pub paper_serial_s: f64,
    /// Which technique gates the hot loop (documentation + reports).
    pub hot_idiom: &'static str,
    pub expectation: Expectation,
}

impl Benchmark {
    /// Parse the kernel into IR.
    pub fn program(&self) -> Program {
        polaris_ir::parse(self.source)
            .unwrap_or_else(|e| panic!("benchmark {} does not parse: {e}", self.name))
    }

    /// Lines of code of *our* kernel.
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

macro_rules! bench {
    ($name:literal, $file:literal, $origin:expr, $loc:expr, $ser:expr, $idiom:literal, $exp:expr) => {
        Benchmark {
            name: $name,
            origin: $origin,
            source: include_str!(concat!("../codes/", $file)),
            paper_loc: $loc,
            paper_serial_s: $ser,
            hot_idiom: $idiom,
            expectation: $exp,
        }
    };
}

/// The sixteen Table-1 codes, in the paper's order.
pub fn all() -> Vec<Benchmark> {
    use Expectation::*;
    use Origin::*;
    vec![
        bench!("APPLU", "applu.f", Spec, 3870, 1203.0, "wavefront recurrence (serial)", BothFlat),
        bench!("APPSP", "appsp.f", Spec, 4439, 1241.0, "parallel systems, conditional bodies", BothGood),
        bench!("ARC2D", "arc2d.f", Perfect, 4694, 215.0, "dense linear sweeps", BothGood),
        bench!("BDNA", "bdna.f", Perfect, 4887, 56.0, "compaction idiom + array privatization", PolarisWins),
        bench!("CMHOG", "cmhog.f", Ncsa, 11826, 2333.0, "privatized flux row", PolarisWins),
        bench!("CLOUD3D", "cloud3d.f", Ncsa, 9813, 20404.0, "column recurrences, tiny loops", BothFlat),
        bench!("FLO52", "flo52.f", Perfect, 2370, 38.0, "dense linear smoothing", BothGood),
        bench!("HYDRO2D", "hydro2d.f", Spec, 4292, 1474.0, "privatized work row + MAX reduction", PolarisWins),
        bench!("MDG", "mdg.f", Perfect, 1430, 178.0, "histogram reductions", PolarisWins),
        bench!("OCEAN", "ocean.f", Perfect, 3288, 118.0, "range test with loop permutation (Fig. 3)", PolarisWins),
        bench!("SU2COR", "su2cor.f", Spec, 2332, 779.0, "generalized (cross-loop) induction", PolarisWins),
        bench!("SWIM", "swim.f", Spec, 429, 1106.0, "privatized flux row", PolarisWins),
        bench!("TFFT2", "tfft2.f", Spec, 642, 946.0, "workspace privatization (declared-bounds)", PolarisWins),
        bench!("TOMCATV", "tomcatv.f", Spec, 190, 1327.0, "parallel sweeps, conditional bodies", BothGood),
        bench!("TRFD", "trfd.f", Perfect, 580, 20.0, "cascaded induction + range test (Fig. 2)", PolarisWins),
        bench!("WAVE5", "wave5.f", Spec, 7764, 788.0, "subscripted subscripts -> LRPD", PolarisRuntime),
    ]
}

/// The TRACK kernel (Figure 6's NLFILT/300 loop).
pub fn track() -> Benchmark {
    bench!(
        "TRACK",
        "track.f",
        Origin::Perfect,
        3700,
        30.0,
        "partially parallel loop, PD test (Fig. 6)",
        Expectation::PolarisRuntime
    )
}

/// The six irregular-subscript kernels (not part of Table 1), each
/// paired with the execution tier the compiler must land it in:
/// `"static"` — the loop nest is proved parallel at compile time
/// (directly, via array reduction validation, or via the index-array
/// property pass) — or `"lrpd"` — the hot loop ships as a run-time
/// speculation instead of serializing.
pub fn irregular() -> Vec<(Benchmark, &'static str)> {
    use Expectation::*;
    use Origin::*;
    vec![
        (
            bench!("SPMV", "spmv.f", Kernel, 0, 0.0, "CSR row loop, read-only indirection", PolarisWins),
            "static",
        ),
        (
            bench!("HISTO", "histo.f", Kernel, 0, 0.0, "indirect histogram reduction", PolarisWins),
            "static",
        ),
        (
            bench!("GATHER", "gather.f", Kernel, 0, 0.0, "scatter through affine permutation (idxprop)", PolarisWins),
            "static",
        ),
        (
            bench!("PREFIX", "prefix.f", Kernel, 0, 0.0, "prefix-sum fill + scatter (idxprop)", PolarisWins),
            "static",
        ),
        (
            bench!("BUCKET", "bucket.f", Kernel, 0, 0.0, "MOD-keyed scatter -> LRPD", PolarisRuntime),
            "lrpd",
        ),
        (
            bench!("COMPACT", "compact.f", Kernel, 0, 0.0, "conditional compaction scatter -> LRPD", PolarisRuntime),
            "lrpd",
        ),
    ]
}

/// The skewed-cost kernel: a triangular CSR sparse matrix-vector
/// product whose row loop is provably parallel but whose per-row cost
/// grows linearly across the iteration space. Block partitioning leaves
/// the last processor with ~2x the average work; the adaptive
/// dispatcher should measure the imbalance and re-dispatch the loop to
/// work-stealing chunking.
pub fn skewed() -> Benchmark {
    bench!(
        "SPMVT",
        "spmvt.f",
        Origin::Kernel,
        0,
        0.0,
        "triangular CSR rows, skewed per-row cost -> work stealing",
        Expectation::PolarisWins
    )
}

/// The two locality-bound kernels driving the nest-transformation
/// stages, each paired with the transformation the compiler is expected
/// to apply under a legality certificate: `"interchange"` — the nest is
/// rewritten to a provably-legal loop order with a better stride
/// profile — or `"tile"` — the fully permutable stencil band is
/// rectangularly tiled (STENCIL2D's tail loops additionally fuse).
pub fn locality() -> Vec<(Benchmark, &'static str)> {
    use Expectation::*;
    use Origin::*;
    vec![
        (
            bench!("MMT", "mmt.f", Kernel, 0, 0.0, "transposed matmul -> loop interchange", BothGood),
            "interchange",
        ),
        (
            bench!("STENCIL2D", "stencil2d.f", Kernel, 0, 0.0, "5-point stencil -> rectangular tiling (+ tail fusion)", BothGood),
            "tile",
        ),
    ]
}

/// Look a benchmark up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    let upper = name.to_ascii_uppercase();
    if upper == "TRACK" {
        return Some(track());
    }
    if upper == "SPMVT" {
        return Some(skewed());
    }
    all()
        .into_iter()
        .find(|b| b.name == upper)
        .or_else(|| irregular().into_iter().map(|(b, _)| b).find(|b| b.name == upper))
        .or_else(|| locality().into_iter().map(|(b, _)| b).find(|b| b.name == upper))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_parse_and_validate() {
        let benches = all();
        assert_eq!(benches.len(), 16);
        for b in &benches {
            let p = b.program();
            polaris_ir::validate::validate_program(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(b.loc() > 20, "{} suspiciously small", b.name);
        }
        let t = track();
        polaris_ir::validate::validate_program(&t.program()).unwrap();
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("trfd").is_some());
        assert!(by_name("TRACK").is_some());
        assert!(by_name("spmv").is_some());
        assert!(by_name("spmvt").is_some());
        assert!(by_name("COMPACT").is_some());
        assert!(by_name("mmt").is_some());
        assert!(by_name("STENCIL2D").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn skewed_kernel_parses_and_validates() {
        let b = skewed();
        let p = b.program();
        polaris_ir::validate::validate_program(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(b.origin, Origin::Kernel);
    }

    #[test]
    fn locality_kernels_parse_and_name_their_transformation() {
        let kernels = locality();
        assert_eq!(kernels.len(), 2);
        for (b, xform) in &kernels {
            let p = b.program();
            polaris_ir::validate::validate_program(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(matches!(*xform, "interchange" | "tile"), "{}: {xform}", b.name);
            assert_eq!(b.origin, Origin::Kernel, "{}", b.name);
        }
    }

    #[test]
    fn irregular_kernels_parse_and_have_sane_tiers() {
        let kernels = irregular();
        assert_eq!(kernels.len(), 6);
        for (b, tier) in &kernels {
            let p = b.program();
            polaris_ir::validate::validate_program(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(matches!(*tier, "static" | "lrpd"), "{}: tier {tier}", b.name);
            assert_eq!(b.origin, Origin::Kernel, "{}", b.name);
        }
        let statics = kernels.iter().filter(|(_, t)| *t == "static").count();
        assert!(statics >= 3, "at least 3 of 6 kernels must be static, got {statics}");
    }
}

program stencil2d
! STENCIL2D kernel: 5-point Jacobi-style stencil over a 34x34 grid with
! a 32x32 interior. Each interior point re-reads its four neighbours, so
! consecutive iterations share cache lines in both directions — the
! stencil-reuse pattern rectangular tiling pays off on. The interior
! trip counts (32) divide the tile size (8) exactly, so the point loops
! keep affine bounds and every downstream analysis still applies. The
! two tail loops over S1/S2 are a conformable producer/consumer pair the
! fuse stage merges under a fusion certificate. Grid values are
! integer-valued so any legal reordering is bit-exact.
      integer n, nk
      parameter (n = 34, nk = 64)
      real a(34,34), b(34,34)
      real s1(64), s2(64)
      real csum

      do j0 = 1, n
        do i0 = 1, n
          a(i0,j0) = mod(i0*3 + j0*7, 13) * 1.0
          b(i0,j0) = 0.0
        end do
      end do

      do j = 2, 33
        do i = 2, 33
          b(i,j) = a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1)
        end do
      end do

      do k = 1, nk
        s1(k) = mod(k*5, 11) * 1.0
      end do
      do k = 1, nk
        s2(k) = s1(k) * 2.0 + mod(k, 3) * 1.0
      end do

      csum = 0.0
      do jj = 1, n
        do ii = 1, n
          csum = csum + b(ii,jj)
        end do
      end do
      do kk = 1, nk
        csum = csum + s2(kk)
      end do
      print *, 'stencil2d checksum', csum
      end

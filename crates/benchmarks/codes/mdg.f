program mdg
! MDG kernel: pairwise molecular forces. The force array F is updated
! through histogram (single-address and pair-symmetric) reductions:
! only a compiler that parallelizes ARRAY reductions can run the outer
! loop concurrently.
      integer nm
      parameter (nm = 150)
      real x(nm), f(nm)
      real rs, gg, eps, fsum

      eps = 0.01
      do i0 = 1, nm
        x(i0) = i0*0.37
        f(i0) = 0.0
      end do

      do i = 1, nm
        do j = 1, nm
          rs = x(i) - x(j)
          gg = rs/(rs*rs + eps)
          f(i) = f(i) + gg
          f(j) = f(j) - gg
        end do
      end do

      fsum = 0.0
      do ii = 1, nm
        fsum = fsum + f(ii)*f(ii)
      end do
      print *, 'mdg checksum', fsum
      end

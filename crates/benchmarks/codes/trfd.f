program trfd
! TRFD kernel: integral transformation (the paper's OLDA/100 nest,
! Figure 2). Cascaded induction variables X0 -> X feed a triangular
! loop nest; after substitution the subscript of A is nonlinear in the
! loop indices and only the range test can prove the outer loop
! parallel. Roughly 70% of TRFD's serial time lives here.
      integer m, n, nvir
      parameter (m = 60, n = 48)
      parameter (nvir = m*(n**2 + n)/2)
      real a(nvir), v(n, n)
      integer x, x0
      real xsum

      do i0 = 1, n
        do j0 = 1, n
          v(i0, j0) = 1.0/(i0 + j0)
        end do
      end do

      x0 = 0
      do i = 0, m - 1
        x = x0
        do j = 0, n - 1
          do k = 0, j - 1
            x = x + 1
            a(x) = v(j + 1, k + 1)*2.0 + v(k + 1, j + 1)
          end do
        end do
        x0 = x0 + (n**2 + n)/2
      end do

      xsum = 0.0
      do ii = 1, nvir
        xsum = xsum + a(ii)
      end do
      print *, 'trfd checksum', xsum
      end

program wave5
! WAVE5 kernel: a particle-in-cell scatter through a runtime index
! array. No compile-time test can disambiguate V(IPOS(P)); Polaris
! parallelizes it speculatively with the PD test (the indices happen to
! form a permutation, so speculation succeeds every time).
      integer ng, nsteps
      parameter (ng = 2048, nsteps = 3)
      real v(ng), e(ng), q(ng)
      integer p
      integer ipos(ng)
      real csum

      do i0 = 1, ng
        q(i0) = 1.0 + mod(i0, 3)*0.1
        v(i0) = 0.0
        ipos(i0) = mod(i0*77, ng) + 1
      end do

      do nc = 1, nsteps
        do i = 1, ng
          e(i) = 0.5*q(i) + 0.001*i + nc*0.01
        end do
        do p = 1, ng
          v(ipos(p)) = e(p)*q(p) + nc*0.5
        end do
      end do

      csum = 0.0
      do ii = 1, ng
        csum = csum + v(ii)
      end do
      print *, 'wave5 checksum', csum
      end

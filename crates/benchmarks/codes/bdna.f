program bdna
! BDNA kernel: the ACTFOR compaction idiom of Figure 5. The outer I
! loop needs array privatization of A and IND, where the use A(IND(L))
! is bounded through the recognized counter/index-array idiom.
      integer n
      parameter (n = 220)
      real a(n), x(n, n), y(n, n)
      integer ind(n), p, m
      real r, w, rcuts, z, fsum

      w = 0.05
      rcuts = 0.9
      z = 1.5
      do i0 = 1, n
        do j0 = 1, n
          x(i0, j0) = 1.0/(i0 + 2*j0)
          y(i0, j0) = 1.0/(2*i0 + j0)
        end do
      end do

      do i = 2, n
        do j = 1, i - 1
          ind(j) = 0
          a(j) = x(i, j) - y(i, j)
          r = a(j) + w
          if (r .lt. rcuts) ind(j) = 1
        end do
        p = 0
        do k = 1, i - 1
          if (ind(k) .ne. 0) then
            p = p + 1
            ind(p) = k
          end if
        end do
        do l = 1, p
          m = ind(l)
          x(i, l) = a(m) + z
        end do
      end do

      fsum = 0.0
      do ii = 1, n
        fsum = fsum + x(n, ii)
      end do
      print *, 'bdna checksum', fsum
      end

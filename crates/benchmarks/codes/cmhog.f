program cmhog
! CMHOG kernel: ideal-gas flux sweep with a privatized flux row per
! column slice -- array privatization gates the outer loop; the inner
! loops stay linear so the baseline still extracts some parallelism.
      integer nj, nk
      parameter (nj = 400, nk = 300)
      real q(nj, nk)
      real w(nj)
      real csum

      do k0 = 1, nk
        do j0 = 1, nj
          q(j0, k0) = 1.0 + 0.01*mod(j0 + k0, 13)
        end do
      end do

      do k = 1, nk
        do j = 1, nj
          w(j) = q(j, k)*1.02 + 0.3
        end do
        do j = 2, nj - 1
          q(j, k) = q(j, k) - 0.02*(w(j + 1) - w(j - 1))
        end do
      end do

      csum = 0.0
      do kk = 1, nk
        csum = csum + q(3, kk)
      end do
      print *, 'cmhog checksum', csum
      end

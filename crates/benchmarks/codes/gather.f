program gather
! GATHER kernel: neighbor gather stored through a reversal
! permutation. The ORD fill is affine with slope -1, so the property
! pass proves ORD strictly decreasing, injective, and a permutation;
! the store loop is parallel at compile time through that fact alone.
      integer n
      parameter (n = 1024)
      real x(1024), y(1024)
      integer ord(1024)
      real csum

      do i0 = 1, n
        x(i0) = 0.25*i0 + mod(i0, 5)*0.5
      end do
      do i = 1, n
        ord(i) = n + 1 - i
      end do

      do i = 1, n
        y(ord(i)) = (x(i) + x(mod(i, n) + 1))*0.5
      end do

      csum = 0.0
      do ii = 1, n
        csum = csum + y(ii)
      end do
      print *, 'gather checksum', csum
      end

program spmvt
! SPMVT kernel: sparse matrix-vector product over the lower triangle in
! CSR form — row i carries exactly i nonzeros, so per-row cost grows
! linearly across the iteration space. The row loop is provably parallel
! (read-only indirection plus a privatized accumulator, each row writes
! its own Y element) but its cost profile is maximally skewed: a block
! partition hands the last processor ~2x the average work, which is the
! case work-stealing chunking exists for.
      integer n, nz
      parameter (n = 128, nz = 8256)
      real a(8256), x(128), y(128)
      integer col(8256), rowptr(129)
      real s, csum

      do i0 = 1, n
        x(i0) = 1.0 + mod(i0, 7)*0.25
        rowptr(i0) = (i0 - 1)*i0/2 + 1
      end do
      rowptr(n + 1) = n*(n + 1)/2 + 1
      do k0 = 1, nz
        a(k0) = mod(k0, 5)*0.5 + 0.1
        col(k0) = mod(k0*13, n) + 1
      end do

      do i = 1, n
        s = 0.0
        do k = rowptr(i), rowptr(i + 1) - 1
          s = s + a(k)*x(col(k))
        end do
        y(i) = s
      end do

      csum = 0.0
      do ii = 1, n
        csum = csum + y(ii)*y(ii)
      end do
      print *, 'spmvt checksum', csum
      end

program bucket
! BUCKET kernel: the scatter phase of a bucket sort. The slot array is
! computed with MOD, so the property pass can only bound it — not
! prove it injective — and the store loop ships as an LRPD
! speculation. The multiplier is coprime with N, so at run time the
! slots form a permutation and the speculation commits.
      integer n
      parameter (n = 1024)
      real v(1024), out(1024)
      integer slot(1024)
      real csum

      do i0 = 1, n
        v(i0) = 0.3 + mod(i0, 13)*0.25
        out(i0) = 0.0
      end do
      do i = 1, n
        slot(i) = mod(i*77, n) + 1
      end do

      do i = 1, n
        out(slot(i)) = v(i)*1.5 + 0.5
      end do

      csum = 0.0
      do ii = 1, n
        csum = csum + out(ii)*out(ii)
      end do
      print *, 'bucket checksum', csum
      end

program cloud3d
! CLOUD3D kernel: atmospheric convection column physics. The column
! microphysics is a genuine recurrence (serial for everyone) and the
! per-level loops are too small to amortize a fork, so speedups hover
! near 1 -- the paper's "additional strategies are necessary" group.
      integer nz, ncol, nsteps
      parameter (nz = 24, ncol = 60, nsteps = 40)
      real s(ncol, nz), tgt(nz)
      integer z, z0, zz, c, c0, step
      real csum

      do z0 = 1, nz
        tgt(z0) = 0.5 + 0.01*z0
        do c0 = 1, ncol
          s(c0, z0) = 0.3 + 0.001*c0
        end do
      end do

      do step = 1, nsteps
        do z = 1, nz
          tgt(z) = tgt(z)*0.999 + 0.001*z
        end do
        do c = 2, ncol
          do z = 2, nz
            s(c, z) = s(c, z - 1)*0.7 + s(c - 1, z)*0.1 + tgt(z)*0.2
          end do
        end do
      end do

      csum = 0.0
      do zz = 1, nz
        csum = csum + s(7, zz)
      end do
      print *, 'cloud3d checksum', csum
      end

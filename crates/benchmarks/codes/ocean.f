program ocean
! OCEAN kernel: the FTRVMT/109 nest of Figure 3. The middle loop's
! stride (258*X) exceeds the outer loop's stride (129), so the outer
! loop is parallel only after the range test permutes the nest; the
! second reference is offset by 129*X, separating it from the first by
! total-range disjointness. 44% of OCEAN's serial time.
      integer nx, zmax, asize
      parameter (nx = 8, zmax = 60)
      parameter (asize = 258*nx*zmax + 258*nx + 129*nx + 130)
      real a(asize)
      integer z(nx), x
      real csum

! X is the paper's symbolic grid factor: in the real code it arrives
! from input, so no amount of constant propagation can make the
! subscripts linear. Model that with a guarded definition (the fact
! X = NX never reaches the analyzer as a constant) plus the assertion
! interprocedural analysis would have provided.
      x = 0
      if (asize .gt. 0) then
        x = nx
      end if
!$assert (x .ge. 1)
!$assert (x .le. nx)

      do k0 = 1, x
        z(k0) = zmax - 20 + mod(k0*7, 20)
      end do

      do k = 0, x - 1
        do j = 0, z(k + 1)
          do i = 0, 128
            a(258*x*j + 129*k + i + 1) = i*0.5 + j
            a(258*x*j + 129*k + i + 1 + 129*x) = i*0.25 - j
          end do
        end do
      end do

      csum = 0.0
      do ii = 1, asize
        csum = csum + a(ii)
      end do
      print *, 'ocean checksum', csum
      end

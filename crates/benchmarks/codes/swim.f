program swim
! SWIM kernel: shallow-water stencil updates. The U/V update needs a
! privatized work row (flux row reused per latitude), which only
! Polaris provides; the P update is plain linear and both handle it.
      integer m, n, nsteps
      parameter (m = 130, n = 130, nsteps = 2)
      real u(m, n), v(m, n), pp(m, n)
      real fl(m)
      real csum

      do j0 = 1, n
        do i0 = 1, m
          u(i0, j0) = 0.01*i0
          v(i0, j0) = 0.01*j0
          pp(i0, j0) = 50.0 + 0.1*(i0 + j0)
        end do
      end do

      do nc = 1, nsteps
        do j = 2, n - 1
          do i = 1, m
            fl(i) = u(i, j)*pp(i, j)
          end do
          do i = 2, m - 1
            u(i, j) = u(i, j) - 0.05*(fl(i + 1) - fl(i - 1))
            v(i, j) = v(i, j) - 0.05*(pp(i, j + 1) - pp(i, j - 1))
          end do
        end do
        do j = 2, n - 1
          do i = 2, m - 1
            pp(i, j) = pp(i, j) - 0.1*(u(i + 1, j) - u(i - 1, j) + v(i, j + 1) - v(i, j - 1))
          end do
        end do
      end do

      csum = 0.0
      do jj = 1, n
        do ii = 1, m
          csum = csum + pp(ii, jj)
        end do
      end do
      print *, 'swim checksum', csum
      end

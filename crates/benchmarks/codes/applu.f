program applu
! APPLU kernel: an SSOR wavefront sweep -- U(i,j) depends on U(i-1,j)
! and U(i,j-1), so no loop in the hot nest is parallel for either
! compiler (the paper's near-1 speedup group).
      integer n, nsweep
      parameter (n = 160, nsweep = 3)
      real u(n, n), r(n, n)
      integer sw
      real csum

      do j0 = 1, n
        do i0 = 1, n
          u(i0, j0) = 0.0
          r(i0, j0) = 1.0/(i0 + j0)
        end do
      end do
      do j0 = 1, n
        u(1, j0) = 1.0
      end do
      do i0 = 1, n
        u(i0, 1) = 1.0
      end do

      do sw = 1, nsweep
        do j = 2, n
          do i = 2, n
            u(i, j) = 0.45*(u(i - 1, j) + u(i, j - 1)) + r(i, j)
          end do
        end do
      end do

      csum = 0.0
      do jj = 1, n
        csum = csum + u(n, jj)
      end do
      print *, 'applu checksum', csum
      end

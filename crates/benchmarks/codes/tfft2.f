program tfft2
! TFFT2 kernel: a batch of in-place radix-2 transforms, each in a
! privatized workspace W. The butterfly indices are symbolic (powers of
! two), so the copy-in/copy-out privatization of W -- proven against
! W's declared bounds -- is the only path to parallelism.
      integer nt, len
      parameter (nt = 48, len = 64)
      real f(nt*len), w(len)
      integer t, b
      integer le, le2, i1, i2
      real t1, t2, csum

      do i0 = 1, nt*len
        f(i0) = mod(i0, 17)*0.25
      end do

      do t = 1, nt
        do i = 1, len
          w(i) = f(i + (t - 1)*len)
        end do
        le = 2
        do istage = 1, 6
          le2 = le/2
          do b = 0, len/le - 1
            do j = 1, le2
              i1 = b*le + j
              i2 = i1 + le2
              t1 = w(i1) + w(i2)
              t2 = w(i1) - w(i2)
              w(i1) = t1
              w(i2) = t2*0.7071
            end do
          end do
          le = le*2
        end do
        do i = 1, len
          f(i + (t - 1)*len) = w(i)
        end do
      end do

      csum = 0.0
      do ii = 1, nt*len
        csum = csum + f(ii)
      end do
      print *, 'tfft2 checksum', csum
      end

program appsp
! APPSP kernel: batches of independent pentadiagonal solves with
! pivoting conditionals. Both compilers parallelize across systems;
! PFA's aggressive back end pays the conditional penalty.
      integer nsys, n
      parameter (nsys = 120, n = 90)
      real d(n, nsys), rhs(n, nsys)
      integer s, s0, ss
      real piv, csum

      do s0 = 1, nsys
        do i0 = 1, n
          d(i0, s0) = 2.0 + mod(i0 + s0, 5)*0.1
          rhs(i0, s0) = 1.0/(i0 + s0)
        end do
      end do

      do s = 1, nsys
        do i = 2, n
          piv = d(i - 1, s)
          if (piv .lt. 0.5) then
            piv = 0.5
          end if
          d(i, s) = d(i, s) - 0.3/piv
          rhs(i, s) = rhs(i, s) - 0.3*rhs(i - 1, s)/piv
        end do
        do i = 1, n
          if (d(i, s) .gt. 0.0) then
            rhs(i, s) = rhs(i, s)/d(i, s)
          end if
        end do
      end do

      csum = 0.0
      do ss = 1, nsys
        csum = csum + rhs(n, ss)
      end do
      print *, 'appsp checksum', csum
      end

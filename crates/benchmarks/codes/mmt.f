program mmt
! MMT kernel: transposed matrix-matrix product C = A^T * B with a scalar
! reduction riding in the innermost body. Written in the classic
! dot-product order (K, I, J), which walks A and B down their *rows* —
! every innermost access crosses a column of the column-major layout.
! The nest-dependence summary proves the (J, I, K) order legal (C's
! accumulation is a validated reduction, so its cross-K dependence is
! relaxable), and the stride cost model picks it: A(K,I) and B(K,J)
! become unit-stride in the new innermost K loop. All data is
! integer-valued so any legal reassociation of the sums is bit-exact.
      integer n
      parameter (n = 32)
      real a(32,32), b(32,32), c(32,32)
      real s, csum

      do i0 = 1, n
        do k0 = 1, n
          a(k0,i0) = mod(k0 + 2*i0, 5) * 1.0
          b(k0,i0) = mod(k0 + 3*i0, 7) * 1.0
          c(k0,i0) = 0.0
        end do
      end do

      s = 0.0
      do k = 1, n
        do i = 1, n
          do j = 1, n
            c(i,j) = c(i,j) + a(k,i) * b(k,j)
            s = s + a(k,i)
          end do
        end do
      end do

      csum = 0.0
      do jj = 1, n
        do ii = 1, n
          csum = csum + c(ii,jj)
        end do
      end do
      print *, 'mmt checksum', csum + s
      end

program arc2d
! ARC2D kernel: implicit finite-difference smoothing sweeps. All loops
! are linear and dense: both compilers parallelize everything, and a
! back end that unrolls/fuses straight-line inner loops (PFA's) wins
! slightly -- this is one of the two codes where PFA beats Polaris.
      integer jmax, kmax, nsteps
      parameter (jmax = 120, kmax = 120, nsteps = 3)
      real p(jmax, kmax), w(jmax, kmax)
      real csum

      do k0 = 1, kmax
        do j0 = 1, jmax
          p(j0, k0) = 1.0/(j0 + k0)
          w(j0, k0) = 0.0
        end do
      end do

      do nn = 1, nsteps
        do k = 2, kmax - 1
          do j = 2, jmax - 1
            w(j, k) = 0.25*(p(j - 1, k) + p(j + 1, k) + p(j, k - 1) + p(j, k + 1))
          end do
        end do
        do k = 2, kmax - 1
          do j = 2, jmax - 1
            p(j, k) = p(j, k)*0.2 + w(j, k)*0.8
          end do
        end do
      end do

      csum = 0.0
      do kk = 1, kmax
        do jj = 1, jmax
          csum = csum + p(jj, kk)
        end do
      end do
      print *, 'arc2d checksum', csum
      end

program spmv
! SPMV kernel: sparse matrix-vector product in CSR form. The row loop
! carries only read-only indirection (COL) plus a privatized scalar
! accumulator, and each row writes its own Y element: provably
! parallel at compile time, no runtime test needed.
      integer n, nz
      parameter (n = 256, nz = 4)
      real a(1024), x(256), y(256)
      integer col(1024), rowptr(257)
      real s, csum

      do i0 = 1, n
        x(i0) = 1.0 + mod(i0, 7)*0.25
        rowptr(i0) = (i0 - 1)*nz + 1
      end do
      rowptr(n + 1) = n*nz + 1
      do k0 = 1, n*nz
        a(k0) = mod(k0, 5)*0.5 + 0.1
        col(k0) = mod(k0*13, n) + 1
      end do

      do i = 1, n
        s = 0.0
        do k = rowptr(i), rowptr(i + 1) - 1
          s = s + a(k)*x(col(k))
        end do
        y(i) = s
      end do

      csum = 0.0
      do ii = 1, n
        csum = csum + y(ii)*y(ii)
      end do
      print *, 'spmv checksum', csum
      end

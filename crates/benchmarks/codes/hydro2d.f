program hydro2d
! HYDRO2D kernel: Navier-Stokes flux sweep needing a privatized work
! row, plus the timestep MAX reduction (which both compilers handle --
! it is a scalar reduction).
      integer nj, nk, nsteps
      parameter (nj = 350, nk = 120, nsteps = 2)
      real ro(nj, nk), vx(nj, nk)
      real wr(nj)
      real dtm, csum

      do k0 = 1, nk
        do j0 = 1, nj
          ro(j0, k0) = 1.0 + 0.001*j0
          vx(j0, k0) = 0.02*k0 - 0.01*j0
        end do
      end do

      do nc = 1, nsteps
        do k = 1, nk
          do j = 1, nj
            wr(j) = ro(j, k)*vx(j, k)
          end do
          do j = 2, nj - 1
            ro(j, k) = ro(j, k) - 0.05*(wr(j + 1) - wr(j - 1))
          end do
        end do
        dtm = 0.0
        do k = 1, nk
          do j = 1, nj
            dtm = max(dtm, abs(vx(j, k)))
          end do
        end do
        vx(1, 1) = vx(1, 1) + dtm*0.001
      end do

      csum = 0.0
      do kk = 1, nk
        csum = csum + ro(nj/2, kk)
      end do
      print *, 'hydro2d checksum', csum
      end

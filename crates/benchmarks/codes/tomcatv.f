program tomcatv
! TOMCATV kernel: mesh generation sweeps whose hot bodies are full of
! conditionals (clamping). Both compilers find the same parallelism;
! PFA's aggressive back end backfires on the conditional-laden bodies
! (one of the two codes the paper calls out).
      integer n, niter
      parameter (n = 120, niter = 3)
      real xx(n, n), yy(n, n), rxm(n, n)
      real csum, d

      do j0 = 1, n
        do i0 = 1, n
          xx(i0, j0) = i0*0.3 + j0*0.01
          yy(i0, j0) = j0*0.3 - i0*0.01
          rxm(i0, j0) = 0.0
        end do
      end do

      do it = 1, niter
        do j = 2, n - 1
          do i = 2, n - 1
            d = xx(i + 1, j) - 2.0*xx(i, j) + xx(i - 1, j)
            if (d .gt. 0.5) then
              d = 0.5
            else if (d .lt. -0.5) then
              d = -0.5
            end if
            rxm(i, j) = d + 0.25*(yy(i, j + 1) - yy(i, j - 1))
          end do
        end do
        do j = 2, n - 1
          do i = 2, n - 1
            if (rxm(i, j) .gt. 0.0) then
              xx(i, j) = xx(i, j) + 0.1*rxm(i, j)
            else
              xx(i, j) = xx(i, j) + 0.05*rxm(i, j)
            end if
          end do
        end do
      end do

      csum = 0.0
      do jj = 1, n
        do ii = 1, n
          csum = csum + xx(ii, jj)
        end do
      end do
      print *, 'tomcatv checksum', csum
      end

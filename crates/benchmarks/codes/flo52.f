program flo52
! FLO52 kernel: transonic-flow multigrid smoothing plus a residual sum.
! Like ARC2D everything is linear and straight-line; PFA's aggressive
! code generation gives it the edge (the second PFA-wins code).
      integer ni, nj, ncyc
      parameter (ni = 110, nj = 110, ncyc = 3)
      real wq(ni, nj), dw(ni, nj)
      real res

      do j0 = 1, nj
        do i0 = 1, ni
          wq(i0, j0) = (i0*1.0)/(j0 + 3)
          dw(i0, j0) = 0.0
        end do
      end do

      do nc = 1, ncyc
        do j = 2, nj - 1
          do i = 2, ni - 1
            dw(i, j) = 0.25*(wq(i - 1, j) + wq(i + 1, j) + wq(i, j - 1) + wq(i, j + 1)) - wq(i, j)
          end do
        end do
        do j = 2, nj - 1
          do i = 2, ni - 1
            wq(i, j) = wq(i, j) + 0.6*dw(i, j)
          end do
        end do
      end do

      res = 0.0
      do jj = 2, nj - 1
        do ii = 2, ni - 1
          res = res + dw(ii, jj)*dw(ii, jj)
        end do
      end do
      print *, 'flo52 residual', res
      end

program su2cor
! SU2COR kernel: Monte-Carlo lattice update addressed through an
! induction variable whose recurrence spans two loop levels. Polaris'
! generalized induction substitution linearizes it; the baseline's
! "simple induction" cannot (the increment sits in an inner loop).
      integer ns, n, tot
      parameter (ns = 40, n = 600, tot = ns*n)
      real u(tot), g(n)
      integer s
      integer k
      real csum

      do i0 = 1, n
        g(i0) = 1.0/(3 + mod(i0, 7))
      end do
      do i0 = 1, tot
        u(i0) = 0.5
      end do

      k = 0
      do s = 1, ns
        do i = 1, n
          k = k + 1
          u(k) = u(k)*0.99 + g(i)
        end do
      end do

      csum = 0.0
      do ii = 1, tot
        csum = csum + u(ii)
      end do
      print *, 'su2cor checksum', csum
      end

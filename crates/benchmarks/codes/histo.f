program histo
! HISTO kernel: histogram accumulation through a runtime bin array.
! BIN is not injective (many entries share a bin), but every touch of
! H is a reduction update, so the accumulation loop is parallel as a
! validated array reduction — statically, without speculation.
      integer n, nb
      parameter (n = 2048, nb = 32)
      real h(32), w(2048)
      integer bin(2048)
      real csum

      do i0 = 1, n
        w(i0) = 0.5 + mod(i0, 11)*0.1
        bin(i0) = mod(i0*7, nb) + 1
      end do
      do j0 = 1, nb
        h(j0) = 0.0
      end do

      do i = 1, n
        h(bin(i)) = h(bin(i)) + w(i)
      end do

      csum = 0.0
      do jj = 1, nb
        csum = csum + h(jj)*h(jj)
      end do
      print *, 'histo checksum', csum
      end

program prefix
! PREFIX kernel: a prefix-sum fill computes strictly increasing output
! slots, then a consumer scatters through them. The prefix recognizer
! proves POS strictly increasing (every increment is at least 1),
! hence injective, so the consumer loop is parallel at compile time.
      integer n
      parameter (n = 512)
      real w(512), z(1536)
      integer pos(512)
      real csum

      do i0 = 1, n
        w(i0) = 1.0 + mod(i0, 9)*0.2
      end do
      do j0 = 1, 3*n
        z(j0) = 0.0
      end do
      pos(1) = 1
      do i = 2, n
        pos(i) = pos(i - 1) + 1 + mod(i, 2)
      end do

      do i = 1, n
        z(pos(i)) = w(i)*2.0 + 1.0
      end do

      csum = 0.0
      do jj = 1, 3*n
        csum = csum + z(jj)
      end do
      print *, 'prefix checksum', csum
      end

program compact
! COMPACT kernel: stream compaction. The slot array comes from a
! conditional prefix count, which no static recognizer covers; the
! consumer scatter runs under LRPD and succeeds because the live slots
! are distinct at run time.
      integer n
      parameter (n = 1024)
      real v(1024), out(1024)
      integer slot(1024)
      integer np
      real csum

      do i0 = 1, n
        v(i0) = mod(i0*31, 97)*0.01
        out(i0) = 0.0
      end do
      np = 0
      do i = 1, n
        if (v(i) .gt. 0.5) then
          np = np + 1
          slot(i) = np
        else
          slot(i) = 0
        end if
      end do

      do i = 1, n
        if (slot(i) .gt. 0) then
          out(slot(i)) = v(i)
        end if
      end do

      csum = 0.0
      do ii = 1, n
        csum = csum + out(ii)
      end do
      print *, 'compact checksum', csum
      end

program track
! TRACK kernel: the NLFILT/300 loop of Figure 6. The scatter index
! array is recomputed before every invocation and forms a permutation
! 90% of the time; the remaining invocations collide, the PD test
! fails, and the loop re-executes serially.
      integer n, ninv
      parameter (n = 2048, ninv = 10)
      real h(n), g(n)
      integer key(n)
      real csum

      do i0 = 1, n
        g(i0) = 1.0 + mod(i0, 9)*0.05
        h(i0) = 0.0
      end do

      do inv = 1, ninv
        do i = 1, n
          if (mod(inv, 10) .eq. 0) then
            key(i) = mod(i, n/2) + 1
          else
            key(i) = mod(i*77 + inv, n) + 1
          end if
        end do
        do i = 1, n
          h(key(i)) = g(i)*1.01 + inv*0.1
        end do
      end do

      csum = 0.0
      do ii = 1, n
        csum = csum + h(ii)
      end do
      print *, 'track checksum', csum
      end
